//! Recursive-descent parser for the MOD query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT target FROM MOD WHERE quant AND prob EOF
//! target     := '*' | IDENT
//! quant      := EXISTS  TIME IN interval
//!             | FORALL  TIME IN interval
//!             | ATLEAST number ['%'] OF TIME IN interval
//!             | AT number TIME IN interval
//! interval   := '[' number ',' number ']'
//! prob       := PROB_NN  '(' target ',' IDENT ',' TIME [',' RANK number] ')' cmp
//!             | PROB_RNN '(' target ',' IDENT ',' TIME ')' cmp
//! cmp        := '>' number          -- number in [0, 1); 0 = the §4
//!                                   -- non-zero-probability semantics,
//!                                   -- positive = §7 threshold queries
//! ```
//!
//! `PROB_RNN` is the reverse-NN predicate of the §7 extensions: "`target`
//! has `query` as a possible nearest neighbor". It takes no RANK bound.

use super::ast::{PredicateKind, Quantifier, Query, Target};
use super::lexer::{tokenize, LexError, Token, TokenKind};
use std::fmt;

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.idx.min(self.tokens.len() - 1)].clone();
        self.idx += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        let t = self.advance();
        if std::mem::discriminant(&t.kind) == std::mem::discriminant(kind) {
            Ok(t)
        } else {
            Err(ParseError {
                message: format!("expected {kind}, found {}", t.kind),
                pos: t.pos,
            })
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Number(n) => Ok(n),
            other => Err(ParseError {
                message: format!("expected a number, found {other}"),
                pos: t.pos,
            }),
        }
    }

    fn target(&mut self) -> Result<Target, ParseError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Star => Ok(Target::All),
            TokenKind::Ident(s) => Ok(Target::One(s)),
            other => Err(ParseError {
                message: format!("expected '*' or an identifier, found {other}"),
                pos: t.pos,
            }),
        }
    }

    fn interval(&mut self) -> Result<(f64, f64), ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let a = self.number()?;
        self.expect(&TokenKind::Comma)?;
        let b = self.number()?;
        let closing = self.expect(&TokenKind::RBracket)?;
        if !(a.is_finite() && b.is_finite() && a < b) {
            return Err(ParseError {
                message: format!("invalid window [{a}, {b}]"),
                pos: closing.pos,
            });
        }
        Ok((a, b))
    }

    fn quantifier(&mut self) -> Result<(Quantifier, (f64, f64)), ParseError> {
        let t = self.advance();
        let quant = match t.kind {
            TokenKind::Exists => Quantifier::Exists,
            TokenKind::Forall => Quantifier::Forall,
            TokenKind::AtLeast => {
                let n = self.number()?;
                // Optional '%' turns 50 into 0.5.
                let frac = if self.peek().kind == TokenKind::Percent {
                    self.advance();
                    n / 100.0
                } else {
                    n
                };
                if !(0.0..=1.0).contains(&frac) {
                    return Err(ParseError {
                        message: format!("fraction {frac} outside [0, 1]"),
                        pos: t.pos,
                    });
                }
                self.expect(&TokenKind::Of)?;
                Quantifier::AtLeast(frac)
            }
            TokenKind::At => Quantifier::At(self.number()?),
            other => {
                return Err(ParseError {
                    message: format!("expected EXISTS, FORALL, ATLEAST or AT, found {other}"),
                    pos: t.pos,
                })
            }
        };
        self.expect(&TokenKind::Time)?;
        self.expect(&TokenKind::In)?;
        let window = self.interval()?;
        if let Quantifier::At(t_at) = quant {
            if t_at < window.0 || t_at > window.1 {
                return Err(ParseError {
                    message: format!(
                        "fixed time {t_at} outside window [{}, {}]",
                        window.0, window.1
                    ),
                    pos: 0,
                });
            }
        }
        Ok((quant, window))
    }

    #[allow(clippy::type_complexity)]
    fn prob(&mut self) -> Result<(PredicateKind, Target, String, Option<usize>, f64), ParseError> {
        let head = self.advance();
        let predicate = match head.kind {
            TokenKind::ProbNn => PredicateKind::Nn,
            TokenKind::ProbRnn => PredicateKind::Rnn,
            other => {
                return Err(ParseError {
                    message: format!("expected PROB_NN or PROB_RNN, found {other}"),
                    pos: head.pos,
                })
            }
        };
        self.expect(&TokenKind::LParen)?;
        let target = self.target()?;
        self.expect(&TokenKind::Comma)?;
        let q = self.advance();
        let query_object = match q.kind {
            TokenKind::Ident(s) => s,
            other => {
                return Err(ParseError {
                    message: format!("expected the query trajectory name, found {other}"),
                    pos: q.pos,
                })
            }
        };
        self.expect(&TokenKind::Comma)?;
        self.expect(&TokenKind::Time)?;
        let mut rank = None;
        if self.peek().kind == TokenKind::Comma {
            self.advance();
            let rank_tok = self.expect(&TokenKind::Rank)?;
            if predicate == PredicateKind::Rnn {
                return Err(ParseError {
                    message: "PROB_RNN does not support RANK bounds".to_string(),
                    pos: rank_tok.pos,
                });
            }
            let t = self.advance();
            match t.kind {
                TokenKind::Number(n) if n >= 1.0 && n.fract() == 0.0 => rank = Some(n as usize),
                other => {
                    return Err(ParseError {
                        message: format!("RANK expects a positive integer, found {other}"),
                        pos: t.pos,
                    })
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Greater)?;
        let cmp = self.advance();
        let prob_threshold = match cmp.kind {
            TokenKind::Number(n) if (0.0..1.0).contains(&n) => n,
            other => {
                return Err(ParseError {
                    message: format!(
                        "probability comparisons need '> p' with p in [0, 1), found {other}"
                    ),
                    pos: cmp.pos,
                })
            }
        };
        Ok((predicate, target, query_object, rank, prob_threshold))
    }
}

/// Parses a query statement.
pub fn parse(src: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, idx: 0 };
    p.expect(&TokenKind::Select)?;
    let target = p.target()?;
    p.expect(&TokenKind::From)?;
    p.expect(&TokenKind::Mod)?;
    p.expect(&TokenKind::Where)?;
    let (quantifier, window) = p.quantifier()?;
    p.expect(&TokenKind::And)?;
    let (predicate, prob_target, query_object, rank, prob_threshold) = p.prob()?;
    let eof = p.expect(&TokenKind::Eof)?;
    // Semantic check: the SELECT target and the predicate subject must
    // agree.
    if target != prob_target {
        return Err(ParseError {
            message: format!(
                "SELECT target {target} does not match predicate subject {prob_target}"
            ),
            pos: eof.pos,
        });
    }
    if let Target::One(name) = &target {
        if *name == query_object {
            return Err(ParseError {
                message: format!("target {name} cannot be its own query object"),
                pos: eof.pos,
            });
        }
    }
    Ok(Query {
        target,
        quantifier,
        window,
        query_object,
        predicate,
        rank,
        prob_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_uq11() {
        let q = parse(
            "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr3, Tr0, TIME) > 0",
        )
        .unwrap();
        assert_eq!(q.target, Target::One("Tr3".into()));
        assert_eq!(q.quantifier, Quantifier::Exists);
        assert_eq!(q.window, (0.0, 60.0));
        assert_eq!(q.query_object, "Tr0");
        assert_eq!(q.rank, None);
    }

    #[test]
    fn parses_uq23_with_percent() {
        let q = parse(
            "SELECT Tr3 FROM MOD WHERE ATLEAST 50 % OF TIME IN [0, 60] \
             AND PROB_NN(Tr3, Tr0, TIME, RANK 2) > 0",
        )
        .unwrap();
        assert_eq!(q.quantifier, Quantifier::AtLeast(0.5));
        assert_eq!(q.rank, Some(2));
    }

    #[test]
    fn parses_uq31_star() {
        let q =
            parse("SELECT * FROM MOD WHERE EXISTS TIME IN [10, 20] AND PROB_NN(*, Tr7, TIME) > 0")
                .unwrap();
        assert_eq!(q.target, Target::All);
        assert_eq!(q.query_object, "Tr7");
    }

    #[test]
    fn parses_fixed_time() {
        let q = parse(
            "SELECT Tr1 FROM MOD WHERE AT 30 TIME IN [0, 60] AND PROB_NN(Tr1, Tr0, TIME) > 0",
        )
        .unwrap();
        assert_eq!(q.quantifier, Quantifier::At(30.0));
    }

    #[test]
    fn rejects_target_mismatch() {
        let err = parse(
            "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr4, Tr0, TIME) > 0",
        )
        .unwrap_err();
        assert!(err.message.contains("does not match"));
    }

    #[test]
    fn rejects_self_query() {
        let err = parse(
            "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr3, Tr3, TIME) > 0",
        )
        .unwrap_err();
        assert!(err.message.contains("own query object"));
    }

    #[test]
    fn rejects_bad_window() {
        let err = parse(
            "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [60, 0] AND PROB_NN(Tr3, Tr0, TIME) > 0",
        )
        .unwrap_err();
        assert!(err.message.contains("invalid window"));
    }

    #[test]
    fn rejects_fixed_time_outside_window() {
        let err = parse(
            "SELECT Tr3 FROM MOD WHERE AT 99 TIME IN [0, 60] AND PROB_NN(Tr3, Tr0, TIME) > 0",
        )
        .unwrap_err();
        assert!(err.message.contains("outside window"));
    }

    #[test]
    fn rejects_bad_rank() {
        let err = parse(
            "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(Tr3, Tr0, TIME, RANK 0.5) > 0",
        )
        .unwrap_err();
        assert!(err.message.contains("positive integer"));
    }

    #[test]
    fn rejects_out_of_range_comparison() {
        for bad in ["> 5", "> 1", "> -0.1"] {
            let err = parse(&format!(
                "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr3, Tr0, TIME) {bad}",
            ))
            .unwrap_err();
            assert!(
                err.message.contains("p in [0, 1)"),
                "{bad}: {}",
                err.message
            );
        }
    }

    #[test]
    fn accepts_threshold_comparison() {
        let q = parse(
            "SELECT Tr3 FROM MOD WHERE ATLEAST 0.5 OF TIME IN [0, 60] \
             AND PROB_NN(Tr3, Tr0, TIME) > 0.65",
        )
        .unwrap();
        assert!((q.prob_threshold - 0.65).abs() < 1e-12);
    }

    #[test]
    fn rejects_fraction_above_one() {
        let err = parse(
            "SELECT Tr3 FROM MOD WHERE ATLEAST 1.5 OF TIME IN [0, 60] \
             AND PROB_NN(Tr3, Tr0, TIME) > 0",
        )
        .unwrap_err();
        assert!(err.message.contains("outside [0, 1]"));
    }

    #[test]
    fn parses_reverse_nn() {
        let q =
            parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_RNN(*, Tr0, TIME) > 0")
                .unwrap();
        assert_eq!(q.predicate, PredicateKind::Rnn);
        assert_eq!(q.rank, None);
        let q1 = parse(
            "SELECT Tr2 FROM MOD WHERE FORALL TIME IN [0, 60] AND PROB_RNN(Tr2, Tr0, TIME) > 0",
        )
        .unwrap();
        assert_eq!(q1.predicate, PredicateKind::Rnn);
        assert_eq!(q1.target, Target::One("Tr2".into()));
    }

    #[test]
    fn reverse_nn_rejects_rank() {
        let err = parse(
            "SELECT Tr2 FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_RNN(Tr2, Tr0, TIME, RANK 2) > 0",
        )
        .unwrap_err();
        assert!(
            err.message.contains("does not support RANK"),
            "{}",
            err.message
        );
    }

    #[test]
    fn forward_queries_carry_nn_predicate() {
        let q = parse(
            "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr3, Tr0, TIME) > 0",
        )
        .unwrap();
        assert_eq!(q.predicate, PredicateKind::Nn);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse(
            "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(Tr3, Tr0, TIME) > 0 EXTRA",
        )
        .unwrap_err();
        assert!(err.message.contains("expected <eof>"), "{}", err.message);
    }
}
