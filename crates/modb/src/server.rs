//! The MOD server facade: registration, continuous PNN query execution,
//! SQL-ish statement evaluation, and execution statistics.

use crate::cache::{CacheStats, CachedEngine, EngineCache, EngineKey, EngineKind};
use crate::plan::{PlanError, PrefilterPolicy, QueryPlanner};
use crate::ql::ast::{PredicateKind, Quantifier, Query, Statement, Target};
use crate::ql::parser::{parse_statement, ParseError};
use crate::store::{ModStore, StoreError};
use crate::subscription::{SubscriptionError, SubscriptionInfo, SubscriptionRegistry};
use crate::telemetry::{MetricsSnapshot, TraceEvent};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unn_core::hetero::HeteroEngine;
use unn_core::ipac::IpacTree;
use unn_core::query::QueryEngine;
use unn_core::reverse::ReverseNnEngine;
use unn_core::topk::{continuous_knn, KnnAnswer};
use unn_geom::interval::TimeInterval;
use unn_traj::difference::DifferenceError;
use unn_traj::trajectory::Oid;
use unn_traj::uncertain::{common_pdf_kind, UncertainTrajectory};

/// Errors raised by [`ModServer`] operations.
#[derive(Debug)]
pub enum ServerError {
    /// Statement failed to parse.
    Parse(ParseError),
    /// Store-level failure.
    Store(StoreError),
    /// A referenced object name is unknown.
    UnknownObject(String),
    /// The MOD holds fewer than two trajectories.
    NotEnoughObjects,
    /// The query window is invalid or outside some trajectory's domain.
    Window(DifferenceError),
    /// The stored trajectories do not share one uncertainty radius
    /// (the paper's standing assumption; per-object radii are future
    /// work, §7).
    MixedRadii,
    /// The stored trajectories do not share one location pdf (the other
    /// half of the paper's standing assumption).
    MixedPdfs,
    /// Standing-query (subscription) management failed.
    Subscription(SubscriptionError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Parse(e) => write!(f, "{e}"),
            ServerError::Store(e) => write!(f, "{e}"),
            ServerError::UnknownObject(s) => write!(f, "unknown object '{s}'"),
            ServerError::NotEnoughObjects => {
                write!(f, "the MOD needs at least two trajectories")
            }
            ServerError::Window(e) => write!(f, "{e}"),
            ServerError::MixedRadii => {
                write!(f, "trajectories have differing uncertainty radii")
            }
            ServerError::MixedPdfs => {
                write!(f, "trajectories have differing location pdfs")
            }
            ServerError::Subscription(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ParseError> for ServerError {
    fn from(e: ParseError) -> Self {
        ServerError::Parse(e)
    }
}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        ServerError::Store(e)
    }
}

impl From<DifferenceError> for ServerError {
    fn from(e: DifferenceError) -> Self {
        ServerError::Window(e)
    }
}

impl From<SubscriptionError> for ServerError {
    fn from(e: SubscriptionError) -> Self {
        ServerError::Subscription(e)
    }
}

impl From<PlanError> for ServerError {
    fn from(e: PlanError) -> Self {
        match e {
            PlanError::NotEnoughObjects => ServerError::NotEnoughObjects,
            PlanError::UnknownObject(oid) => ServerError::UnknownObject(oid.to_string()),
            PlanError::MixedRadii => ServerError::MixedRadii,
            PlanError::Window(e) => ServerError::Window(e),
        }
    }
}

/// Statistics of one query execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionStats {
    /// Number of candidate objects considered (MOD size minus the query).
    pub candidates: usize,
    /// Candidates surviving the coarse prefilter (the set handed to
    /// envelope construction; equals `candidates` on the exhaustive
    /// path).
    pub prefiltered: usize,
    /// Candidates surviving the `4r`-band pruning.
    pub kept: usize,
    /// Pieces of the level-1 lower envelope.
    pub envelope_pieces: usize,
    /// Wall-clock time of the preprocessing (planning + envelope +
    /// pruning; near zero on a cache hit).
    pub preprocess: Duration,
    /// Wall-clock time of the query proper.
    pub query_time: Duration,
    /// `true` when the engine came from the epoch-keyed cache.
    pub cache_hit: bool,
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Category 1/2 answer for a single target.
    Boolean(bool),
    /// Category 3/4 answer: qualifying objects with the fraction of the
    /// window during which the condition holds.
    Objects(Vec<(Oid, f64)>),
    /// `REGISTER CONTINUOUS … AS name` installed the standing query.
    Registered(SubscriptionInfo),
    /// `UNREGISTER name` dropped the standing query.
    Unregistered(String),
    /// `SHOW SUBSCRIPTIONS` listing.
    Subscriptions(Vec<SubscriptionInfo>),
    /// `SHOW METRICS [PREFIX p]` — a point-in-time telemetry snapshot
    /// (registry counters/gauges/histograms merged with the legacy
    /// stats views; see [`ModServer::metrics_snapshot`]).
    Metrics(MetricsSnapshot),
    /// `TRACE EPOCH e` — the retained pipeline trace of one epoch.
    Trace {
        /// The requested epoch.
        epoch: u64,
        /// Every retained event of that epoch, in recording order.
        events: Vec<TraceEvent>,
    },
}

/// A continuous NN answer (crisp semantics): the time-parameterized
/// owner sequence of §1 plus execution statistics.
#[derive(Debug, Clone)]
pub struct ContinuousAnswer {
    /// `[(Tr_i1, [tb, t1]), (Tr_i2, [t1, t2]), ...]`.
    pub sequence: Vec<(Oid, TimeInterval)>,
    /// Execution statistics.
    pub stats: ExecutionStats,
}

/// The MOD server: owns the trajectory store and executes continuous
/// probabilistic NN queries through the shared snapshot → prefilter →
/// envelope → execute pipeline.
///
/// Every query path goes through the [`QueryPlanner`] (which takes the
/// `Arc`-shared [`crate::snapshot::QuerySnapshot`] and runs the
/// configured [`PrefilterPolicy`]) and the epoch-keyed [`EngineCache`]
/// (which reuses envelope/IPAC preprocessing while the store is
/// unchanged, and **carries** forward engines across mutations the delta
/// log proves cannot touch them). Prefiltered and cached execution is
/// the **default** and produces answers identical to the exhaustive
/// path; see the crate-level docs for the invalidation contract.
#[derive(Debug)]
pub struct ModServer {
    store: ModStore,
    planner: QueryPlanner,
    cache: Arc<EngineCache>,
    subscriptions: Arc<SubscriptionRegistry>,
}

impl Default for ModServer {
    fn default() -> Self {
        let store = ModStore::new();
        let cache = Arc::new(EngineCache::with_capacity(128));
        // `store.clear()` wipes the engine cache in the same step.
        store.attach_cache(&cache);
        // Standing queries are maintained after every store commit.
        let subscriptions = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&subscriptions);
        ModServer {
            store,
            planner: QueryPlanner::default(),
            cache,
            subscriptions,
        }
    }
}

impl ModServer {
    /// A server with an empty MOD, the default prefilter policy, and an
    /// engine cache.
    pub fn new() -> Self {
        ModServer::default()
    }

    /// A server using `policy` for candidate prefiltering.
    pub fn with_policy(policy: PrefilterPolicy) -> Self {
        ModServer {
            planner: QueryPlanner::new(policy),
            ..ModServer::default()
        }
    }

    /// A server wrapping an existing store — the recovery and follower
    /// entry point ([`crate::durability::recover`] hands back a
    /// populated store; a follower applies replicated commits to one).
    /// The engine cache and subscription registry are attached exactly
    /// as [`ModServer::default`] does.
    pub fn with_store(store: ModStore) -> Self {
        let cache = Arc::new(EngineCache::with_capacity(128));
        store.attach_cache(&cache);
        let subscriptions = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&subscriptions);
        ModServer {
            store,
            planner: QueryPlanner::default(),
            cache,
            subscriptions,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &ModStore {
        &self.store
    }

    /// The active prefilter policy.
    pub fn prefilter_policy(&self) -> PrefilterPolicy {
        self.planner.policy()
    }

    /// Changes the prefilter policy (cached engines stay valid — every
    /// policy produces identical answers).
    pub fn set_prefilter_policy(&mut self, policy: PrefilterPolicy) {
        self.planner = QueryPlanner::new(policy);
    }

    /// Engine-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Registers one trajectory.
    pub fn register(&self, tr: UncertainTrajectory) -> Result<(), ServerError> {
        self.store.insert(tr).map_err(ServerError::Store)
    }

    /// Registers many trajectories.
    pub fn register_all<I: IntoIterator<Item = UncertainTrajectory>>(
        &self,
        trs: I,
    ) -> Result<usize, ServerError> {
        self.store.bulk_load(trs).map_err(ServerError::Store)
    }

    /// Resolves an object name (`Tr5`, `tr5`, or plain `5`) to the id of
    /// a **registered** object.
    pub fn resolve(&self, name: &str) -> Result<Oid, ServerError> {
        match crate::ql::parse_object_name(name) {
            Some(oid) if self.store.contains(oid) => Ok(oid),
            _ => Err(ServerError::UnknownObject(name.to_string())),
        }
    }

    /// Builds (or fetches from the epoch-keyed cache) the query engine
    /// for a query trajectory over a window, returning it with the
    /// statistics. Uses the server's default prefilter policy; answers
    /// are identical to the exhaustive path.
    pub fn engine(
        &self,
        query_oid: Oid,
        window: TimeInterval,
    ) -> Result<(Arc<QueryEngine>, ExecutionStats), ServerError> {
        self.engine_with_policy(query_oid, window, self.planner.policy())
    }

    /// Like [`ModServer::engine`] with an explicit prefilter policy for
    /// this call (the k-NN path uses [`PrefilterPolicy::Exhaustive`];
    /// benches ablate scan vs grid vs R-tree).
    pub fn engine_with_policy(
        &self,
        query_oid: Oid,
        window: TimeInterval,
        policy: PrefilterPolicy,
    ) -> Result<(Arc<QueryEngine>, ExecutionStats), ServerError> {
        let t0 = Instant::now();
        // The cache key depends only on the snapshot epoch, not on the
        // prefilter's output, so planning (validation + prefilter) runs
        // inside the build closure: a cache hit skips it entirely. A hit
        // is sound without re-validating — the same key implies the same
        // snapshot, query, and window that validated when the entry was
        // built.
        let snapshot = self.store.snapshot();
        let key = EngineKey::new(
            snapshot.epoch(),
            EngineKind::Forward,
            query_oid,
            window,
            policy.tag(),
        )
        .carriable(policy.allows_carry());
        // A pre-mutation engine may keep serving when the delta log
        // proves every op since its build is outside its reach (removed
        // objects it never considered; insertions provably beyond the
        // envelope + 4r). Exhaustive engines never carry — see
        // [`PrefilterPolicy::allows_carry`].
        let carry = if policy.allows_carry() {
            Some(|built_epoch: u64, entry: &CachedEngine| {
                let (Some(engine), Some(query_tr)) = (entry.forward(), snapshot.get(query_oid))
                else {
                    return false;
                };
                self.store.with_ops_since(built_epoch, |ops| match ops {
                    Some(ops) => {
                        crate::delta::forward_engine_unaffected(&engine, query_tr.trajectory(), ops)
                    }
                    None => false,
                })
            })
        } else {
            None
        };
        let (cached, cache_hit) = self.cache.get_or_build_with_carry(key, carry, || {
            let plan = QueryPlanner::new(policy)
                .plan(Arc::clone(&snapshot), query_oid, window)
                .map_err(ServerError::from)?;
            plan.build_engine()
                .map(|e| CachedEngine::Forward(Arc::new(e)))
                .map_err(ServerError::Window)
        })?;
        let engine = cached.forward().expect("forward key holds forward engine");
        let stats = ExecutionStats {
            candidates: snapshot.len().saturating_sub(1),
            prefiltered: engine.functions().len(),
            kept: engine.stats().kept,
            envelope_pieces: engine.envelope().len(),
            preprocess: t0.elapsed(),
            query_time: Duration::ZERO,
            cache_hit,
        };
        Ok((engine, stats))
    }

    /// Like [`ModServer::engine`], but forcing the analytic epoch-box
    /// scan prefilter with the given temporal granularity. Kept as the
    /// explicit-prefilter entry point; it is a thin wrapper over the
    /// planner (the old duplicated snapshot/radius/window validation
    /// lives there now).
    pub fn engine_prefiltered(
        &self,
        query_oid: Oid,
        window: TimeInterval,
        epochs: usize,
    ) -> Result<(Arc<QueryEngine>, ExecutionStats), ServerError> {
        self.engine_with_policy(query_oid, window, PrefilterPolicy::Scan { epochs })
    }

    /// Runs the continuous (crisp) NN query of §1, returning the
    /// time-parameterized answer.
    pub fn continuous_nn(
        &self,
        query_oid: Oid,
        window: TimeInterval,
    ) -> Result<ContinuousAnswer, ServerError> {
        let (engine, mut stats) = self.engine(query_oid, window)?;
        let t0 = Instant::now();
        let sequence = engine.continuous_nn_answer();
        stats.query_time = t0.elapsed();
        Ok(ContinuousAnswer { sequence, stats })
    }

    /// Builds the IPAC-NN tree (depth `0` = unbounded).
    pub fn ipac_tree(
        &self,
        query_oid: Oid,
        window: TimeInterval,
        depth: usize,
    ) -> Result<IpacTree, ServerError> {
        let (engine, _) = self.engine(query_oid, window)?;
        Ok(engine.ipac_tree(depth))
    }

    /// Parses and executes a statement of the query language: a one-shot
    /// §4 query or one of the standing-query verbs (`REGISTER
    /// CONTINUOUS … AS name`, `UNREGISTER name`, `SHOW SUBSCRIPTIONS`).
    pub fn execute(&self, statement: &str) -> Result<QueryOutput, ServerError> {
        self.execute_with_sink(statement, None)
    }

    /// [`ModServer::execute`] with a push outbox for `REGISTER
    /// CONTINUOUS` statements: the sink is attached **atomically** with
    /// the registration (under the registry shard lock), so no commit
    /// can emit a delta between the subscription going live and the
    /// connection starting to receive pushes. This is the entry point
    /// the network layer uses; other statements ignore the sink.
    pub fn execute_with_sink(
        &self,
        statement: &str,
        sink: Option<&Arc<crate::subscription::DeltaSink>>,
    ) -> Result<QueryOutput, ServerError> {
        match parse_statement(statement)? {
            Statement::Select(query) => self.execute_parsed(&query),
            Statement::Register { name, query } => self
                .subscriptions
                .register_with_sink(&self.store, &name, query, self.planner.policy(), sink)
                .map(QueryOutput::Registered)
                .map_err(ServerError::from),
            Statement::Unregister { name } => self
                .subscriptions
                .unregister_checked(&name)
                .map(|()| QueryOutput::Unregistered(name))
                .map_err(ServerError::from),
            Statement::Watch { name } => match sink {
                // Over a connection: wire this session's outbox into the
                // existing subscription — all watchers of one name share
                // its encode-once pushed frames.
                Some(sink) => self
                    .subscriptions
                    .attach_sink_checked(&name, sink)
                    .map(QueryOutput::Registered)
                    .map_err(ServerError::from),
                // Without a push channel (local CLI), WATCH degrades to
                // the info row — there is no stream to attach.
                None => self
                    .subscriptions
                    .info(&name)
                    .map(QueryOutput::Registered)
                    .ok_or_else(|| self.unknown_subscription(name.as_str())),
            },
            Statement::ShowSubscriptions => {
                Ok(QueryOutput::Subscriptions(self.subscriptions.list()))
            }
            Statement::ShowMetrics { prefix } => Ok(QueryOutput::Metrics(
                self.metrics_snapshot(prefix.as_deref()),
            )),
            Statement::TraceEpoch { epoch } => Ok(QueryOutput::Trace {
                epoch,
                events: self.store.telemetry().trace.events_for(epoch),
            }),
        }
    }

    /// A point-in-time snapshot of every metric the server exposes: the
    /// store's [`crate::telemetry::Telemetry`] registry (hot-path
    /// counters and latency histograms) merged with the pre-existing
    /// stats structs re-expressed as registry rows — engine-cache
    /// counters ([`CacheStats`]), delta-log/snapshot state
    /// ([`crate::store::DeltaStats`]), WAL counters
    /// ([`crate::durability::WalStatus`], when a WAL is attached), and
    /// the aggregated per-share subscription counters. `prefix` filters
    /// metric names (the `SHOW METRICS PREFIX <p>` form); rows come
    /// back sorted by name.
    pub fn metrics_snapshot(&self, prefix: Option<&str>) -> MetricsSnapshot {
        let mut snap = self.store.telemetry().snapshot();
        let cache = self.cache.stats();
        snap.counters.push(("cache_hits_total".into(), cache.hits));
        snap.counters
            .push(("cache_misses_total".into(), cache.misses));
        snap.counters
            .push(("cache_carried_total".into(), cache.carried));
        snap.gauges
            .push(("cache_entries".into(), cache.entries as u64));
        let delta = self.store.delta_stats();
        snap.gauges.push(("store_epoch".into(), delta.epoch));
        snap.gauges
            .push(("delta_log_len".into(), delta.log_len as u64));
        snap.gauges
            .push(("delta_log_floor".into(), delta.log_floor));
        snap.gauges
            .push(("snapshot_pending_ops".into(), delta.pending_ops as u64));
        snap.counters.push((
            "snapshot_patched_total".into(),
            delta.snapshots_delta_applied,
        ));
        snap.counters
            .push(("snapshot_rebuilt_total".into(), delta.snapshots_rebuilt));
        if let Some(wal) = self.store.wal_status() {
            snap.counters
                .push(("wal_appends_total".into(), wal.appended));
            snap.counters.push(("wal_fsyncs_total".into(), wal.syncs));
            snap.counters
                .push(("wal_checkpoints_total".into(), wal.checkpoints));
            snap.counters
                .push(("wal_io_errors_total".into(), wal.io_errors));
            snap.gauges
                .push(("wal_segments".into(), wal.segments as u64));
            snap.gauges.push(("wal_bytes".into(), wal.total_bytes));
            snap.gauges.push(("wal_last_epoch".into(), wal.last_epoch));
            snap.gauges
                .push(("wal_checkpoint_epoch".into(), wal.checkpoint_epoch));
        }
        let infos = self.subscriptions.list();
        let mut subs = crate::subscription::SubscriptionStats::default();
        for info in &infos {
            let s = info.stats;
            subs.skipped += s.skipped;
            subs.patched += s.patched;
            subs.rebuilt += s.rebuilt;
            subs.visited += s.visited;
            subs.skipped_unvisited += s.skipped_unvisited;
            subs.batched_commits += s.batched_commits;
            subs.rows_patched += s.rows_patched;
        }
        snap.counters
            .push(("subs_visited_total".into(), subs.visited));
        snap.counters.push((
            "subs_skipped_unvisited_total".into(),
            subs.skipped_unvisited,
        ));
        snap.counters
            .push(("subs_batched_commits_total".into(), subs.batched_commits));
        snap.counters
            .push(("subs_rows_patched_total".into(), subs.rows_patched));
        snap.gauges
            .push(("subscriptions".into(), infos.len() as u64));
        if let Some(prefix) = prefix {
            snap.retain_prefix(prefix);
        }
        snap.sort();
        snap
    }

    // ------------------------------------------------------------------
    // Standing queries (subscriptions)
    // ------------------------------------------------------------------

    /// The standing-query registry (answers maintained incrementally
    /// after every store commit; see [`crate::subscription`]).
    pub fn subscription_registry(&self) -> &Arc<SubscriptionRegistry> {
        &self.subscriptions
    }

    /// Registers `statement` (a `SELECT` query) as a standing query named
    /// `name` using the server's prefilter policy.
    pub fn subscribe(&self, name: &str, statement: &str) -> Result<SubscriptionInfo, ServerError> {
        let query = crate::ql::parser::parse(statement)?;
        self.subscribe_parsed(name, query)
    }

    /// Registers an already-parsed query as a standing query.
    pub fn subscribe_parsed(
        &self,
        name: &str,
        query: Query,
    ) -> Result<SubscriptionInfo, ServerError> {
        self.subscriptions
            .register(&self.store, name, query, self.planner.policy())
            .map_err(ServerError::from)
    }

    /// Drops the named standing query; an unknown name reports the
    /// nearest registered one as a typo hint.
    pub fn unsubscribe(&self, name: &str) -> Result<(), ServerError> {
        self.subscriptions
            .unregister_checked(name)
            .map_err(ServerError::from)
    }

    /// Every registered standing query's state, ascending by name.
    pub fn subscriptions(&self) -> Vec<SubscriptionInfo> {
        self.subscriptions.list()
    }

    /// Drains the named subscription's change feed: the undrained
    /// [`crate::subscription::SubDelta`]s in epoch order.
    pub fn poll_subscription(
        &self,
        name: &str,
    ) -> Result<Vec<crate::subscription::SubDelta>, ServerError> {
        self.subscriptions
            .drain(name)
            .ok_or_else(|| self.unknown_subscription(name))
    }

    /// The named subscription's current maintained answer (intervals or
    /// probability rows, by statement shape).
    pub fn subscription_answer(
        &self,
        name: &str,
    ) -> Result<crate::subscription::SubAnswer, ServerError> {
        self.subscriptions
            .answer(name)
            .ok_or_else(|| self.unknown_subscription(name))
    }

    /// The named subscription's current maintained answer together with
    /// the epoch it is current at (read atomically — the resync point a
    /// lagged push consumer recovers from; see [`crate::net`]).
    pub fn subscription_answer_with_epoch(
        &self,
        name: &str,
    ) -> Result<(crate::subscription::SubAnswer, u64), ServerError> {
        self.subscriptions
            .answer_with_epoch(name)
            .ok_or_else(|| self.unknown_subscription(name))
    }

    /// The named subscription's answer rendered through its query's
    /// quantifier and target, like a one-shot execution.
    pub fn subscription_output(&self, name: &str) -> Result<QueryOutput, ServerError> {
        self.subscriptions
            .output(name)
            .ok_or_else(|| self.unknown_subscription(name))
    }

    /// An unknown-subscription error carrying the nearest registered
    /// name as a hint.
    fn unknown_subscription(&self, name: &str) -> ServerError {
        SubscriptionError::Unknown {
            name: name.to_string(),
            nearest: self.subscriptions.nearest_name(name),
        }
        .into()
    }

    /// Number of probability probes used when evaluating a threshold
    /// comparison (`PROB_NN(...) > p` with `p > 0`, the §7 extension).
    /// Aliases the standing-query sampling density
    /// ([`crate::subscription::PROB_ROW_SAMPLES`]), so one-shot sweeps
    /// and maintained probability rows probe identical instants.
    pub const THRESHOLD_SAMPLES: usize = crate::subscription::PROB_ROW_SAMPLES as usize;

    /// Executes an already-parsed query.
    pub fn execute_parsed(&self, query: &Query) -> Result<QueryOutput, ServerError> {
        let q_oid = self.resolve(&query.query_object)?;
        let window = TimeInterval::try_new(query.window.0, query.window.1)
            .ok_or(ServerError::Window(DifferenceError::DegenerateWindow))?;
        if query.predicate == PredicateKind::Rnn {
            return self.execute_reverse(query, q_oid, window);
        }
        let (engine, _) = self.engine(q_oid, window)?;
        if query.prob_threshold > 0.0 {
            return self.execute_threshold(query, &engine);
        }
        match &query.target {
            Target::One(name) => {
                let oid = self.resolve(name)?;
                let answer = match (&query.quantifier, query.rank) {
                    (Quantifier::Exists, None) => engine.uq11_exists(oid),
                    (Quantifier::Exists, Some(k)) => engine.uq21_exists(oid, k),
                    (Quantifier::Forall, None) => engine.uq12_always(oid),
                    (Quantifier::Forall, Some(k)) => engine.uq22_always(oid, k),
                    (Quantifier::AtLeast(x), None) => engine.uq13_at_least(oid, *x),
                    (Quantifier::AtLeast(x), Some(k)) => engine.uq23_at_least(oid, k, *x),
                    (Quantifier::At(t), None) => engine.uq1_at(oid, *t),
                    (Quantifier::At(t), Some(k)) => engine.uq2_at(oid, k, *t),
                };
                // The engine only knows prefilter survivors; an object
                // that is registered but was conservatively filtered out
                // is provably outside the 4r band throughout the window —
                // its in-band fraction is exactly zero. Evaluate each
                // quantifier at fraction zero so the answer matches what
                // the exhaustive engine returns for the same object
                // (notably `ATLEAST x` holds at x = 0).
                let answer = match answer {
                    Some(b) => Some(b),
                    None if oid != q_oid => Some(match &query.quantifier {
                        Quantifier::AtLeast(x) => 1e-12 >= *x,
                        _ => false,
                    }),
                    None => None,
                };
                answer
                    .map(QueryOutput::Boolean)
                    .ok_or_else(|| ServerError::UnknownObject(name.clone()))
            }
            Target::All => {
                let out: Vec<(Oid, f64)> = match (&query.quantifier, query.rank) {
                    (Quantifier::Exists, None) => engine
                        .uq31_all()
                        .into_iter()
                        .map(|(o, iv)| (o, iv.total_len() / window.len()))
                        .collect(),
                    (Quantifier::Exists, Some(k)) => engine
                        .uq41_all(k)
                        .into_iter()
                        .map(|(o, iv)| (o, iv.total_len() / window.len()))
                        .collect(),
                    (Quantifier::Forall, None) => {
                        engine.uq32_all().into_iter().map(|o| (o, 1.0)).collect()
                    }
                    (Quantifier::Forall, Some(k)) => {
                        engine.uq42_all(k).into_iter().map(|o| (o, 1.0)).collect()
                    }
                    (Quantifier::AtLeast(x), None) => engine.uq33_all(*x),
                    (Quantifier::AtLeast(x), Some(k)) => engine.uq43_all(k, *x),
                    (Quantifier::At(t), None) => engine
                        .uq31_all()
                        .into_iter()
                        .filter(|(_, iv)| iv.covers(*t))
                        .map(|(o, iv)| (o, iv.total_len() / window.len()))
                        .collect(),
                    (Quantifier::At(t), Some(k)) => engine
                        .uq41_all(k)
                        .into_iter()
                        .filter(|(_, iv)| iv.covers(*t))
                        .map(|(o, iv)| (o, iv.total_len() / window.len()))
                        .collect(),
                };
                Ok(QueryOutput::Objects(out))
            }
        }
    }

    /// Reverse probabilistic NN (a §7 future-work variant): the objects
    /// for which `target` has non-zero probability of being *their*
    /// nearest neighbor at some time during the window.
    ///
    /// Processes one envelope per candidate (`O(N² log N)` total) — the
    /// scalable treatment is future work in the paper too.
    pub fn reverse_nn_candidates(
        &self,
        target: Oid,
        window: TimeInterval,
    ) -> Result<Vec<Oid>, ServerError> {
        if !self.store.contains(target) {
            return Err(ServerError::UnknownObject(target.to_string()));
        }
        let mut out = Vec::new();
        for oid in self.store.oids() {
            if oid == target {
                continue;
            }
            let (engine, _) = self.engine(oid, window)?;
            if engine.uq11_exists(target).unwrap_or(false) {
                out.push(oid);
            }
        }
        Ok(out)
    }

    /// Builds (or fetches from the cache) the full reverse-NN engine
    /// (every candidate's perspective envelope) for `query_oid` over the
    /// window — the `O(N² log N)` structure behind the `PROB_RNN`
    /// statements. Always planned exhaustively: every perspective object
    /// needs its envelope over the whole MOD.
    pub fn reverse_engine(
        &self,
        query_oid: Oid,
        window: TimeInterval,
    ) -> Result<Arc<ReverseNnEngine>, ServerError> {
        let snapshot = self.store.snapshot();
        let key = EngineKey::new(
            snapshot.epoch(),
            EngineKind::Reverse,
            query_oid,
            window,
            PrefilterPolicy::Exhaustive.tag(),
        );
        let (cached, _) = self.cache.get_or_build(key, || {
            let plan = QueryPlanner::new(PrefilterPolicy::Exhaustive)
                .plan(Arc::clone(&snapshot), query_oid, window)
                .map_err(ServerError::from)?;
            plan.build_reverse_engine()
                .map(|e| CachedEngine::Reverse(Arc::new(e)))
                .map_err(ServerError::Window)
        })?;
        Ok(cached.reverse().expect("reverse key holds reverse engine"))
    }

    /// Builds (or fetches from the cache) the heterogeneous-radii engine
    /// (the §7 "different uncertainty zones" extension) using each
    /// registered object's **own** radius — the one configuration
    /// [`ModServer::engine`] rejects with [`ServerError::MixedRadii`].
    pub fn hetero_engine(
        &self,
        query_oid: Oid,
        window: TimeInterval,
    ) -> Result<Arc<HeteroEngine>, ServerError> {
        let snapshot = self.store.snapshot();
        let key = EngineKey::new(
            snapshot.epoch(),
            EngineKind::Hetero,
            query_oid,
            window,
            PrefilterPolicy::Exhaustive.tag(),
        );
        let (cached, _) = self.cache.get_or_build(key, || {
            let plan = QueryPlanner::new(PrefilterPolicy::Exhaustive)
                .plan_heterogeneous(Arc::clone(&snapshot), query_oid, window)
                .map_err(ServerError::from)?;
            plan.build_hetero_engine()
                .map(|e| CachedEngine::Hetero(Arc::new(e)))
                .map_err(ServerError::Window)
        })?;
        Ok(cached.hetero().expect("hetero key holds hetero engine"))
    }

    /// The crisp continuous k-NN answer for `query_oid` (the §7 Top-k
    /// comparison substrate): a partition of the window into cells with
    /// the ordered k nearest objects. Planned exhaustively — crisp rank
    /// `k` is not bounded by the `4r` band, so the prefilter does not
    /// apply.
    pub fn knn_answer(
        &self,
        query_oid: Oid,
        window: TimeInterval,
        k: usize,
    ) -> Result<KnnAnswer, ServerError> {
        let (engine, _) =
            self.engine_with_policy(query_oid, window, PrefilterPolicy::Exhaustive)?;
        Ok(continuous_knn(engine.functions(), k))
    }

    /// The §2.2 **instantaneous** probabilistic NN ranking at instant `t`:
    /// Figure 4's `R_min/R_max` pruning followed by the Eq. 5 evaluation
    /// over the survivors. Works with mixed radii (the per-pair convolved
    /// supports are used throughout).
    pub fn instantaneous_nn(
        &self,
        query_oid: Oid,
        t: f64,
    ) -> Result<crate::instantaneous::InstantRanking, ServerError> {
        let snapshot = self.store.snapshot();
        crate::instantaneous::instantaneous_nn(&snapshot, query_oid, t).map_err(|e| match e {
            crate::instantaneous::InstantError::UnknownQuery(oid) => {
                ServerError::UnknownObject(oid.to_string())
            }
            _ => ServerError::NotEnoughObjects,
        })
    }

    /// Evaluates a `PROB_RNN` statement: the reverse-NN predicate over the
    /// per-candidate perspective engines. Positive thresholds sample the
    /// instantaneous probability of the query being the candidate's NN.
    fn execute_reverse(
        &self,
        query: &Query,
        q_oid: Oid,
        window: TimeInterval,
    ) -> Result<QueryOutput, ServerError> {
        use unn_core::kernel::ColumnKernel;
        use unn_core::threshold::probability_at_kernel;
        let rev = self.reverse_engine(q_oid, window)?;
        let p = query.prob_threshold;
        let kernel = if p > 0.0 {
            Some(ColumnKernel::from_profile(self.difference_model()?.profile))
        } else {
            None
        };
        // Fraction of the window during which the query may be (p == 0) or
        // probably is (p > 0) `oid`'s nearest neighbor.
        let fraction_of = |oid: Oid| -> Option<f64> {
            let engine = rev
                .perspective_engines()
                .find(|(o, _)| *o == oid)
                .map(|(_, e)| e)?;
            if p == 0.0 {
                return rev.rnn_fraction(oid);
            }
            let kernel = kernel.as_ref().expect("built for p > 0");
            let n = Self::THRESHOLD_SAMPLES;
            let hits = (0..n)
                .filter(|k| {
                    let t = window.start() + (*k as f64 + 0.5) * window.len() / n as f64;
                    probability_at_kernel(engine, kernel, q_oid, t).unwrap_or(0.0) > p
                })
                .count();
            Some(hits as f64 / n as f64)
        };
        let full = if p == 0.0 {
            1.0 - 1e-6
        } else {
            1.0 - 0.5 / Self::THRESHOLD_SAMPLES as f64
        };
        let decide = |frac: f64, quant: &Quantifier, at_hit: bool| match quant {
            Quantifier::Exists => frac > 0.0,
            Quantifier::Forall => frac >= full,
            Quantifier::AtLeast(x) => frac + 1e-12 >= *x,
            Quantifier::At(_) => at_hit,
        };
        let at_hit_of = |oid: Oid, t: f64| -> bool {
            if p == 0.0 {
                rev.rnn_intervals(oid)
                    .map(|iv| iv.covers(t))
                    .unwrap_or(false)
            } else {
                let kernel = kernel.as_ref().expect("built for p > 0");
                rev.perspective_engines()
                    .find(|(o, _)| *o == oid)
                    .map(|(_, e)| probability_at_kernel(e, kernel, q_oid, t).unwrap_or(0.0) > p)
                    .unwrap_or(false)
            }
        };
        match &query.target {
            Target::One(name) => {
                let oid = self.resolve(name)?;
                let frac =
                    fraction_of(oid).ok_or_else(|| ServerError::UnknownObject(name.clone()))?;
                let at_hit = match &query.quantifier {
                    Quantifier::At(t) => at_hit_of(oid, *t),
                    _ => false,
                };
                Ok(QueryOutput::Boolean(decide(
                    frac,
                    &query.quantifier,
                    at_hit,
                )))
            }
            Target::All => {
                let mut out = Vec::new();
                for (oid, _) in rev.perspective_engines() {
                    let Some(frac) = fraction_of(oid) else {
                        continue;
                    };
                    let at_hit = match &query.quantifier {
                        Quantifier::At(t) => at_hit_of(oid, *t),
                        _ => false,
                    };
                    if decide(frac, &query.quantifier, at_hit) {
                        out.push((oid, frac));
                    }
                }
                Ok(QueryOutput::Objects(out))
            }
        }
    }

    /// The convolved difference pdf of the MOD's (shared) location model —
    /// exact closed form for uniform disks, numeric radial convolution for
    /// everything else (§3.1) — together with its profiled kernel tables,
    /// from the store-wide cache (one-shot sweeps, row subscriptions, and
    /// RNN perspective engines all share the same entry).
    fn difference_model(&self) -> Result<crate::store::DifferenceModel, ServerError> {
        let snapshot = self.store.snapshot();
        let kind = common_pdf_kind(&snapshot)
            .map_err(|_| ServerError::MixedPdfs)?
            .ok_or(ServerError::NotEnoughObjects)?;
        Ok(self.store.difference_model(&kind))
    }

    /// Evaluates a §7 threshold comparison (`PROB_NN(...) > p`, `p > 0`)
    /// by probability sampling at [`ModServer::THRESHOLD_SAMPLES`]
    /// instants, under the MOD's registered location model (uniform or
    /// truncated Gaussian). Rank bounds compose: an instant counts only
    /// when the object is also within the top `k` ranks there.
    fn execute_threshold(
        &self,
        query: &Query,
        engine: &QueryEngine,
    ) -> Result<QueryOutput, ServerError> {
        use unn_core::kernel::ColumnKernel;
        use unn_core::threshold::{probability_at_kernel, threshold_nn_sweep_kernel};
        let p = query.prob_threshold;
        let kernel = ColumnKernel::from_profile(self.difference_model()?.profile);
        let rows = threshold_nn_sweep_kernel(engine, &kernel, p, Self::THRESHOLD_SAMPLES);
        let fraction_of = |oid: Oid| -> f64 {
            let base = rows
                .iter()
                .find(|r| r.oid == oid)
                .map(|r| r.fraction)
                .unwrap_or(0.0);
            match query.rank {
                None => base,
                Some(k) => {
                    // Conservative composition: intersect the sampled
                    // threshold fraction with the rank-interval fraction.
                    let rk = engine.uq23_fraction(oid, k).unwrap_or(0.0);
                    base.min(rk)
                }
            }
        };
        // One probe is 1/THRESHOLD_SAMPLES of the window; "always" means
        // every probe passed.
        let full = 1.0 - 0.5 / Self::THRESHOLD_SAMPLES as f64;
        match &query.target {
            Target::One(name) => {
                let oid = self.resolve(name)?;
                let ans = match &query.quantifier {
                    Quantifier::Exists => fraction_of(oid) > 0.0,
                    Quantifier::Forall => fraction_of(oid) >= full,
                    Quantifier::AtLeast(x) => fraction_of(oid) + 1e-12 >= *x,
                    Quantifier::At(t) => {
                        probability_at_kernel(engine, &kernel, oid, *t).unwrap_or(0.0) > p
                    }
                };
                Ok(QueryOutput::Boolean(ans))
            }
            Target::All => {
                let mut out = Vec::new();
                for row in &rows {
                    let frac = fraction_of(row.oid);
                    let keep = match &query.quantifier {
                        Quantifier::Exists => frac > 0.0,
                        Quantifier::Forall => frac >= full,
                        Quantifier::AtLeast(x) => frac + 1e-12 >= *x,
                        Quantifier::At(t) => {
                            probability_at_kernel(engine, &kernel, row.oid, *t).unwrap_or(0.0) > p
                        }
                    };
                    if keep {
                        out.push((row.oid, frac));
                    }
                }
                Ok(QueryOutput::Objects(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_traj::trajectory::Trajectory;

    fn tr(oid: u64, pts: &[(f64, f64, f64)]) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(Trajectory::from_triples(Oid(oid), pts).unwrap(), 0.5)
            .unwrap()
    }

    fn server() -> ModServer {
        let s = ModServer::new();
        // Query object 0 moves along the x axis; 1 stays near; 2 dips in
        // mid-window; 3 is far away.
        s.register(tr(0, &[(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)]))
            .unwrap();
        s.register(tr(1, &[(0.0, 1.0, 0.0), (10.0, 1.0, 10.0)]))
            .unwrap();
        s.register(tr(2, &[(0.0, 8.0, 0.0), (10.0, 2.0, 10.0)]))
            .unwrap();
        s.register(tr(3, &[(0.0, 30.0, 0.0), (10.0, 30.0, 10.0)]))
            .unwrap();
        s
    }

    #[test]
    fn continuous_answer_and_stats() {
        let s = server();
        let ans = s
            .continuous_nn(Oid(0), TimeInterval::new(0.0, 10.0))
            .unwrap();
        assert!(!ans.sequence.is_empty());
        // Object 1 (distance 1 throughout) is the crisp NN everywhere.
        assert!(ans.sequence.iter().all(|(o, _)| *o == Oid(1)));
        assert_eq!(ans.stats.candidates, 3);
        assert!(ans.stats.kept >= 1);
        assert!(ans.stats.envelope_pieces >= 1);
    }

    #[test]
    fn execute_category_1() {
        let s = server();
        let q = "SELECT Tr1 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr1, Tr0, TIME) > 0";
        assert_eq!(s.execute(q).unwrap(), QueryOutput::Boolean(true));
        let q3 = "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr3, Tr0, TIME) > 0";
        assert_eq!(s.execute(q3).unwrap(), QueryOutput::Boolean(false));
        let qf = "SELECT Tr1 FROM MOD WHERE FORALL TIME IN [0, 10] AND PROB_NN(Tr1, Tr0, TIME) > 0";
        assert_eq!(s.execute(qf).unwrap(), QueryOutput::Boolean(true));
    }

    #[test]
    fn execute_category_2_rank() {
        let s = server();
        let q = "SELECT Tr2 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr2, Tr0, TIME, RANK 2) > 0";
        assert_eq!(s.execute(q).unwrap(), QueryOutput::Boolean(true));
    }

    #[test]
    fn execute_category_3_star() {
        let s = server();
        let q = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0";
        match s.execute(q).unwrap() {
            QueryOutput::Objects(objs) => {
                let oids: Vec<Oid> = objs.iter().map(|(o, _)| *o).collect();
                assert!(oids.contains(&Oid(1)));
                assert!(
                    !oids.contains(&Oid(3)),
                    "far object must be pruned: {objs:?}"
                );
                for (_, frac) in objs {
                    assert!((0.0..=1.0 + 1e-9).contains(&frac));
                }
            }
            other => panic!("expected Objects, got {other:?}"),
        }
    }

    #[test]
    fn execute_atleast_percent() {
        let s = server();
        let q =
            "SELECT * FROM MOD WHERE ATLEAST 90 % OF TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0";
        match s.execute(q).unwrap() {
            QueryOutput::Objects(objs) => {
                for (_, frac) in &objs {
                    assert!(*frac >= 0.9 - 1e-9);
                }
            }
            other => panic!("expected Objects, got {other:?}"),
        }
    }

    #[test]
    fn execute_fixed_time() {
        let s = server();
        let q = "SELECT Tr1 FROM MOD WHERE AT 5 TIME IN [0, 10] AND PROB_NN(Tr1, Tr0, TIME) > 0";
        assert_eq!(s.execute(q).unwrap(), QueryOutput::Boolean(true));
        let q3 = "SELECT Tr3 FROM MOD WHERE AT 5 TIME IN [0, 10] AND PROB_NN(Tr3, Tr0, TIME) > 0";
        assert_eq!(s.execute(q3).unwrap(), QueryOutput::Boolean(false));
    }

    #[test]
    fn error_paths() {
        let s = server();
        // Unknown object.
        let q = "SELECT Tr9 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr9, Tr0, TIME) > 0";
        assert!(matches!(s.execute(q), Err(ServerError::UnknownObject(_))));
        // Window outside trajectory domains.
        let q = "SELECT Tr1 FROM MOD WHERE EXISTS TIME IN [0, 100] AND PROB_NN(Tr1, Tr0, TIME) > 0";
        assert!(matches!(s.execute(q), Err(ServerError::Window(_))));
        // Parse error surfaces.
        assert!(matches!(s.execute("SELECT"), Err(ServerError::Parse(_))));
        // Not enough objects.
        let empty = ModServer::new();
        empty
            .register(tr(0, &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]))
            .unwrap();
        assert!(matches!(
            empty.engine(Oid(0), TimeInterval::new(0.0, 1.0)),
            Err(ServerError::NotEnoughObjects)
        ));
    }

    #[test]
    fn threshold_queries_execute() {
        let s = server();
        // Tr1 stays one mile away while everything else is far: its P^NN
        // is high throughout, so a 60% threshold holds for most probes.
        let q = "SELECT Tr1 FROM MOD WHERE ATLEAST 0.6 OF TIME IN [0, 10] \
                 AND PROB_NN(Tr1, Tr0, TIME) > 0.6";
        assert_eq!(s.execute(q).unwrap(), QueryOutput::Boolean(true));
        // Nobody beats a 99% probability all of the time against live
        // competition from Tr2 late in the window... but Tr1 might; just
        // check the statement executes and returns a Boolean.
        let q2 = "SELECT Tr2 FROM MOD WHERE EXISTS TIME IN [0, 10] \
                  AND PROB_NN(Tr2, Tr0, TIME) > 0.9";
        assert!(matches!(s.execute(q2).unwrap(), QueryOutput::Boolean(_)));
        // Star form returns fractions.
        let q3 = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] \
                  AND PROB_NN(*, Tr0, TIME) > 0.5";
        match s.execute(q3).unwrap() {
            QueryOutput::Objects(objs) => {
                assert!(objs.iter().any(|(o, _)| *o == Oid(1)), "{objs:?}");
                assert!(objs.iter().all(|(o, _)| *o != Oid(3)), "{objs:?}");
            }
            other => panic!("expected Objects, got {other:?}"),
        }
        // Fixed-time threshold.
        let q4 = "SELECT Tr1 FROM MOD WHERE AT 5 TIME IN [0, 10] \
                  AND PROB_NN(Tr1, Tr0, TIME) > 0.5";
        assert_eq!(s.execute(q4).unwrap(), QueryOutput::Boolean(true));
    }

    #[test]
    fn threshold_with_rank_composes() {
        let s = server();
        let q = "SELECT * FROM MOD WHERE ATLEAST 0.1 OF TIME IN [0, 10] \
                 AND PROB_NN(*, Tr0, TIME, RANK 1) > 0.3";
        match s.execute(q).unwrap() {
            QueryOutput::Objects(objs) => {
                // Rank-1 + threshold: only the dominant object remains.
                assert!(objs.iter().any(|(o, _)| *o == Oid(1)), "{objs:?}");
            }
            other => panic!("expected Objects, got {other:?}"),
        }
    }

    #[test]
    fn gaussian_mod_threshold_statements() {
        use unn_prob::pdf::PdfKind;
        use unn_traj::uncertain::UncertainTrajectory;
        let s = ModServer::new();
        let mk = |oid: u64, pts: &[(f64, f64, f64)]| {
            UncertainTrajectory::new(
                Trajectory::from_triples(Oid(oid), pts).unwrap(),
                0.5,
                PdfKind::TruncatedGaussian {
                    radius: 0.5,
                    sigma: 0.15,
                },
            )
            .unwrap()
        };
        s.register(mk(0, &[(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)]))
            .unwrap();
        s.register(mk(1, &[(0.0, 1.0, 0.0), (10.0, 1.0, 10.0)]))
            .unwrap();
        s.register(mk(2, &[(0.0, 1.6, 0.0), (10.0, 1.6, 10.0)]))
            .unwrap();
        // The concentrated Gaussian model leaves Tr1 dominant: its P^NN
        // stays above 90% (under uniform it would be lower because Tr2's
        // diffuse mass competes more).
        let q = "SELECT Tr1 FROM MOD WHERE ATLEAST 0.9 OF TIME IN [0, 10] \
                 AND PROB_NN(Tr1, Tr0, TIME) > 0.8";
        assert_eq!(s.execute(q).unwrap(), QueryOutput::Boolean(true));
        // Mixing pdf kinds is rejected for threshold evaluation.
        s.register(
            UncertainTrajectory::with_uniform_pdf(
                Trajectory::from_triples(Oid(3), &[(0.0, 5.0, 0.0), (10.0, 5.0, 10.0)]).unwrap(),
                0.5,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(s.execute(q), Err(ServerError::MixedPdfs)));
    }

    #[test]
    fn resolve_accepts_plain_numbers() {
        let s = server();
        assert_eq!(s.resolve("Tr2").unwrap(), Oid(2));
        assert_eq!(s.resolve("2").unwrap(), Oid(2));
        assert!(s.resolve("Tr99").is_err());
        assert!(s.resolve("bogus").is_err());
    }

    #[test]
    fn reverse_nn_candidates_work() {
        let s = server();
        let w = TimeInterval::new(0.0, 10.0);
        // Tr0 and Tr1 run in parallel one mile apart: each is the other's
        // NN, so Tr0 must appear in Tr1's reverse set.
        let rev = s.reverse_nn_candidates(Oid(0), w).unwrap();
        assert!(rev.contains(&Oid(1)), "{rev:?}");
        // The far object (Tr3) has Tr2-or-closer objects as its
        // candidates; Tr0 is further than 4r below its envelope? Tr3 at
        // y=30 vs others at y<=8: its nearest is Tr2 (y from 8 to 2)...
        // just assert the call is well-formed and excludes the target.
        assert!(!rev.contains(&Oid(0)));
        assert!(matches!(
            s.reverse_nn_candidates(Oid(42), w),
            Err(ServerError::UnknownObject(_))
        ));
    }

    #[test]
    fn execute_reverse_statements() {
        let s = server();
        // Tr0 and Tr1 run in parallel one mile apart: Tr0 is a possible NN
        // of Tr1 throughout (their gap 1 < LE_1 + 4r everywhere).
        let q = "SELECT Tr1 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_RNN(Tr1, Tr0, TIME) > 0";
        assert_eq!(s.execute(q).unwrap(), QueryOutput::Boolean(true));
        // Star form lists every object that may have Tr0 as its NN.
        let qs = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_RNN(*, Tr0, TIME) > 0";
        match s.execute(qs).unwrap() {
            QueryOutput::Objects(objs) => {
                assert!(objs.iter().any(|(o, _)| *o == Oid(1)), "{objs:?}");
                for (_, f) in &objs {
                    assert!((0.0..=1.0 + 1e-9).contains(f));
                }
            }
            other => panic!("expected Objects, got {other:?}"),
        }
        // Fixed-time reverse.
        let qa = "SELECT Tr1 FROM MOD WHERE AT 5 TIME IN [0, 10] AND PROB_RNN(Tr1, Tr0, TIME) > 0";
        assert_eq!(s.execute(qa).unwrap(), QueryOutput::Boolean(true));
        // Reverse with a probability threshold: Tr0 is Tr1's only close
        // neighbor, so its reverse probability is high.
        let qt = "SELECT Tr1 FROM MOD WHERE ATLEAST 0.5 OF TIME IN [0, 10] \
                  AND PROB_RNN(Tr1, Tr0, TIME) > 0.5";
        assert!(matches!(s.execute(qt).unwrap(), QueryOutput::Boolean(_)));
    }

    #[test]
    fn reverse_agrees_with_candidate_scan() {
        let s = server();
        let w = TimeInterval::new(0.0, 10.0);
        let via_scan = s.reverse_nn_candidates(Oid(0), w).unwrap();
        let rev = s.reverse_engine(Oid(0), w).unwrap();
        let via_engine: Vec<Oid> = rev.rnn_all().into_iter().map(|(o, _)| o).collect();
        for oid in &via_scan {
            assert!(via_engine.contains(oid), "{oid} missing from engine answer");
        }
        for oid in &via_engine {
            assert!(via_scan.contains(oid), "{oid} missing from scan answer");
        }
    }

    #[test]
    fn hetero_engine_accepts_mixed_radii() {
        let s = ModServer::new();
        let mk = |oid: u64, pts: &[(f64, f64, f64)], r: f64| {
            UncertainTrajectory::with_uniform_pdf(
                Trajectory::from_triples(Oid(oid), pts).unwrap(),
                r,
            )
            .unwrap()
        };
        s.register(mk(0, &[(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)], 0.3))
            .unwrap();
        s.register(mk(1, &[(0.0, 1.0, 0.0), (10.0, 1.0, 10.0)], 0.2))
            .unwrap();
        s.register(mk(2, &[(0.0, 9.0, 0.0), (10.0, 9.0, 10.0)], 3.0))
            .unwrap();
        let w = TimeInterval::new(0.0, 10.0);
        // The homogeneous path refuses mixed radii…
        assert!(matches!(s.engine(Oid(0), w), Err(ServerError::MixedRadii)));
        // …the hetero engine handles them: the distant-but-diffuse Tr2 is
        // possible (gap 8 < slack 3.3 + threshold 1 + 0.5).
        let h = s.hetero_engine(Oid(0), w).unwrap();
        assert_eq!(h.exists(Oid(1)), Some(true));
        assert_eq!(h.query_radius(), 0.3);
        let probs = h.probabilities_at(5.0).unwrap();
        let sum: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-2, "sum {sum}");
    }

    #[test]
    fn knn_answer_via_server() {
        let s = server();
        let w = TimeInterval::new(0.0, 10.0);
        let ans = s.knn_answer(Oid(0), w, 2).unwrap();
        assert_eq!(ans.k(), 2);
        // Tr1 (distance 1 throughout) is always rank 1.
        for c in ans.cells() {
            assert_eq!(c.ranked[0], Oid(1), "{c:?}");
        }
    }

    #[test]
    fn ipac_tree_via_server() {
        let s = server();
        let tree = s
            .ipac_tree(Oid(0), TimeInterval::new(0.0, 10.0), 2)
            .unwrap();
        assert!(tree.node_count() >= 1);
        assert!(tree.depth() <= 2);
    }
}
