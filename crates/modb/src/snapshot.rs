//! Epoch-stamped, `Arc`-shared snapshots of the MOD — the first stage of
//! the snapshot → prefilter → envelope → execute query pipeline.
//!
//! A [`QuerySnapshot`] is an immutable view of the store's contents taken
//! at one mutation epoch. The store hands out the **same** `Arc` until a
//! mutation bumps the epoch, so concurrent queries share one copy of
//! every trajectory instead of deep-cloning the MOD per call (the §2.1
//! "server keeps a copy" made cheap). Derived per-snapshot structures —
//! the STR R-tree and uniform-grid segment indexes and the per-object
//! corridor boxes the prefilter consults — are built lazily at most once
//! per snapshot and shared the same way, which is how the §7 access-method
//! delegation gets amortized across the §4 query variants.

use crate::delta::NetDelta;
use crate::index::bbox::Aabb3;
use crate::index::grid::GridIndex;
use crate::index::rtree::RTree;
use crate::index::{segment_boxes, segment_boxes_of};
use std::collections::{BTreeSet, HashSet};
use std::ops::Deref;
use std::sync::OnceLock;
use unn_traj::trajectory::{Oid, Trajectory};
use unn_traj::uncertain::UncertainTrajectory;

/// An immutable, epoch-stamped view of the MOD's trajectories (ascending
/// by id), with lazily built per-snapshot index structures.
#[derive(Debug)]
pub struct QuerySnapshot {
    epoch: u64,
    objects: Vec<UncertainTrajectory>,
    /// Objects touched by delta patches since the last from-scratch
    /// build (0 for fresh snapshots). Patching degrades index shape —
    /// R-tree overflow entries, emptied grid cells — so the store
    /// charges the accumulated debt against its rebuild budget, bounding
    /// the degradation before a re-pack restores it.
    patch_debt: usize,
    grid: OnceLock<GridIndex>,
    rtree: OnceLock<RTree>,
    full_boxes: OnceLock<Vec<Aabb3>>,
}

impl QuerySnapshot {
    /// Wraps the objects (which must be ascending by id) captured at
    /// `epoch`.
    pub fn new(epoch: u64, objects: Vec<UncertainTrajectory>) -> Self {
        debug_assert!(objects.windows(2).all(|w| w[0].oid() < w[1].oid()));
        QuerySnapshot {
            epoch,
            objects,
            patch_debt: 0,
            grid: OnceLock::new(),
            rtree: OnceLock::new(),
            full_boxes: OnceLock::new(),
        }
    }

    /// Objects touched by delta patches since the last from-scratch
    /// build. The store adds this to the pending delta when deciding
    /// between patching and rebuilding, so index degradation (R-tree
    /// overflow growth, sparse grid cells) stays bounded by the rebuild
    /// fraction even under an endless stream of small deltas.
    pub fn patch_debt(&self) -> usize {
        self.patch_debt
    }

    /// Derives the snapshot at `epoch` from `prev` by applying the net
    /// delta, instead of re-copying the store and rebuilding every index.
    ///
    /// The object list is merged in one pass; every index structure that
    /// was already built on `prev` is patched via its `apply_delta`
    /// (structural sharing, `O(|delta| · log N)`), so steady-state
    /// update-then-query workloads never pay a full `O(N log N)` index
    /// rebuild. Indexes never built on `prev` stay lazy. Answers are
    /// identical to a cold rebuild — the patched indexes return exactly
    /// the same candidate sets, and the planner's conservative-prefilter
    /// guarantee does the rest.
    pub fn apply_delta(prev: &QuerySnapshot, epoch: u64, net: &NetDelta) -> QuerySnapshot {
        let removed: BTreeSet<Oid> = net.removed.iter().copied().collect();
        let changed: BTreeSet<Oid> = removed
            .iter()
            .copied()
            .chain(net.inserted.iter().map(|t| t.oid()))
            .collect();
        // One merge pass: survivors of `prev` interleaved with the
        // (ascending) insertions.
        let mut objects: Vec<UncertainTrajectory> =
            Vec::with_capacity(prev.objects.len() - net.removed.len() + net.inserted.len());
        let mut ins = net.inserted.iter().peekable();
        for obj in &prev.objects {
            if removed.contains(&obj.oid()) {
                continue;
            }
            while ins.peek().map(|t| t.oid() < obj.oid()).unwrap_or(false) {
                objects.push(ins.next().unwrap().clone());
            }
            objects.push(obj.clone());
        }
        objects.extend(ins.cloned());
        let mut next = QuerySnapshot::new(epoch, objects);
        next.patch_debt = prev.patch_debt + net.size();

        // Patch whichever index structures the previous snapshot had
        // materialized; the delta's index entries are the removed
        // objects' original segment boxes (recomputed from `prev`'s
        // content, so they match what was indexed) and the insertions'.
        let needs_boxes = prev.grid.get().is_some() || prev.rtree.get().is_some();
        if needs_boxes {
            let removed_set: HashSet<Oid> = removed.iter().copied().collect();
            let mut removed_boxes = Vec::new();
            for oid in &removed {
                let tr = prev.get(*oid).expect("net delta removals exist in prev");
                segment_boxes_of(tr, &mut removed_boxes);
            }
            let mut insert_boxes = Vec::new();
            for tr in &net.inserted {
                segment_boxes_of(tr, &mut insert_boxes);
            }
            if let Some(grid) = prev.grid.get() {
                let _ =
                    next.grid
                        .set(grid.apply_delta(&insert_boxes, &removed_set, &removed_boxes));
            }
            if let Some(rtree) = prev.rtree.get() {
                let _ =
                    next.rtree
                        .set(rtree.apply_delta(&insert_boxes, &removed_set, &removed_boxes));
            }
        }
        if let Some(prev_boxes) = prev.full_boxes.get() {
            let boxes: Vec<Aabb3> = next
                .objects
                .iter()
                .map(|t| match prev.index_of(t.oid()) {
                    Some(i) if !changed.contains(&t.oid()) => prev_boxes[i],
                    _ => trajectory_box(t.trajectory()),
                })
                .collect();
            let _ = next.full_boxes.set(boxes);
        }
        next
    }

    /// The store epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The trajectories, ascending by id.
    pub fn objects(&self) -> &[UncertainTrajectory] {
        &self.objects
    }

    /// Position of `oid` in [`QuerySnapshot::objects`].
    pub fn index_of(&self, oid: Oid) -> Option<usize> {
        self.objects.binary_search_by_key(&oid, |t| t.oid()).ok()
    }

    /// The trajectory with the given id.
    pub fn get(&self, oid: Oid) -> Option<&UncertainTrajectory> {
        self.index_of(oid).map(|i| &self.objects[i])
    }

    /// `true` when the id is present.
    pub fn contains(&self, oid: Oid) -> bool {
        self.index_of(oid).is_some()
    }

    /// Owned copies of the trajectories (persistence and tests).
    pub fn to_vec(&self) -> Vec<UncertainTrajectory> {
        self.objects.clone()
    }

    /// The uniform-grid segment index over this snapshot, built on first
    /// use and shared by every query against the same epoch.
    pub fn grid(&self) -> &GridIndex {
        self.grid.get_or_init(|| {
            let boxes = segment_boxes(&self.objects);
            let cells = boxes.len().max(1);
            GridIndex::build(boxes, cells)
        })
    }

    /// The STR R-tree segment index over this snapshot, built on first
    /// use and shared by every query against the same epoch.
    pub fn rtree(&self) -> &RTree {
        self.rtree
            .get_or_init(|| RTree::build(segment_boxes(&self.objects)))
    }

    /// Per-object full-domain corridor boxes (same order as
    /// [`QuerySnapshot::objects`]): the cheap whole-trajectory bounds the
    /// indexed prefilter uses to seed its envelope upper bound.
    pub fn full_boxes(&self) -> &[Aabb3] {
        self.full_boxes.get_or_init(|| {
            self.objects
                .iter()
                .map(|t| trajectory_box(t.trajectory()))
                .collect()
        })
    }
}

impl Deref for QuerySnapshot {
    type Target = [UncertainTrajectory];

    fn deref(&self) -> &[UncertainTrajectory] {
        &self.objects
    }
}

/// The `(x, y, t)` bounding box of a whole trajectory's expected
/// locations.
fn trajectory_box(tr: &Trajectory) -> Aabb3 {
    let mut min = [f64::INFINITY; 3];
    let mut max = [f64::NEG_INFINITY; 3];
    for s in tr.samples() {
        min[0] = min[0].min(s.position.x);
        min[1] = min[1].min(s.position.y);
        min[2] = min[2].min(s.time);
        max[0] = max[0].max(s.position.x);
        max[1] = max[1].max(s.position.y);
        max[2] = max[2].max(s.time);
    }
    Aabb3::new(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_traj::trajectory::Trajectory;

    fn tr(oid: u64, y: f64) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (10.0, y, 10.0)]).unwrap(),
            0.5,
        )
        .unwrap()
    }

    fn snapshot() -> QuerySnapshot {
        QuerySnapshot::new(7, vec![tr(1, 0.0), tr(3, 2.0), tr(9, 5.0)])
    }

    #[test]
    fn lookup_and_deref() {
        let s = snapshot();
        assert_eq!(s.epoch(), 7);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of(Oid(3)), Some(1));
        assert_eq!(s.get(Oid(9)).unwrap().oid(), Oid(9));
        assert!(!s.contains(Oid(2)));
        // Deref to a slice keeps the old Vec-shaped call sites working.
        let oids: Vec<u64> = s.iter().map(|t| t.oid().0).collect();
        assert_eq!(oids, vec![1, 3, 9]);
    }

    #[test]
    fn apply_delta_matches_a_fresh_snapshot() {
        use crate::delta::NetDelta;
        use crate::index::{query_box, SegmentIndex};
        let prev = snapshot();
        // Materialize everything so the delta path must patch it all.
        let everything = query_box(-100.0, -100.0, 100.0, 100.0, 0.0, 100.0);
        let _ = (
            prev.grid().entry_count(),
            prev.rtree().entry_count(),
            prev.full_boxes().len(),
        );
        // Update Tr3 (moved to y = 9), remove Tr9, insert Tr5.
        let net = NetDelta::new(vec![Oid(3), Oid(9)], vec![tr(3, 9.0), tr(5, 7.0)]);
        let next = QuerySnapshot::apply_delta(&prev, 8, &net);
        assert_eq!(next.patch_debt(), 3);
        let fresh = QuerySnapshot::new(8, vec![tr(1, 0.0), tr(3, 9.0), tr(5, 7.0)]);
        assert_eq!(next.epoch(), 8);
        let oids: Vec<u64> = next.iter().map(|t| t.oid().0).collect();
        assert_eq!(oids, vec![1, 3, 5]);
        assert_eq!(
            next.grid().query_bbox(&everything),
            fresh.grid().query_bbox(&everything)
        );
        assert_eq!(
            next.rtree().query_bbox(&everything),
            fresh.rtree().query_bbox(&everything)
        );
        // Patched indexes were pre-materialized, full boxes realigned.
        assert_eq!(next.full_boxes().len(), 3);
        assert_eq!(next.full_boxes()[1].min[1], 9.0 - 0.0); // updated Tr3
        let narrow = query_box(-1.0, 8.0, 11.0, 10.0, 0.0, 10.0);
        assert_eq!(
            next.grid().query_bbox(&narrow),
            fresh.grid().query_bbox(&narrow)
        );
        // The previous snapshot is untouched.
        assert_eq!(prev.len(), 3);
        assert!(prev.contains(Oid(9)));
    }

    #[test]
    fn lazy_indexes_cover_all_objects() {
        use crate::index::{query_box, SegmentIndex};
        let s = snapshot();
        let everything = query_box(-100.0, -100.0, 100.0, 100.0, 0.0, 10.0);
        assert_eq!(s.grid().query_bbox(&everything).len(), 3);
        assert_eq!(s.rtree().query_bbox(&everything).len(), 3);
        assert_eq!(s.full_boxes().len(), 3);
        // The second call returns the same built structure.
        assert_eq!(s.grid().entry_count(), s.grid().entry_count());
    }
}
