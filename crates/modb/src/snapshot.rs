//! Epoch-stamped, `Arc`-shared snapshots of the MOD — the first stage of
//! the snapshot → prefilter → envelope → execute query pipeline.
//!
//! A [`QuerySnapshot`] is an immutable view of the store's contents taken
//! at one mutation epoch. The store hands out the **same** `Arc` until a
//! mutation bumps the epoch, so concurrent queries share one copy of
//! every trajectory instead of deep-cloning the MOD per call (the §2.1
//! "server keeps a copy" made cheap). Derived per-snapshot structures —
//! the STR R-tree and uniform-grid segment indexes and the per-object
//! corridor boxes the prefilter consults — are built lazily at most once
//! per snapshot and shared the same way, which is how the §7 access-method
//! delegation gets amortized across the §4 query variants.

use crate::index::bbox::Aabb3;
use crate::index::grid::GridIndex;
use crate::index::rtree::RTree;
use crate::index::segment_boxes;
use std::ops::Deref;
use std::sync::OnceLock;
use unn_traj::trajectory::{Oid, Trajectory};
use unn_traj::uncertain::UncertainTrajectory;

/// An immutable, epoch-stamped view of the MOD's trajectories (ascending
/// by id), with lazily built per-snapshot index structures.
#[derive(Debug)]
pub struct QuerySnapshot {
    epoch: u64,
    objects: Vec<UncertainTrajectory>,
    grid: OnceLock<GridIndex>,
    rtree: OnceLock<RTree>,
    full_boxes: OnceLock<Vec<Aabb3>>,
}

impl QuerySnapshot {
    /// Wraps the objects (which must be ascending by id) captured at
    /// `epoch`.
    pub fn new(epoch: u64, objects: Vec<UncertainTrajectory>) -> Self {
        debug_assert!(objects.windows(2).all(|w| w[0].oid() < w[1].oid()));
        QuerySnapshot {
            epoch,
            objects,
            grid: OnceLock::new(),
            rtree: OnceLock::new(),
            full_boxes: OnceLock::new(),
        }
    }

    /// The store epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The trajectories, ascending by id.
    pub fn objects(&self) -> &[UncertainTrajectory] {
        &self.objects
    }

    /// Position of `oid` in [`QuerySnapshot::objects`].
    pub fn index_of(&self, oid: Oid) -> Option<usize> {
        self.objects.binary_search_by_key(&oid, |t| t.oid()).ok()
    }

    /// The trajectory with the given id.
    pub fn get(&self, oid: Oid) -> Option<&UncertainTrajectory> {
        self.index_of(oid).map(|i| &self.objects[i])
    }

    /// `true` when the id is present.
    pub fn contains(&self, oid: Oid) -> bool {
        self.index_of(oid).is_some()
    }

    /// Owned copies of the trajectories (persistence and tests).
    pub fn to_vec(&self) -> Vec<UncertainTrajectory> {
        self.objects.clone()
    }

    /// The uniform-grid segment index over this snapshot, built on first
    /// use and shared by every query against the same epoch.
    pub fn grid(&self) -> &GridIndex {
        self.grid.get_or_init(|| {
            let boxes = segment_boxes(&self.objects);
            let cells = boxes.len().max(1);
            GridIndex::build(boxes, cells)
        })
    }

    /// The STR R-tree segment index over this snapshot, built on first
    /// use and shared by every query against the same epoch.
    pub fn rtree(&self) -> &RTree {
        self.rtree
            .get_or_init(|| RTree::build(segment_boxes(&self.objects)))
    }

    /// Per-object full-domain corridor boxes (same order as
    /// [`QuerySnapshot::objects`]): the cheap whole-trajectory bounds the
    /// indexed prefilter uses to seed its envelope upper bound.
    pub fn full_boxes(&self) -> &[Aabb3] {
        self.full_boxes.get_or_init(|| {
            self.objects
                .iter()
                .map(|t| trajectory_box(t.trajectory()))
                .collect()
        })
    }
}

impl Deref for QuerySnapshot {
    type Target = [UncertainTrajectory];

    fn deref(&self) -> &[UncertainTrajectory] {
        &self.objects
    }
}

/// The `(x, y, t)` bounding box of a whole trajectory's expected
/// locations.
fn trajectory_box(tr: &Trajectory) -> Aabb3 {
    let mut min = [f64::INFINITY; 3];
    let mut max = [f64::NEG_INFINITY; 3];
    for s in tr.samples() {
        min[0] = min[0].min(s.position.x);
        min[1] = min[1].min(s.position.y);
        min[2] = min[2].min(s.time);
        max[0] = max[0].max(s.position.x);
        max[1] = max[1].max(s.position.y);
        max[2] = max[2].max(s.time);
    }
    Aabb3::new(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_traj::trajectory::Trajectory;

    fn tr(oid: u64, y: f64) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (10.0, y, 10.0)]).unwrap(),
            0.5,
        )
        .unwrap()
    }

    fn snapshot() -> QuerySnapshot {
        QuerySnapshot::new(7, vec![tr(1, 0.0), tr(3, 2.0), tr(9, 5.0)])
    }

    #[test]
    fn lookup_and_deref() {
        let s = snapshot();
        assert_eq!(s.epoch(), 7);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of(Oid(3)), Some(1));
        assert_eq!(s.get(Oid(9)).unwrap().oid(), Oid(9));
        assert!(!s.contains(Oid(2)));
        // Deref to a slice keeps the old Vec-shaped call sites working.
        let oids: Vec<u64> = s.iter().map(|t| t.oid().0).collect();
        assert_eq!(oids, vec![1, 3, 9]);
    }

    #[test]
    fn lazy_indexes_cover_all_objects() {
        use crate::index::{query_box, SegmentIndex};
        let s = snapshot();
        let everything = query_box(-100.0, -100.0, 100.0, 100.0, 0.0, 10.0);
        assert_eq!(s.grid().query_bbox(&everything).len(), 3);
        assert_eq!(s.rtree().query_bbox(&everything).len(), 3);
        assert_eq!(s.full_boxes().len(), 3);
        // The second call returns the same built structure.
        assert_eq!(s.grid().entry_count(), s.grid().entry_count());
    }
}
