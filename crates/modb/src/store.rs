//! The in-memory MOD store: the server-side collection of uncertain
//! trajectories (§2.1: the server "keeps a copy ... for query
//! processing").
//!
//! Mutations bump a monotonic epoch; [`ModStore::snapshot`] hands out an
//! `Arc`-shared, epoch-stamped [`QuerySnapshot`] that is reused until the
//! next mutation, so query execution never deep-clones the MOD. The
//! epoch is also the invalidation key for every derived structure (the
//! per-snapshot segment indexes and the engine cache): a structure built
//! from epoch `e` is valid exactly while `store.epoch() == e`.

use crate::snapshot::QuerySnapshot;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use unn_traj::trajectory::Oid;
use unn_traj::uncertain::UncertainTrajectory;

/// Errors raised by [`ModStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An object with this id is already stored.
    DuplicateOid(Oid),
    /// No object with this id.
    NotFound(Oid),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateOid(oid) => write!(f, "duplicate object id {oid}"),
            StoreError::NotFound(oid) => write!(f, "no object with id {oid}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Thread-safe store of uncertain trajectories, keyed by [`Oid`].
///
/// Mutations bump an epoch counter so index structures and caches built
/// from a snapshot can detect staleness cheaply.
#[derive(Debug, Default)]
pub struct ModStore {
    inner: RwLock<BTreeMap<Oid, UncertainTrajectory>>,
    epoch: AtomicU64,
    /// The snapshot most recently built, reused while its epoch matches.
    cached: RwLock<Option<Arc<QuerySnapshot>>>,
}

impl ModStore {
    /// An empty store.
    pub fn new() -> Self {
        ModStore::default()
    }

    /// Inserts a trajectory; fails on duplicate ids.
    pub fn insert(&self, tr: UncertainTrajectory) -> Result<(), StoreError> {
        let mut g = self.inner.write().unwrap();
        let oid = tr.oid();
        if g.contains_key(&oid) {
            return Err(StoreError::DuplicateOid(oid));
        }
        g.insert(oid, tr);
        self.epoch.fetch_add(1, Ordering::Release);
        *self.cached.write().unwrap() = None;
        Ok(())
    }

    /// Inserts many trajectories (all-or-nothing on duplicate ids).
    pub fn bulk_load<I: IntoIterator<Item = UncertainTrajectory>>(
        &self,
        trs: I,
    ) -> Result<usize, StoreError> {
        let mut g = self.inner.write().unwrap();
        let items: Vec<UncertainTrajectory> = trs.into_iter().collect();
        for tr in &items {
            if g.contains_key(&tr.oid()) {
                return Err(StoreError::DuplicateOid(tr.oid()));
            }
        }
        let n = items.len();
        for tr in items {
            g.insert(tr.oid(), tr);
        }
        self.epoch.fetch_add(1, Ordering::Release);
        *self.cached.write().unwrap() = None;
        Ok(n)
    }

    /// Removes a trajectory.
    pub fn remove(&self, oid: Oid) -> Result<UncertainTrajectory, StoreError> {
        let mut g = self.inner.write().unwrap();
        let out = g.remove(&oid).ok_or(StoreError::NotFound(oid))?;
        self.epoch.fetch_add(1, Ordering::Release);
        *self.cached.write().unwrap() = None;
        Ok(out)
    }

    /// Clones the trajectory with the given id.
    pub fn get(&self, oid: Oid) -> Option<UncertainTrajectory> {
        self.inner.read().unwrap().get(&oid).cloned()
    }

    /// `true` when the id is present.
    pub fn contains(&self, oid: Oid) -> bool {
        self.inner.read().unwrap().contains_key(&oid)
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().unwrap().is_empty()
    }

    /// All ids, ascending.
    pub fn oids(&self) -> Vec<Oid> {
        self.inner.read().unwrap().keys().copied().collect()
    }

    /// An `Arc`-shared, epoch-stamped snapshot of the MOD, ascending by
    /// id.
    ///
    /// The same snapshot is returned until a mutation bumps the epoch, so
    /// repeated queries against an unchanged store share one copy of the
    /// trajectories and of every lazily built per-snapshot index.
    pub fn snapshot(&self) -> Arc<QuerySnapshot> {
        if let Some(s) = self.cached.read().unwrap().as_ref() {
            if s.epoch() == self.epoch.load(Ordering::Acquire) {
                return Arc::clone(s);
            }
        }
        // (Re)build from the live contents. The epoch is read while the
        // content lock is held, so it is consistent with the copy.
        let snap = {
            let g = self.inner.read().unwrap();
            let epoch = self.epoch.load(Ordering::Acquire);
            Arc::new(QuerySnapshot::new(epoch, g.values().cloned().collect()))
        };
        let mut cached = self.cached.write().unwrap();
        match cached.as_ref() {
            // Never replace a newer snapshot with an older rebuild.
            Some(existing) if existing.epoch() >= snap.epoch() => Arc::clone(existing),
            _ => {
                *cached = Some(Arc::clone(&snap));
                snap
            }
        }
    }

    /// Monotonic mutation counter.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Removes everything.
    pub fn clear(&self) {
        let mut g = self.inner.write().unwrap();
        g.clear();
        self.epoch.fetch_add(1, Ordering::Release);
        *self.cached.write().unwrap() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_traj::trajectory::Trajectory;

    fn tr(oid: u64) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap(),
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let s = ModStore::new();
        assert!(s.is_empty());
        s.insert(tr(1)).unwrap();
        s.insert(tr(2)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(Oid(1)));
        assert_eq!(s.get(Oid(1)).unwrap().oid(), Oid(1));
        assert_eq!(s.insert(tr(1)), Err(StoreError::DuplicateOid(Oid(1))));
        s.remove(Oid(1)).unwrap();
        assert_eq!(s.remove(Oid(1)), Err(StoreError::NotFound(Oid(1))));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bulk_load_is_atomic() {
        let s = ModStore::new();
        s.insert(tr(3)).unwrap();
        let res = s.bulk_load(vec![tr(4), tr(3)]);
        assert_eq!(res, Err(StoreError::DuplicateOid(Oid(3))));
        // Nothing from the failed batch is visible.
        assert!(!s.contains(Oid(4)));
        assert_eq!(s.bulk_load(vec![tr(5), tr(6)]).unwrap(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn epoch_bumps_on_mutation() {
        let s = ModStore::new();
        let e0 = s.epoch();
        s.insert(tr(1)).unwrap();
        let e1 = s.epoch();
        assert!(e1 > e0);
        let _ = s.get(Oid(1));
        assert_eq!(s.epoch(), e1); // reads do not bump
        s.clear();
        assert!(s.epoch() > e1);
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let s = ModStore::new();
        s.insert(tr(9)).unwrap();
        s.insert(tr(2)).unwrap();
        s.insert(tr(5)).unwrap();
        let snap = s.snapshot();
        let oids: Vec<u64> = snap.iter().map(|t| t.oid().0).collect();
        assert_eq!(oids, vec![2, 5, 9]);
        assert_eq!(s.oids(), vec![Oid(2), Oid(5), Oid(9)]);
    }

    #[test]
    fn snapshot_is_shared_until_mutation() {
        let s = ModStore::new();
        s.insert(tr(1)).unwrap();
        s.insert(tr(2)).unwrap();
        let a = s.snapshot();
        let b = s.snapshot();
        assert!(
            Arc::ptr_eq(&a, &b),
            "unchanged store must share the snapshot"
        );
        assert_eq!(a.epoch(), s.epoch());
        s.insert(tr(3)).unwrap();
        let c = s.snapshot();
        assert!(
            !Arc::ptr_eq(&a, &c),
            "mutation must invalidate the snapshot"
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.epoch(), s.epoch());
        // The old snapshot still reads consistently at its own epoch.
        assert_eq!(a.len(), 2);
    }
}
