//! The in-memory MOD store: the server-side collection of uncertain
//! trajectories (§2.1: the server "keeps a copy ... for query
//! processing").

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use unn_traj::trajectory::Oid;
use unn_traj::uncertain::UncertainTrajectory;

/// Errors raised by [`ModStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An object with this id is already stored.
    DuplicateOid(Oid),
    /// No object with this id.
    NotFound(Oid),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateOid(oid) => write!(f, "duplicate object id {oid}"),
            StoreError::NotFound(oid) => write!(f, "no object with id {oid}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Thread-safe store of uncertain trajectories, keyed by [`Oid`].
///
/// Mutations bump an epoch counter so index structures and caches built
/// from a snapshot can detect staleness cheaply.
#[derive(Debug, Default)]
pub struct ModStore {
    inner: RwLock<BTreeMap<Oid, UncertainTrajectory>>,
    epoch: AtomicU64,
}

impl ModStore {
    /// An empty store.
    pub fn new() -> Self {
        ModStore::default()
    }

    /// Inserts a trajectory; fails on duplicate ids.
    pub fn insert(&self, tr: UncertainTrajectory) -> Result<(), StoreError> {
        let mut g = self.inner.write();
        let oid = tr.oid();
        if g.contains_key(&oid) {
            return Err(StoreError::DuplicateOid(oid));
        }
        g.insert(oid, tr);
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Inserts many trajectories (all-or-nothing on duplicate ids).
    pub fn bulk_load<I: IntoIterator<Item = UncertainTrajectory>>(
        &self,
        trs: I,
    ) -> Result<usize, StoreError> {
        let mut g = self.inner.write();
        let items: Vec<UncertainTrajectory> = trs.into_iter().collect();
        for tr in &items {
            if g.contains_key(&tr.oid()) {
                return Err(StoreError::DuplicateOid(tr.oid()));
            }
        }
        let n = items.len();
        for tr in items {
            g.insert(tr.oid(), tr);
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// Removes a trajectory.
    pub fn remove(&self, oid: Oid) -> Result<UncertainTrajectory, StoreError> {
        let mut g = self.inner.write();
        let out = g.remove(&oid).ok_or(StoreError::NotFound(oid))?;
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// Clones the trajectory with the given id.
    pub fn get(&self, oid: Oid) -> Option<UncertainTrajectory> {
        self.inner.read().get(&oid).cloned()
    }

    /// `true` when the id is present.
    pub fn contains(&self, oid: Oid) -> bool {
        self.inner.read().contains_key(&oid)
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// All ids, ascending.
    pub fn oids(&self) -> Vec<Oid> {
        self.inner.read().keys().copied().collect()
    }

    /// A consistent snapshot of all trajectories, ascending by id.
    pub fn snapshot(&self) -> Vec<UncertainTrajectory> {
        self.inner.read().values().cloned().collect()
    }

    /// Monotonic mutation counter.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Removes everything.
    pub fn clear(&self) {
        self.inner.write().clear();
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_traj::trajectory::Trajectory;

    fn tr(oid: u64) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
                .unwrap(),
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let s = ModStore::new();
        assert!(s.is_empty());
        s.insert(tr(1)).unwrap();
        s.insert(tr(2)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(Oid(1)));
        assert_eq!(s.get(Oid(1)).unwrap().oid(), Oid(1));
        assert_eq!(s.insert(tr(1)), Err(StoreError::DuplicateOid(Oid(1))));
        s.remove(Oid(1)).unwrap();
        assert_eq!(s.remove(Oid(1)), Err(StoreError::NotFound(Oid(1))));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bulk_load_is_atomic() {
        let s = ModStore::new();
        s.insert(tr(3)).unwrap();
        let res = s.bulk_load(vec![tr(4), tr(3)]);
        assert_eq!(res, Err(StoreError::DuplicateOid(Oid(3))));
        // Nothing from the failed batch is visible.
        assert!(!s.contains(Oid(4)));
        assert_eq!(s.bulk_load(vec![tr(5), tr(6)]).unwrap(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn epoch_bumps_on_mutation() {
        let s = ModStore::new();
        let e0 = s.epoch();
        s.insert(tr(1)).unwrap();
        let e1 = s.epoch();
        assert!(e1 > e0);
        let _ = s.get(Oid(1));
        assert_eq!(s.epoch(), e1); // reads do not bump
        s.clear();
        assert!(s.epoch() > e1);
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let s = ModStore::new();
        s.insert(tr(9)).unwrap();
        s.insert(tr(2)).unwrap();
        s.insert(tr(5)).unwrap();
        let snap = s.snapshot();
        let oids: Vec<u64> = snap.iter().map(|t| t.oid().0).collect();
        assert_eq!(oids, vec![2, 5, 9]);
        assert_eq!(s.oids(), vec![Oid(2), Oid(5), Oid(9)]);
    }
}
