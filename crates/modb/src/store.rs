//! The in-memory MOD store: the server-side collection of uncertain
//! trajectories (§2.1: the server "keeps a copy ... for query
//! processing").
//!
//! The store is **sharded**: objects are distributed over N oid-hashed
//! shards, each behind its own lock, so concurrent writers on different
//! shards never contend. Mutations bump a monotonic epoch and append to
//! the bounded [`DeltaLog`]; [`ModStore::snapshot`] hands out an
//! `Arc`-shared, epoch-stamped [`QuerySnapshot`] that — when the pending
//! delta is small relative to the population — is derived from the
//! *previous* snapshot by [`QuerySnapshot::apply_delta`] instead of
//! re-copied and re-indexed from scratch. The epoch remains the
//! invalidation key for every derived structure; the delta log
//! additionally lets the [`EngineCache`] prove that some cached engines
//! survive a mutation (see [`crate::delta`]).

use crate::cache::EngineCache;
use crate::delta::{DeltaLog, DeltaOp, DeltaRecord, NetDelta, ReplOp};
use crate::durability::{repl_frame_bytes, ReplicationHub, Wal, WalStatus};
use crate::net::wire::encode_commit_body;
use crate::snapshot::QuerySnapshot;
use crate::subscription::SubscriptionRegistry;
use crate::telemetry::{self, Telemetry, TraceEvent, TraceStage};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use unn_prob::pdf::{PdfKind, RadialPdf};
use unn_prob::profile::ProfiledPdf;
use unn_traj::trajectory::Oid;
use unn_traj::uncertain::UncertainTrajectory;

/// Default number of oid-hashed shards.
const DEFAULT_SHARDS: usize = 16;

/// Default bound on retained delta records.
const DELTA_LOG_CAPACITY: usize = 4096;

/// Default bound on undrained [`unn_core::answer::AnswerDelta`]s per
/// subscription change feed (see [`ModStore::set_feed_bound`]).
pub const DEFAULT_FEED_BOUND: usize = 256;

/// Default delta-to-population ratio beyond which snapshot maintenance
/// falls back to a full rebuild.
pub const DEFAULT_REBUILD_FRACTION: f64 = 0.25;

/// Errors raised by [`ModStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An object with this id is already stored.
    DuplicateOid(Oid),
    /// No object with this id.
    NotFound(Oid),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateOid(oid) => write!(f, "duplicate object id {oid}"),
            StoreError::NotFound(oid) => write!(f, "no object with id {oid}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Point-in-time counters of the delta-epoch machinery (the CLI's
/// `store delta-stats` view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaStats {
    /// Current store epoch.
    pub epoch: u64,
    /// Number of oid-hashed shards.
    pub shards: usize,
    /// Mutation records currently retained in the delta log.
    pub log_len: usize,
    /// Epoch at or before which delta history is incomplete.
    pub log_floor: u64,
    /// Ops newer than the cached snapshot (applied on its next refresh).
    pub pending_ops: usize,
    /// Delta-to-population ratio beyond which snapshots rebuild fully.
    pub rebuild_fraction: f64,
    /// Snapshots refreshed by applying a delta to their predecessor.
    pub snapshots_delta_applied: u64,
    /// Snapshots rebuilt from scratch (cold starts and oversized deltas).
    pub snapshots_rebuilt: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// Values are `Arc`-shared with the delta log, so mutations never
    /// deep-copy a trajectory.
    map: RwLock<BTreeMap<Oid, Arc<UncertainTrajectory>>>,
}

/// Where committed deltas are journaled beyond the in-memory log: the
/// durable WAL and/or replication hubs fanning frames to followers
/// (see [`crate::durability`]).
#[derive(Debug, Default)]
struct JournalSinks {
    wal: Option<Arc<Wal>>,
    hubs: Vec<Weak<ReplicationHub>>,
}

/// A convolved **difference** pdf together with its profiled evaluation
/// tables — the shared unit every probability consumer works from.
///
/// Handed out by [`ModStore::difference_model`]: one-shot threshold
/// sweeps, forward row subscriptions, and every RNN perspective engine
/// evaluating under the same location-pdf kind reuse the same convolution
/// and the same [`ProfiledPdf`] tables (profiling is deterministic, so
/// shared tables also guarantee bit-identical probabilities across
/// consumers).
#[derive(Debug, Clone)]
pub struct DifferenceModel {
    /// The convolved difference pdf (`kind ∗ kind`, §3.1).
    pub pdf: Arc<dyn RadialPdf>,
    /// The profiled kernel tables for batched column evaluation.
    pub profile: Arc<ProfiledPdf>,
}

/// Bit-exact cache key for a [`PdfKind`] (the enum carries `f64` fields
/// and no `Eq`/`Hash`, so it is keyed by discriminant + bit patterns).
type PdfKey = (u8, u64, u64);

fn pdf_key(kind: &PdfKind) -> PdfKey {
    match *kind {
        PdfKind::Uniform { radius } => (0, radius.to_bits(), 0),
        PdfKind::TruncatedGaussian { radius, sigma } => (1, radius.to_bits(), sigma.to_bits()),
    }
}

/// Thread-safe, sharded store of uncertain trajectories, keyed by
/// [`Oid`].
///
/// Mutations bump an epoch counter and append to a bounded delta log, so
/// snapshots and caches built from an earlier epoch can be *maintained*
/// (not just invalidated) cheaply.
#[derive(Debug)]
pub struct ModStore {
    shards: Vec<Shard>,
    epoch: AtomicU64,
    /// The snapshot most recently built, reused while its epoch matches
    /// and patched (not discarded) when it does not.
    cached: RwLock<Option<Arc<QuerySnapshot>>>,
    delta: Mutex<DeltaLog>,
    /// `f64` bits of the rebuild-fallback fraction (atomic so benches and
    /// the CLI can flip it through a shared reference).
    rebuild_fraction: AtomicU64,
    /// Per-subscription change-feed bound (see [`ModStore::set_feed_bound`]).
    feed_bound: AtomicU64,
    /// Commit-coalescing window of subscription maintenance (see
    /// [`ModStore::set_maintenance_batch`]). `1` = maintain per commit.
    maintenance_batch: AtomicU64,
    /// Monotonic count of commits routed through
    /// [`ModStore::notify_subscriptions`] — the batch window triggers a
    /// maintenance round every `maintenance_batch`-th commit, so no
    /// reset (and no reset race between concurrent committers) is
    /// needed.
    maintenance_commits: AtomicU64,
    snapshots_delta_applied: AtomicU64,
    snapshots_rebuilt: AtomicU64,
    /// Engine caches to drop alongside the contents on [`ModStore::clear`].
    caches: Mutex<Vec<Weak<EngineCache>>>,
    /// Subscription registries maintained after every commit (the
    /// standing-query layer; see [`crate::subscription`]).
    subscriptions: Mutex<Vec<Weak<SubscriptionRegistry>>>,
    /// Store-wide cache of convolved difference pdfs and their profiled
    /// kernel tables, keyed bit-exactly by [`PdfKind`]. Entries are pure
    /// functions of the kind (independent of the stored data), so the
    /// cache survives mutations and [`ModStore::clear`].
    pdf_cache: Mutex<HashMap<PdfKey, DifferenceModel>>,
    /// Durable/replicated journal sinks (see [`ModStore::attach_wal`]
    /// and [`ModStore::attach_replication`]).
    journal: Mutex<JournalSinks>,
    /// Fast-path flag: `true` once any journal sink is attached, so the
    /// commit hot path skips the journal lock entirely when durability
    /// and replication are off.
    journal_active: AtomicBool,
    /// The store's metrics registry + trace ring (see [`crate::telemetry`]).
    /// Shared with the attached WAL and the network layer so every
    /// pipeline stage records into one home.
    telemetry: Arc<Telemetry>,
}

impl Default for ModStore {
    fn default() -> Self {
        ModStore::with_shards(DEFAULT_SHARDS)
    }
}

impl ModStore {
    /// An empty store with the default shard count.
    pub fn new() -> Self {
        ModStore::default()
    }

    /// An empty store with `shards` oid-hashed shards.
    pub fn with_shards(shards: usize) -> Self {
        ModStore {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            epoch: AtomicU64::new(0),
            cached: RwLock::new(None),
            delta: Mutex::new(DeltaLog::new(DELTA_LOG_CAPACITY)),
            rebuild_fraction: AtomicU64::new(DEFAULT_REBUILD_FRACTION.to_bits()),
            feed_bound: AtomicU64::new(DEFAULT_FEED_BOUND as u64),
            maintenance_batch: AtomicU64::new(1),
            maintenance_commits: AtomicU64::new(0),
            snapshots_delta_applied: AtomicU64::new(0),
            snapshots_rebuilt: AtomicU64::new(0),
            caches: Mutex::new(Vec::new()),
            subscriptions: Mutex::new(Vec::new()),
            pdf_cache: Mutex::new(HashMap::new()),
            journal: Mutex::new(JournalSinks::default()),
            journal_active: AtomicBool::new(false),
            telemetry: Arc::new(Telemetry::new()),
        }
    }

    /// The store's telemetry registry: counters, latency histograms, and
    /// the epoch-scoped trace ring every pipeline stage records into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The self-convolved difference pdf and its profiled kernel tables
    /// for location pdfs of `kind`, built once per kind and cached
    /// store-wide (see [`DifferenceModel`]).
    pub fn difference_model(&self, kind: &PdfKind) -> DifferenceModel {
        let key = pdf_key(kind);
        if let Some(model) = self.pdf_cache.lock().unwrap().get(&key) {
            return model.clone();
        }
        // Build outside the lock: convolution + profiling can take a few
        // milliseconds and must not block concurrent consumers of other
        // kinds. Determinism makes a racing double-build harmless (both
        // produce bit-identical tables).
        let pdf: Arc<dyn RadialPdf> = Arc::from(kind.convolve_with(kind));
        let profile = Arc::new(ProfiledPdf::of(pdf.as_ref()));
        let model = DifferenceModel { pdf, profile };
        self.pdf_cache
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(model)
            .clone()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, oid: Oid) -> usize {
        // Fibonacci hashing spreads dense id ranges evenly.
        let h = (oid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize;
        h % self.shards.len()
    }

    fn shard_of(&self, oid: Oid) -> &Shard {
        &self.shards[self.shard_index(oid)]
    }

    /// Appends `ops` to the delta log under one new epoch, returning it.
    /// Must be called while holding the write lock of every mutated
    /// shard, so snapshot builders (which hold all read locks) never see
    /// a half-committed mutation.
    ///
    /// With a journal sink attached, the commit is also encoded once
    /// (the wire body) and handed to the WAL and any replication hub
    /// *inside* the delta lock, so journaled records land in strict
    /// epoch order.
    fn commit(&self, ops: impl IntoIterator<Item = DeltaOp>) -> u64 {
        let ops: Vec<DeltaOp> = ops.into_iter().collect();
        // The telemetry-off cost of this site is two relaxed loads.
        let started =
            (telemetry::metrics_on() || telemetry::trace_on()).then(std::time::Instant::now);
        if started.is_some() {
            self.telemetry
                .last_commit_start
                .store(telemetry::now_ns(), Ordering::Relaxed);
        }
        let mut log = self.delta.lock().unwrap();
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        if self.journal_active.load(Ordering::Acquire) {
            let repl: Vec<ReplOp> = ops.iter().map(ReplOp::from).collect();
            self.journal_ops(epoch, &repl);
        }
        for op in ops {
            log.record(epoch, op);
        }
        drop(log);
        if let Some(t0) = started {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            self.telemetry.commits.inc();
            self.telemetry.commit_ns.record(dur_ns);
            self.telemetry.trace_event(TraceEvent {
                epoch,
                stage: TraceStage::Commit,
                share: 0,
                detail: 0,
                dur_ns,
            });
        }
        epoch
    }

    /// Encodes one commit body and fans it out to the attached journal
    /// sinks. WAL append failures are absorbed into the WAL's status
    /// counters (`store wal-status`); a commit cannot fail after the
    /// in-memory mutation is already visible.
    fn journal_ops(&self, epoch: u64, ops: &[ReplOp]) {
        let journal = self.journal.lock().unwrap();
        let hubs: Vec<Arc<ReplicationHub>> = journal
            .hubs
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|h| h.has_followers())
            .collect();
        if journal.wal.is_none() && hubs.is_empty() {
            return;
        }
        let mut body = Vec::new();
        encode_commit_body(&mut body, epoch, ops);
        if let Some(wal) = &journal.wal {
            wal.append_quiet(epoch, &body);
        }
        if !hubs.is_empty() {
            // `None` (an over-bound frame) marks every follower lagged;
            // they resync via snapshot instead of a gapped stream.
            let frame = repl_frame_bytes(&body);
            let bytes = frame.as_ref().map(|f| f.len() as u64).unwrap_or(0);
            for hub in &hubs {
                hub.publish(epoch, frame.as_ref());
            }
            self.telemetry.repl_frames.inc();
            self.telemetry.repl_bytes.add(bytes);
            if telemetry::metrics_on() {
                let (lag_epochs, lag_bytes) = hubs
                    .iter()
                    .map(|h| h.max_lag())
                    .fold((0, 0), |acc, lag| (acc.0.max(lag.0), acc.1.max(lag.1)));
                self.telemetry.repl_lag_epochs.set(lag_epochs);
                self.telemetry.repl_lag_bytes.set(lag_bytes);
            }
            self.telemetry.trace_event(TraceEvent {
                epoch,
                stage: TraceStage::Replicate,
                share: 0,
                detail: bytes,
                dur_ns: 0,
            });
        }
    }

    /// Inserts a trajectory; fails on duplicate ids.
    pub fn insert(&self, tr: UncertainTrajectory) -> Result<(), StoreError> {
        let oid = tr.oid();
        let tr = Arc::new(tr);
        let mut g = self.shard_of(oid).map.write().unwrap();
        if g.contains_key(&oid) {
            return Err(StoreError::DuplicateOid(oid));
        }
        g.insert(oid, Arc::clone(&tr));
        self.commit([DeltaOp::Insert(tr)]);
        drop(g);
        self.notify_subscriptions();
        Ok(())
    }

    /// Inserts many trajectories (all-or-nothing on duplicate ids).
    pub fn bulk_load<I: IntoIterator<Item = UncertainTrajectory>>(
        &self,
        trs: I,
    ) -> Result<usize, StoreError> {
        let items: Vec<Arc<UncertainTrajectory>> = trs.into_iter().map(Arc::new).collect();
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.map.write().unwrap()).collect();
        let slot = |oid: Oid| {
            let h = (oid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize;
            h % self.shards.len()
        };
        let mut seen = std::collections::BTreeSet::new();
        for tr in &items {
            if guards[slot(tr.oid())].contains_key(&tr.oid()) || !seen.insert(tr.oid()) {
                return Err(StoreError::DuplicateOid(tr.oid()));
            }
        }
        let n = items.len();
        for tr in &items {
            guards[slot(tr.oid())].insert(tr.oid(), Arc::clone(tr));
        }
        self.commit(items.into_iter().map(DeltaOp::Insert));
        drop(guards);
        self.notify_subscriptions();
        Ok(n)
    }

    /// Registers or replaces a trajectory under **one** commit — the GPS
    /// correction op. Unlike a `remove` + `insert` pair, the delta is a
    /// single epoch, so every delta consumer (snapshot maintenance,
    /// engine carry, standing-query subscriptions) absorbs the update in
    /// one maintenance round instead of two. Returns the replaced
    /// trajectory, if any.
    pub fn update(&self, tr: UncertainTrajectory) -> Option<UncertainTrajectory> {
        let oid = tr.oid();
        let tr = Arc::new(tr);
        let mut g = self.shard_of(oid).map.write().unwrap();
        let old = g.insert(oid, Arc::clone(&tr));
        match &old {
            Some(_) => self.commit([DeltaOp::Remove(oid), DeltaOp::Insert(tr)]),
            None => self.commit([DeltaOp::Insert(tr)]),
        };
        drop(g);
        self.notify_subscriptions();
        old.map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
    }

    /// Removes a trajectory.
    pub fn remove(&self, oid: Oid) -> Result<UncertainTrajectory, StoreError> {
        let mut g = self.shard_of(oid).map.write().unwrap();
        let out = g.remove(&oid).ok_or(StoreError::NotFound(oid))?;
        self.commit([DeltaOp::Remove(oid)]);
        drop(g);
        self.notify_subscriptions();
        Ok(Arc::try_unwrap(out).unwrap_or_else(|a| (*a).clone()))
    }

    /// Clones the trajectory with the given id.
    pub fn get(&self, oid: Oid) -> Option<UncertainTrajectory> {
        self.shard_of(oid)
            .map
            .read()
            .unwrap()
            .get(&oid)
            .map(|a| (**a).clone())
    }

    /// `true` when the id is present.
    pub fn contains(&self, oid: Oid) -> bool {
        self.shard_of(oid).map.read().unwrap().contains_key(&oid)
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().unwrap().len())
            .sum()
    }

    /// `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.map.read().unwrap().is_empty())
    }

    /// All ids, ascending.
    pub fn oids(&self) -> Vec<Oid> {
        let mut out: Vec<Oid> = self
            .shards
            .iter()
            .flat_map(|s| s.map.read().unwrap().keys().copied().collect::<Vec<_>>())
            .collect();
        out.sort_unstable();
        out
    }

    /// An `Arc`-shared, epoch-stamped snapshot of the MOD, ascending by
    /// id.
    ///
    /// The same snapshot is returned until a mutation bumps the epoch.
    /// After a mutation, the refresh is **incremental**: while the
    /// pending delta stays within the rebuild fraction of the
    /// population, the previous snapshot and its materialized indexes
    /// are patched in `O(|delta| · log N)` instead of rebuilt — with
    /// answers identical to a cold rebuild. Oversized deltas, cold
    /// starts, and history gaps (log overflow, `clear`) rebuild fully.
    pub fn snapshot(&self) -> Arc<QuerySnapshot> {
        let now = self.epoch.load(Ordering::Acquire);
        if let Some(s) = self.cached.read().unwrap().as_ref() {
            if s.epoch() == now {
                return Arc::clone(s);
            }
        }
        // Freeze the store: with every shard read lock held, no mutation
        // is mid-commit, so contents, epoch, and delta log are mutually
        // consistent.
        let guards: Vec<_> = self.shards.iter().map(|s| s.map.read().unwrap()).collect();
        let epoch = self.epoch.load(Ordering::Acquire);
        let prev = self.cached.read().unwrap().clone();
        if let Some(p) = &prev {
            if p.epoch() == epoch {
                return Arc::clone(p);
            }
        }
        let refresh_started =
            (telemetry::metrics_on() || telemetry::trace_on()).then(std::time::Instant::now);
        let patched = prev.as_ref().and_then(|p| {
            let log = self.delta.lock().unwrap();
            let ops = log.ops_since(p.epoch())?;
            let net = NetDelta::from_ops(p, ops);
            // Charge the accumulated patch debt too: an endless stream
            // of tiny deltas must still re-pack periodically, or the
            // R-tree overflow and grid edits grow without bound.
            let budget = self.rebuild_fraction() * p.len().max(1) as f64;
            if (net.size() + p.patch_debt()) as f64 > budget {
                return None;
            }
            Some(QuerySnapshot::apply_delta(p, epoch, &net))
        });
        let snap = match patched {
            Some(s) => {
                self.snapshots_delta_applied.fetch_add(1, Ordering::Relaxed);
                if let Some(t0) = refresh_started {
                    let dur_ns = t0.elapsed().as_nanos() as u64;
                    self.telemetry.snapshot_patch_ns.record(dur_ns);
                    self.telemetry.trace_event(TraceEvent {
                        epoch,
                        stage: TraceStage::SnapshotPatch,
                        share: 0,
                        detail: 0,
                        dur_ns,
                    });
                }
                debug_assert_eq!(
                    s.len(),
                    guards.iter().map(|g| g.len()).sum::<usize>(),
                    "delta-applied snapshot diverged from the live contents"
                );
                Arc::new(s)
            }
            None => {
                self.snapshots_rebuilt.fetch_add(1, Ordering::Relaxed);
                let mut objects: Vec<UncertainTrajectory> = guards
                    .iter()
                    .flat_map(|g| g.values().map(|a| (**a).clone()))
                    .collect();
                objects.sort_unstable_by_key(|t| t.oid());
                let snap = Arc::new(QuerySnapshot::new(epoch, objects));
                if let Some(t0) = refresh_started {
                    let dur_ns = t0.elapsed().as_nanos() as u64;
                    self.telemetry.snapshot_rebuild_ns.record(dur_ns);
                    self.telemetry.trace_event(TraceEvent {
                        epoch,
                        stage: TraceStage::SnapshotRebuild,
                        share: 0,
                        detail: 0,
                        dur_ns,
                    });
                }
                snap
            }
        };
        drop(guards);
        let mut cached = self.cached.write().unwrap();
        match cached.as_ref() {
            // Never replace a newer snapshot with an older rebuild.
            Some(existing) if existing.epoch() >= snap.epoch() => Arc::clone(existing),
            _ => {
                *cached = Some(Arc::clone(&snap));
                snap
            }
        }
    }

    /// Monotonic mutation counter.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Removes everything — contents, cached snapshot, delta history, and
    /// every attached engine cache — in one step, so no caller can
    /// observe a stale cached engine or snapshot against the emptied
    /// store.
    pub fn clear(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.map.write().unwrap()).collect();
        for g in guards.iter_mut() {
            g.clear();
        }
        {
            // A whole-store wipe is not representable as per-object ops;
            // mark history incomplete so nothing delta-applies across it.
            // The journal *can* represent it ([`ReplOp::Clear`]), so the
            // WAL and followers see the wipe as a normal commit.
            let mut log = self.delta.lock().unwrap();
            let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            if self.journal_active.load(Ordering::Acquire) {
                self.journal_ops(epoch, &[ReplOp::Clear]);
            }
            log.invalidate(epoch);
        }
        *self.cached.write().unwrap() = None;
        drop(guards);
        let mut caches = self.caches.lock().unwrap();
        caches.retain(|w| match w.upgrade() {
            Some(cache) => {
                cache.clear();
                true
            }
            None => false,
        });
        drop(caches);
        self.notify_subscriptions();
    }

    /// Ties an engine cache's lifecycle to this store: [`ModStore::clear`]
    /// will clear it in the same step as the contents.
    pub fn attach_cache(&self, cache: &Arc<EngineCache>) {
        self.caches.lock().unwrap().push(Arc::downgrade(cache));
    }

    /// Ties a subscription registry to this store: after every commit the
    /// registry's standing-query answers are maintained against the
    /// epoch's delta (see [`crate::subscription`]).
    pub fn attach_subscriptions(&self, registry: &Arc<SubscriptionRegistry>) {
        self.subscriptions
            .lock()
            .unwrap()
            .push(Arc::downgrade(registry));
    }

    /// Routes the freshly committed delta to every attached subscription
    /// registry. Must be called with **no shard lock held**: maintenance
    /// takes snapshots (all shard read locks) and reads the delta log.
    fn notify_subscriptions(&self) {
        // Durability housekeeping first (and on *every* commit, not just
        // batch-window boundaries): the checkpoint cadence check is one
        // counter read, and an actual checkpoint takes a snapshot — legal
        // here precisely because the committer's shard locks are gone.
        self.tick_durability();
        let window = self.maintenance_batch();
        if window > 1 {
            // Coalescing is free for correctness: each share's ladder
            // reconciles from the delta log since its own watermark, so
            // deferring the round just folds the burst's epochs into
            // one net delta and one push fan-out per share. Only every
            // `window`-th commit triggers the round; a burst tail
            // shorter than the window stays pending until the next
            // commit or an explicit [`ModStore::flush_maintenance`].
            let n = self.maintenance_commits.fetch_add(1, Ordering::AcqRel) + 1;
            if n % window as u64 != 0 {
                return;
            }
        }
        self.sync_subscriptions();
    }

    /// Runs one maintenance round over every attached registry
    /// unconditionally — the tail flush of a commit burst shorter than
    /// the [`ModStore::set_maintenance_batch`] window. A no-op when
    /// everything is already current (each share's watermark check is
    /// `O(1)`), so calling it eagerly is safe. The network server flushes
    /// before serving a full-answer resync so lagged subscribers never
    /// observe a batching-stale base.
    pub fn flush_maintenance(&self) {
        self.sync_subscriptions();
    }

    fn sync_subscriptions(&self) {
        let live: Vec<Arc<SubscriptionRegistry>> = {
            let mut subs = self.subscriptions.lock().unwrap();
            subs.retain(|w| w.strong_count() > 0);
            subs.iter().filter_map(Weak::upgrade).collect()
        };
        for registry in live {
            registry.sync(self);
        }
    }

    /// The commit-coalescing window of subscription maintenance
    /// (default 1: every commit runs its own round).
    pub fn maintenance_batch(&self) -> usize {
        self.maintenance_batch.load(Ordering::Relaxed) as usize
    }

    /// Sets the commit-coalescing window (minimum 1). At `n > 1`, a
    /// burst of writer commits folds into one net delta and **one**
    /// maintenance round — one index lookup, one ladder pass, one push
    /// fan-out per affected share — every `n`-th commit, trading up to
    /// `n - 1` commits of push latency for maintenance throughput.
    /// Answers stay bit-identical: subscription watermarks lag at most
    /// the window, and every round reconciles the full logged span
    /// since each share's watermark. Size it well below the delta-log
    /// capacity ([`ModStore::set_delta_log_capacity`]) or deferred
    /// rounds degrade into rebuilds.
    pub fn set_maintenance_batch(&self, window: usize) {
        self.maintenance_batch
            .store(window.max(1) as u64, Ordering::Relaxed);
    }

    /// The delta-to-population ratio beyond which snapshot refreshes fall
    /// back to a full rebuild.
    pub fn rebuild_fraction(&self) -> f64 {
        f64::from_bits(self.rebuild_fraction.load(Ordering::Relaxed))
    }

    /// Sets the rebuild-fallback fraction (`0` disables delta
    /// maintenance entirely — the full-rebuild ablation).
    pub fn set_rebuild_fraction(&self, fraction: f64) {
        self.rebuild_fraction
            .store(fraction.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// The per-subscription change-feed bound: how many undrained
    /// [`unn_core::answer::AnswerDelta`]s a standing query's feed (and
    /// each attached push outbox) retains before squashing.
    pub fn feed_bound(&self) -> usize {
        self.feed_bound.load(Ordering::Relaxed) as usize
    }

    /// Sets the per-subscription change-feed bound (minimum 1; the
    /// default is [`DEFAULT_FEED_BOUND`]).
    ///
    /// ## Squash-oldest contract
    ///
    /// A feed never drops a delta outright. When a push would exceed the
    /// bound, the two **oldest** undrained deltas are composed into one
    /// via [`unn_core::answer::AnswerDelta::then`], so the fold invariant
    /// `answer₀ ⊕ δ₁ ⊕ … ⊕ δₖ = current answer` holds bit-for-bit no
    /// matter how far a consumer lags — only the *per-epoch granularity*
    /// of the oldest entries is lost (the squashed delta carries the
    /// later epoch). Push transports surface that loss as a `lagged`
    /// flag so interactive consumers can resync from a full answer
    /// instead of replaying a coarse squash.
    pub fn set_feed_bound(&self, bound: usize) {
        self.feed_bound
            .store(bound.max(1) as u64, Ordering::Relaxed);
    }

    /// Counters of the delta-epoch machinery.
    pub fn delta_stats(&self) -> DeltaStats {
        let cached_epoch = self
            .cached
            .read()
            .unwrap()
            .as_ref()
            .map(|s| s.epoch())
            .unwrap_or(0);
        let log = self.delta.lock().unwrap();
        let pending = log.ops_since(cached_epoch).map(|o| o.len()).unwrap_or(0);
        DeltaStats {
            epoch: self.epoch(),
            shards: self.shards.len(),
            log_len: log.len(),
            log_floor: log.floor(),
            pending_ops: pending,
            rebuild_fraction: self.rebuild_fraction(),
            snapshots_delta_applied: self.snapshots_delta_applied.load(Ordering::Relaxed),
            snapshots_rebuilt: self.snapshots_rebuilt.load(Ordering::Relaxed),
        }
    }

    /// Caps the number of retained delta records (see
    /// [`DeltaLog::set_capacity`]): shrinking the bound truncates history
    /// and forces delta consumers whose base epoch fell off — snapshots,
    /// engine carries, subscriptions — onto their full-rebuild paths.
    pub fn set_delta_log_capacity(&self, capacity: usize) {
        self.delta.lock().unwrap().set_capacity(capacity);
    }

    /// Attaches a write-ahead log: every subsequent commit (including
    /// [`ModStore::clear`]) is appended durably in epoch order, and the
    /// WAL's checkpoint cadence is driven from the commit path. Attach
    /// *after* recovery ([`crate::durability::recover`]) so replayed
    /// commits are not re-journaled.
    pub fn attach_wal(&self, wal: &Arc<Wal>) {
        wal.set_telemetry(&self.telemetry);
        self.journal.lock().unwrap().wal = Some(Arc::clone(wal));
        self.journal_active.store(true, Ordering::Release);
    }

    /// Attaches a replication hub: every subsequent commit is encoded
    /// once and fanned out to the hub's follower feeds (see
    /// [`crate::durability::ReplicationHub`]). The network server
    /// attaches its hub at bind time.
    pub fn attach_replication(&self, hub: &Arc<ReplicationHub>) {
        self.journal.lock().unwrap().hubs.push(Arc::downgrade(hub));
        self.journal_active.store(true, Ordering::Release);
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<Arc<Wal>> {
        self.journal.lock().unwrap().wal.clone()
    }

    /// Counters of the attached WAL (`None` when running without one) —
    /// the CLI's `store wal-status` view.
    pub fn wal_status(&self) -> Option<WalStatus> {
        self.wal().map(|w| w.status())
    }

    /// Runs the attached WAL's checkpoint-cadence check. Called after
    /// every commit once the committer's shard locks are dropped (a due
    /// checkpoint takes a store snapshot, i.e. every shard read lock).
    fn tick_durability(&self) {
        if !self.journal_active.load(Ordering::Acquire) {
            return;
        }
        let wal = self.journal.lock().unwrap().wal.clone();
        if let Some(wal) = wal {
            wal.maybe_checkpoint(self);
        }
    }

    /// Applies one replicated (or WAL-replayed) commit verbatim and
    /// returns its epoch. Inserts are upserts and removes tolerate
    /// absence — the ops already happened on the leader, so this side
    /// mirrors rather than validates. Runs the normal commit path
    /// (delta log, subscription maintenance), so a follower's standing
    /// queries are maintained exactly like the leader's.
    pub fn apply_replicated(&self, ops: &[ReplOp]) -> u64 {
        if ops.iter().any(|op| matches!(op, ReplOp::Clear)) {
            // A wipe commit is journaled alone; mirror it through the
            // full clear path (caches, cached snapshot, log floor).
            self.clear();
            return self.epoch();
        }
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.map.write().unwrap()).collect();
        let mut delta_ops = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                ReplOp::Insert(tr) => {
                    guards[self.shard_index(tr.oid())].insert(tr.oid(), Arc::clone(tr));
                    delta_ops.push(DeltaOp::Insert(Arc::clone(tr)));
                }
                ReplOp::Remove(oid) => {
                    guards[self.shard_index(*oid)].remove(oid);
                    delta_ops.push(DeltaOp::Remove(*oid));
                }
                ReplOp::Clear => unreachable!("handled above"),
            }
        }
        let epoch = self.commit(delta_ops);
        drop(guards);
        self.notify_subscriptions();
        epoch
    }

    /// Replaces the entire contents and jumps the epoch to `epoch` in
    /// one step — the bootstrap primitive shared by crash recovery
    /// (loading a checkpoint image) and follower snapshot-resync.
    /// History is marked incomplete at the new epoch (like
    /// [`ModStore::clear`]) and attached caches are dropped, but
    /// attached subscription registries survive: their standing queries
    /// rebuild against the restored contents in the maintenance round
    /// this triggers. Not journaled — a restore re-establishes state
    /// that is already durable elsewhere.
    pub fn restore(&self, objects: Vec<UncertainTrajectory>, epoch: u64) {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.map.write().unwrap()).collect();
        for g in guards.iter_mut() {
            g.clear();
        }
        for tr in objects {
            let tr = Arc::new(tr);
            guards[self.shard_index(tr.oid())].insert(tr.oid(), tr);
        }
        {
            let mut log = self.delta.lock().unwrap();
            self.epoch.store(epoch, Ordering::Release);
            log.invalidate(epoch);
        }
        *self.cached.write().unwrap() = None;
        drop(guards);
        let mut caches = self.caches.lock().unwrap();
        caches.retain(|w| match w.upgrade() {
            Some(cache) => {
                cache.clear();
                true
            }
            None => false,
        });
        drop(caches);
        self.notify_subscriptions();
    }

    /// Owned copies of the delta records newer than `base` (`None` when
    /// the log is incomplete past `base`). The clones are cheap — records
    /// share their trajectories by `Arc` — and taken under the log lock,
    /// so consumers can process them without holding it.
    pub(crate) fn ops_since_cloned(&self, base: u64) -> Option<Vec<DeltaRecord>> {
        let log = self.delta.lock().unwrap();
        log.ops_since(base)
            .map(|ops| ops.into_iter().cloned().collect())
    }

    /// Runs `f` over the delta records newer than `base` (`None` when the
    /// log is incomplete past `base`). Used by the engine-cache carry
    /// check; the closure runs under the log lock and must not call back
    /// into the store.
    pub(crate) fn with_ops_since<R>(
        &self,
        base: u64,
        f: impl FnOnce(Option<&[&DeltaRecord]>) -> R,
    ) -> R {
        let log = self.delta.lock().unwrap();
        match log.ops_since(base) {
            Some(ops) => f(Some(&ops)),
            None => f(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_traj::trajectory::Trajectory;

    fn tr(oid: u64) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap(),
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let s = ModStore::new();
        assert!(s.is_empty());
        s.insert(tr(1)).unwrap();
        s.insert(tr(2)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(Oid(1)));
        assert_eq!(s.get(Oid(1)).unwrap().oid(), Oid(1));
        assert_eq!(s.insert(tr(1)), Err(StoreError::DuplicateOid(Oid(1))));
        s.remove(Oid(1)).unwrap();
        assert_eq!(s.remove(Oid(1)), Err(StoreError::NotFound(Oid(1))));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bulk_load_is_atomic() {
        let s = ModStore::new();
        s.insert(tr(3)).unwrap();
        let res = s.bulk_load(vec![tr(4), tr(3)]);
        assert_eq!(res, Err(StoreError::DuplicateOid(Oid(3))));
        // Nothing from the failed batch is visible.
        assert!(!s.contains(Oid(4)));
        assert_eq!(s.bulk_load(vec![tr(5), tr(6)]).unwrap(), 2);
        assert_eq!(s.len(), 3);
        // Duplicates *within* one batch are rejected too.
        assert_eq!(
            s.bulk_load(vec![tr(7), tr(7)]),
            Err(StoreError::DuplicateOid(Oid(7)))
        );
        assert!(!s.contains(Oid(7)));
    }

    #[test]
    fn epoch_bumps_on_mutation() {
        let s = ModStore::new();
        let e0 = s.epoch();
        s.insert(tr(1)).unwrap();
        let e1 = s.epoch();
        assert!(e1 > e0);
        let _ = s.get(Oid(1));
        assert_eq!(s.epoch(), e1); // reads do not bump
        s.clear();
        assert!(s.epoch() > e1);
        assert!(s.is_empty());
    }

    #[test]
    fn update_replaces_under_one_epoch() {
        let s = ModStore::new();
        s.insert(tr(1)).unwrap();
        s.insert(tr(2)).unwrap();
        let _ = s.snapshot();
        let before = s.epoch();
        // Replace: one epoch, old content returned.
        let old = s.update(tr(1)).expect("replaced");
        assert_eq!(old.oid(), Oid(1));
        assert_eq!(s.epoch(), before + 1);
        assert_eq!(s.len(), 2);
        // The delta collapses to a single-object update.
        assert_eq!(s.delta_stats().pending_ops, 2, "remove + insert records");
        let snap = s.snapshot();
        assert!(snap.contains(Oid(1)));
        // Upsert of an absent id inserts.
        assert!(s.update(tr(9)).is_none());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let s = ModStore::new();
        s.insert(tr(9)).unwrap();
        s.insert(tr(2)).unwrap();
        s.insert(tr(5)).unwrap();
        let snap = s.snapshot();
        let oids: Vec<u64> = snap.iter().map(|t| t.oid().0).collect();
        assert_eq!(oids, vec![2, 5, 9]);
        assert_eq!(s.oids(), vec![Oid(2), Oid(5), Oid(9)]);
    }

    #[test]
    fn snapshot_is_shared_until_mutation() {
        let s = ModStore::new();
        s.insert(tr(1)).unwrap();
        s.insert(tr(2)).unwrap();
        let a = s.snapshot();
        let b = s.snapshot();
        assert!(
            Arc::ptr_eq(&a, &b),
            "unchanged store must share the snapshot"
        );
        assert_eq!(a.epoch(), s.epoch());
        s.insert(tr(3)).unwrap();
        let c = s.snapshot();
        assert!(
            !Arc::ptr_eq(&a, &c),
            "mutation must invalidate the snapshot"
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.epoch(), s.epoch());
        // The old snapshot still reads consistently at its own epoch.
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn small_mutations_refresh_by_delta() {
        let s = ModStore::new();
        s.bulk_load((0..40).map(tr)).unwrap();
        let first = s.snapshot();
        // Force the indexes so the delta path has something to patch.
        let _ = (first.grid().entry_count(), first.rtree().entry_count());
        s.remove(Oid(7)).unwrap();
        s.insert(tr(100)).unwrap();
        let second = s.snapshot();
        let stats = s.delta_stats();
        assert!(
            stats.snapshots_delta_applied >= 1,
            "small delta must patch, not rebuild: {stats:?}"
        );
        assert!(!second.contains(Oid(7)));
        assert!(second.contains(Oid(100)));
        assert_eq!(second.len(), 40);
        // Patched indexes carry the delta too.
        use crate::index::{query_box, SegmentIndex};
        let everything = query_box(-1e6, -1e6, 1e6, 1e6, 0.0, 1e6);
        let grid_hits = second.grid().query_bbox(&everything);
        assert!(!grid_hits.contains(&Oid(7)));
        assert!(grid_hits.contains(&Oid(100)));
        assert_eq!(second.rtree().query_bbox(&everything), grid_hits);
    }

    #[test]
    fn zero_rebuild_fraction_disables_delta_maintenance() {
        let s = ModStore::new();
        s.set_rebuild_fraction(0.0);
        s.bulk_load((0..20).map(tr)).unwrap();
        let _ = s.snapshot();
        s.remove(Oid(3)).unwrap();
        let snap = s.snapshot();
        assert!(!snap.contains(Oid(3)));
        let stats = s.delta_stats();
        assert_eq!(stats.snapshots_delta_applied, 0, "{stats:?}");
        assert!(stats.snapshots_rebuilt >= 2);
    }

    #[test]
    fn accumulated_patch_debt_forces_a_periodic_repack() {
        use crate::index::SegmentIndex;
        let s = ModStore::new();
        s.bulk_load((0..40).map(tr)).unwrap();
        let _ = s.snapshot().rtree().entry_count();
        // An endless stream of tiny deltas: each is far under the
        // rebuild fraction, but the debt accumulates until a re-pack
        // clears the R-tree overflow.
        let mut max_overflow = 0;
        for k in 0..60u64 {
            s.insert(tr(100 + k)).unwrap();
            let snap = s.snapshot();
            max_overflow = max_overflow.max(snap.rtree().overflow_len());
        }
        let stats = s.delta_stats();
        assert!(
            stats.snapshots_rebuilt >= 2,
            "patch debt never triggered a re-pack: {stats:?}"
        );
        assert!(
            max_overflow <= 40,
            "overflow grew past the rebuild budget: {max_overflow}"
        );
        // A re-packed snapshot starts debt-free.
        assert!(s.snapshot().patch_debt() <= 40);
    }

    #[test]
    fn oversized_deltas_fall_back_to_rebuild() {
        let s = ModStore::new();
        s.bulk_load((0..10).map(tr)).unwrap();
        let _ = s.snapshot();
        let before = s.delta_stats().snapshots_rebuilt;
        // Touch well over the default fraction of the population.
        for oid in 0..8 {
            s.remove(Oid(oid)).unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(s.delta_stats().snapshots_rebuilt, before + 1);
    }

    #[test]
    fn clear_resets_delta_state_and_attached_caches() {
        let s = ModStore::new();
        let cache = Arc::new(EngineCache::with_capacity(8));
        s.attach_cache(&cache);
        s.bulk_load((0..5).map(tr)).unwrap();
        let _ = s.snapshot();
        s.clear();
        assert!(s.is_empty());
        let stats = s.delta_stats();
        assert_eq!(stats.log_len, 0);
        assert_eq!(stats.log_floor, stats.epoch);
        assert_eq!(cache.stats().entries, 0);
        // A snapshot after clear is a rebuild of the empty population.
        assert_eq!(s.snapshot().len(), 0);
    }

    #[test]
    fn delta_stats_report_pending_ops() {
        let s = ModStore::new();
        s.bulk_load((0..6).map(tr)).unwrap();
        let _ = s.snapshot();
        s.insert(tr(50)).unwrap();
        s.remove(Oid(2)).unwrap();
        let stats = s.delta_stats();
        assert_eq!(stats.pending_ops, 2, "{stats:?}");
        let _ = s.snapshot();
        assert_eq!(s.delta_stats().pending_ops, 0);
    }
}
