//! Standing queries: registered continuous queries whose answers are
//! **maintained incrementally** as the MOD mutates, instead of being
//! re-planned per request.
//!
//! The paper's queries are continuous by nature — probabilistic NN
//! predicates holding over a time window — yet a request/response server
//! re-derives every answer from a point-in-time snapshot. A
//! [`SubscriptionRegistry`] attached to the store
//! ([`crate::store::ModStore::attach_subscriptions`]) closes that gap:
//! after every commit, the epoch's delta is routed to the affected
//! subscriptions only, in the DBSP spirit of re-deriving just the changed
//! part of each answer from the input delta.
//!
//! ## Two maintained representations, one ladder
//!
//! A standing query maintains one of two diffable answers, chosen by its
//! statement shape:
//!
//! * **Qualification intervals** ([`unn_core::answer::AnswerSet`]) for
//!   forward `PROB_NN(…) > 0` statements (any quantifier, optional
//!   `RANK`) — the banded non-zero-probability semantics.
//! * **Probability rows** ([`unn_core::probrows::ProbRowSet`]) for
//!   threshold (`PROB_NN(…) > p`, `p > 0`) and reverse (`PROB_RNN`)
//!   statements — sampled `P^NN(t)` rows with per-sample provenance,
//!   whose deltas ([`unn_core::probrows::ProbRowDelta`]) stream exactly
//!   like interval deltas.
//!
//! Per subscription, per delta, one of three paths runs (cheapest
//! first):
//!
//! 1. **Skip** — the carried engine's band-bound proof
//!    ([`crate::delta::ForwardProof`]) shows no logged op can touch the
//!    answer: only the epoch watermark advances. The proof bounds
//!    (candidate set, band survivors, envelope maximum, query corridor
//!    box) are derived **once per carried engine** and cached, so a
//!    burst of `M` far commits costs one proof-bound derivation plus `M`
//!    box checks — not `M` envelope scans. Row subscriptions use the
//!    sharper [`crate::delta::ForwardProof::ops_unaffected_rows`]
//!    obligation (a removal of a candidate that never survived band
//!    pruning cannot have joined any probe column).
//! 2. **Patch** — the prefilter re-runs against the patched snapshot and
//!    the engine is rebuilt *reusing every unchanged candidate's
//!    difference function* from the carried engine. For interval answers
//!    the carried envelope recomputes only touched candidates'
//!    intervals; for probability rows only the *dirty probe columns* —
//!    those whose provenance includes a touched function, or that a
//!    fresh function's band now reaches — are jointly re-evaluated, and
//!    every clean column's `P` values are copied bit-for-bit
//!    ([`unn_core::query::QueryEngine::prob_row_set_reusing`]). Reverse
//!    subscriptions patch **per perspective**: each perspective object
//!    keeps its own carried lower envelope and [`ForwardProof`], so a
//!    far commit re-derives one new perspective and carries all
//!    untouched ones (`perspectives_skipped` counts the carries).
//! 3. **Rebuild** — the delta log was truncated past the subscription's
//!    last epoch (or the query object itself changed): patching against
//!    incomplete history would silently miss mutations, so the full
//!    plan → difference → envelope (→ sampling) pipeline runs from
//!    scratch (see the truncation contract in [`crate::delta::DeltaLog`]).
//!
//! ## Sharded maintenance
//!
//! The registry is sharded by subscription-name hash, mirroring the
//! store's oid-hashed writer shards. [`SubscriptionRegistry::sync`] runs
//! in two phases: a sequential *cheap pass* classifies each visited
//! subscription (current / skip / heavy) sharing one delta-ops fetch and
//! one changed-id set across all subscriptions at the same watermark;
//! then the subscriptions needing heavy work (patch or rebuild) are
//! refreshed per shard, **fanning out across scoped threads** when the
//! host has more than one core. [`SubscriptionRegistry::set_sync_mode`]
//! restores the fully sequential one-lock ladder (per-subscription ops
//! fetch, uncached proof) as an ablation baseline — the
//! `continuous_queries` bench tracks the speedup.
//!
//! ## The maintenance index: `O(affected)` rounds
//!
//! Which subscriptions does phase one even look at? In the
//! publication-style reading of the registry — standing queries are the
//! *subscriptions*, commits are the *publications* — the registry keeps
//! a spatial index over the standing queries themselves (the private
//! `SubscriptionIndex`): every share whose engine carries a
//! [`ForwardProof`] publishes a **guard box** — the query corridor
//! inflated by the proof's reach (envelope maximum plus band slack),
//! flattened in time — into a [`GridIndex`] keyed by share id, plus an
//! inverted oid → shares map for the objects whose identity the proof
//! depends on. A commit's maintenance round computes the delta region
//! of its logged ops and visits only the index hits: a share outside
//! the hit set is *provably* unaffected (its per-axis gap exceeds the
//! reach, hence so does the Euclidean gap) and is skipped **without
//! being touched** — no lock, no watermark write. The skipped rounds
//! are reconciled lazily from a round counter at the share's next visit
//! or stats read ([`SubscriptionStats::skipped_unvisited`]). Shares
//! without a usable proof (reverse rows, parked, errored) sit in an
//! always-visit set. Guards re-publish whenever a proof re-derives,
//! with a catch-up loop closing the race against rounds proven on the
//! old guard. Far churn therefore costs one index lookup — independent
//! of the registered population; the `fanout` bench's
//! `city_maintain_10k` group pins a far-churn round at 10k standing
//! queries to within 10x of the 100-subscription round, against the
//! `city_seq_10k` linear-sweep ablation.
//!
//! Commits can additionally be **coalesced**: with
//! [`crate::store::ModStore::set_maintenance_batch`] above 1, only
//! every `n`-th commit runs a round, which then reconciles the whole
//! burst from the delta log in one pass
//! ([`SubscriptionStats::batched_commits`] counts the epochs folded
//! beyond each visit's first). `tests/indexed_sync.rs` holds the
//! indexed, batched path bit-identical to the `Sequential` sweep across
//! random interleavings, backends, and mid-batch registrations.
//!
//! ## Engine sharing
//!
//! Registrations with the same computation shape — query object, window,
//! kind (interval / threshold rows / reverse rows), prefilter policy,
//! sample density, threshold — coalesce onto **one share**: one carried
//! engine, one skip/patch/rebuild round per commit, however many
//! subscription names ride it. Each member keeps its own identity (pull
//! feed, attached sinks, per-name `Event` frames), but the maintained
//! answer and the delta are computed once.
//! [`SubscriptionRegistry::share_count`] exposes the number of distinct
//! maintained computations, and
//! [`SubscriptionRegistry::set_engine_sharing`] disables coalescing for
//! future registrations — the per-subscription-engine ablation baseline
//! the `fanout` bench compares against (at 1k same-query subscribers the
//! baseline multiplies every commit's engine cost by 1k).
//!
//! ## Change feeds and push sinks
//!
//! Every answer change is appended to the subscription's bounded pull
//! feed (drained by `sub poll` / [`SubscriptionRegistry::drain`]) and
//! forwarded to every attached [`DeltaSink`] — the bounded outbox a
//! network connection hangs on to receive **pushed** deltas (see
//! [`crate::net`]). Both are bounded by the store's
//! [`crate::store::ModStore::set_feed_bound`] / the sink's own capacity
//! under the same squash-oldest contract: overflowing deltas are
//! composed via [`SubDelta::then`] (never dropped), so folding a feed
//! over the subscriber's base answer stays bit-identical to the
//! maintained answer; squashed sink events are flagged `lagged` so a
//! push consumer knows to resync from a full answer. Each queued event
//! carries a [`FrameCache`], so when many connections watch the same
//! subscription name the wire frame for a delta is serialized **once**
//! and every outbox hands the same `Arc<[u8]>` to its socket (see
//! [`crate::net::server`]).
//!
//! Every path yields answers **bit-identical** to a fresh exhaustive
//! evaluation of the current contents — the patch path replans with the
//! same deterministic prefilter a cold query would use, reuses only
//! difference functions whose inputs are untouched, and recomputes
//! probe columns with the canonical joint evaluation a cold sweep runs;
//! `tests/continuous_queries.rs` asserts the equivalence property-style
//! across random mutation interleavings and all prefilter backends, for
//! interval and row subscriptions alike.

use crate::delta::{full_xy_box, DeltaOp, DeltaRecord, ForwardProof};
use crate::index::bbox::Aabb3;
use crate::index::grid::GridIndex;
use crate::index::SegmentIndex;
use crate::plan::{PrefilterPolicy, QueryPlan, QueryPlanner};
use crate::ql::ast::{PredicateKind, Quantifier, Query, Target};
use crate::ql::{parse_object_name, SourceSpan};
use crate::server::QueryOutput;
use crate::snapshot::QuerySnapshot;
use crate::store::{DifferenceModel, ModStore};
use crate::telemetry::{self, TraceEvent, TraceStage};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use unn_core::answer::{AnswerDelta, AnswerSet};
use unn_core::candidates::CandidateSet;
use unn_core::kernel::ColumnKernel;
use unn_core::probrows::{ProbRowDelta, ProbRowSet, RowPerspective};
use unn_core::query::QueryEngine;
use unn_core::reverse::ReverseNnEngine;
use unn_geom::interval::TimeInterval;
use unn_prob::pdf::PdfKind;
use unn_traj::distance::DistanceFunction;
use unn_traj::trajectory::{Oid, Trajectory};
use unn_traj::uncertain::{common_pdf_kind, common_radius};

/// Number of name-hashed registry shards (mirrors the store's writer
/// sharding so maintenance fan-out matches ingest fan-out).
const REGISTRY_SHARDS: usize = 16;

/// Default number of probe instants a row subscription samples its
/// window at — shared with the one-shot threshold path
/// ([`crate::server::ModServer::THRESHOLD_SAMPLES`] aliases it), so a
/// maintained row set and a fresh one-shot sweep agree bit-for-bit.
/// Tunable per registry via
/// [`SubscriptionRegistry::set_row_samples`]: each probe of every
/// candidate costs a `P^WD` quadrature, so sampling density is the
/// row-maintenance cost dial (a subscription keeps the density it was
/// registered with).
pub const PROB_ROW_SAMPLES: u32 = 128;

/// Errors raised by subscription management.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionError {
    /// A subscription with this name already exists.
    NameTaken(String),
    /// No subscription with this name.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// The registered name closest to it (cheap edit distance), if
        /// any is close enough to plausibly be a typo.
        nearest: Option<String>,
    },
    /// The statement cannot be registered as a standing query.
    Unsupported {
        /// Why the statement shape is not incrementally maintainable.
        message: String,
        /// The offending token in the statement, when known — lets the
        /// CLI and wire server render a caret
        /// ([`SubscriptionError::render`]).
        span: Option<SourceSpan>,
    },
    /// The initial evaluation failed (unknown query object, not enough
    /// objects, invalid window…).
    Evaluation(String),
}

impl SubscriptionError {
    /// An [`SubscriptionError::Unknown`] for `name`, with the nearest
    /// registered name as a hint.
    fn unknown(name: &str, registry: &SubscriptionRegistry) -> SubscriptionError {
        SubscriptionError::Unknown {
            name: name.to_string(),
            nearest: registry.nearest_name(name),
        }
    }

    /// Renders the error against the statement it was raised for:
    /// [`SubscriptionError::Unsupported`] errors carrying a span draw a
    /// caret at the offending token (like
    /// [`crate::ql::ParseError::render`]); everything else renders as
    /// its `Display` form.
    pub fn render(&self, src: &str) -> String {
        match self {
            SubscriptionError::Unsupported {
                span: Some(span), ..
            } => {
                let located = SourceSpan::locate(src, span.offset);
                format!(
                    "{self} (line {}, column {})\n{}",
                    located.line,
                    located.col,
                    located.render_caret(src)
                )
            }
            other => other.to_string(),
        }
    }
}

impl fmt::Display for SubscriptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscriptionError::NameTaken(n) => {
                write!(f, "a subscription named '{n}' already exists")
            }
            SubscriptionError::Unknown { name, nearest } => {
                write!(f, "no subscription named '{name}'")?;
                if let Some(hint) = nearest {
                    write!(f, " (did you mean '{hint}'?)")?;
                }
                Ok(())
            }
            SubscriptionError::Unsupported { message, .. } => {
                write!(f, "cannot register: {message}")
            }
            SubscriptionError::Evaluation(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SubscriptionError {}

/// How [`SubscriptionRegistry::sync`] schedules maintenance work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// The default: the sharded two-phase sync — one shared cheap pass
    /// (shared ops fetch, cached skip proofs), then heavy refreshes
    /// fanned out across scoped threads per shard on multi-core hosts.
    #[default]
    Sharded,
    /// The ablation baseline: one sequential pass over every
    /// subscription, each fetching its own delta ops and deriving its
    /// skip proof from scratch (the pre-sharding behavior).
    Sequential,
}

/// Per-subscription maintenance counters: how each routed delta was
/// absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscriptionStats {
    /// Maintenance rounds proven unable to touch the answer (watermark
    /// bump only).
    pub skipped: u64,
    /// Logged ops absorbed by those skip rounds — `skipped_ops >
    /// skipped` means bursts were coalesced into single proof rounds.
    pub skipped_ops: u64,
    /// Deltas absorbed by the incremental re-eval (prefilter + reused
    /// difference functions + envelope).
    pub patched: u64,
    /// Full re-plans: truncated history, a mutated query object, or an
    /// evaluation error.
    pub rebuilt: u64,
    /// Patches that additionally carried the envelope (the delta provably
    /// left the lower envelope untouched, so only the touched candidates'
    /// intervals were recomputed).
    pub envelopes_carried: u64,
    /// Difference functions reused from the carried engine across all
    /// patches (the work incrementality avoided).
    pub functions_reused: u64,
    /// Difference functions built fresh across all patches.
    pub functions_built: u64,
    /// Probability rows recomputed across all row-subscription patches
    /// (forward: rows touching a dirty probe column; reverse:
    /// perspectives re-sampled). Rows outside this count were copied
    /// bit-for-bit from the carried answer.
    pub rows_patched: u64,
    /// Reverse perspectives whose engine *and* row were carried
    /// wholesale under their per-perspective proof — the work a far
    /// commit skips.
    pub perspectives_skipped: u64,
    /// Dirty probe columns the adaptive kernel escalated to full
    /// quadrature density because the coarse estimate sat within its
    /// error bound of the subscription's threshold `p` (or the bound
    /// exceeded the tolerance). Always 0 while the registry's
    /// [`SubscriptionRegistry::row_tolerance`] knob is 0.
    pub columns_refined: u64,
    /// Dirty probe columns the adaptive kernel settled at coarse
    /// density — provably within the configured tolerance and clear of
    /// the threshold. Always 0 while the tolerance knob is 0.
    pub columns_coarse_only: u64,
    /// Maintenance rounds that examined this share at all — each lands
    /// in exactly one of `skipped` / `patched` / `rebuilt`, so
    /// `visited` always equals their sum (the legibility counter next
    /// to `skipped_unvisited`).
    pub visited: u64,
    /// Maintenance rounds the subscription index pruned before they
    /// touched this share: no lock taken, no proof checked — the
    /// round's delta provably missed the published guard region.
    /// Distinct from `skipped`, which still pays a per-share box/id
    /// check under the core lock.
    pub skipped_unvisited: u64,
    /// Extra commits absorbed beyond the first by coalesced rounds
    /// (distinct commit epochs spanned minus one, summed over visited
    /// rounds) — what a [`crate::store::ModStore::set_maintenance_batch`]
    /// window or a raced burst folded into single ladder passes.
    pub batched_commits: u64,
}

/// A snapshot of one subscription's state (the `SHOW SUBSCRIPTIONS` row).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionInfo {
    /// The subscription's unique name.
    pub name: String,
    /// The standing query, rendered back to its statement surface.
    pub statement: String,
    /// The store epoch the answer is current at.
    pub last_epoch: u64,
    /// Number of objects currently qualifying (interval subscriptions)
    /// or holding a probability row (row subscriptions).
    pub entries: usize,
    /// Undrained deltas in the change feed.
    pub pending_deltas: usize,
    /// The evaluation error the subscription is parked on, if any (e.g.
    /// its query object left the MOD; cleared when evaluation succeeds
    /// again).
    pub error: Option<String>,
    /// Maintenance counters.
    pub stats: SubscriptionStats,
}

/// A maintained standing-query answer: qualification intervals for
/// forward `> 0` statements, sampled probability rows for threshold and
/// reverse ones. The two shapes never diff against each other.
#[derive(Debug, Clone, PartialEq)]
pub enum SubAnswer {
    /// Banded qualification intervals (the [`AnswerSet`] algebra).
    Intervals(AnswerSet),
    /// Sampled probability rows (the [`ProbRowSet`] algebra).
    Rows(ProbRowSet),
}

impl SubAnswer {
    /// Number of qualifying objects / row owners.
    pub fn len(&self) -> usize {
        match self {
            SubAnswer::Intervals(a) => a.len(),
            SubAnswer::Rows(r) => r.len(),
        }
    }

    /// `true` when nothing qualifies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The interval answer, when this is one.
    pub fn as_intervals(&self) -> Option<&AnswerSet> {
        match self {
            SubAnswer::Intervals(a) => Some(a),
            SubAnswer::Rows(_) => None,
        }
    }

    /// The row answer, when this is one.
    pub fn as_rows(&self) -> Option<&ProbRowSet> {
        match self {
            SubAnswer::Rows(r) => Some(r),
            SubAnswer::Intervals(_) => None,
        }
    }

    /// The delta transforming `self` into `newer` (same shape), tagged
    /// with `epoch`.
    ///
    /// # Panics
    ///
    /// Panics when the answers have different representations.
    pub fn diff_to(&self, newer: &SubAnswer, epoch: u64) -> SubDelta {
        match (self, newer) {
            (SubAnswer::Intervals(a), SubAnswer::Intervals(b)) => {
                SubDelta::Intervals(a.diff_to(b, epoch))
            }
            (SubAnswer::Rows(a), SubAnswer::Rows(b)) => SubDelta::Rows(a.diff_to(b, epoch)),
            _ => panic!("diff of mismatched answer representations"),
        }
    }

    /// Applies a delta of the matching representation.
    ///
    /// # Panics
    ///
    /// Panics when the delta belongs to the other representation.
    pub fn apply(&self, delta: &SubDelta) -> SubAnswer {
        match (self, delta) {
            (SubAnswer::Intervals(a), SubDelta::Intervals(d)) => SubAnswer::Intervals(a.apply(d)),
            (SubAnswer::Rows(r), SubDelta::Rows(d)) => SubAnswer::Rows(r.apply(d)),
            _ => panic!("applying a delta of the wrong representation"),
        }
    }
}

/// One maintained answer change: an interval delta or a row delta,
/// matching the subscription's [`SubAnswer`] representation.
#[derive(Debug, Clone, PartialEq)]
pub enum SubDelta {
    /// An [`AnswerDelta`] of an interval subscription.
    Intervals(AnswerDelta),
    /// A [`ProbRowDelta`] of a threshold/reverse subscription.
    Rows(ProbRowDelta),
}

impl SubDelta {
    /// The store epoch the answer advanced to.
    pub fn epoch(&self) -> u64 {
        match self {
            SubDelta::Intervals(d) => d.epoch,
            SubDelta::Rows(d) => d.epoch,
        }
    }

    /// `true` when applying the delta would change nothing.
    pub fn is_empty(&self) -> bool {
        match self {
            SubDelta::Intervals(d) => d.is_empty(),
            SubDelta::Rows(d) => d.is_empty(),
        }
    }

    /// Number of changed objects (upserts + removals).
    pub fn touched(&self) -> usize {
        match self {
            SubDelta::Intervals(d) => d.touched(),
            SubDelta::Rows(d) => d.touched(),
        }
    }

    /// The interval delta, when this is one.
    pub fn as_intervals(&self) -> Option<&AnswerDelta> {
        match self {
            SubDelta::Intervals(d) => Some(d),
            SubDelta::Rows(_) => None,
        }
    }

    /// The row delta, when this is one.
    pub fn as_rows(&self) -> Option<&ProbRowDelta> {
        match self {
            SubDelta::Rows(d) => Some(d),
            SubDelta::Intervals(_) => None,
        }
    }

    /// Composes `self` (applied first) with `next` (applied second).
    /// Bounded feeds squash their oldest entries with this; one
    /// subscription's deltas always share a representation.
    ///
    /// # Panics
    ///
    /// Panics on mismatched representations.
    pub fn then(&self, next: &SubDelta) -> SubDelta {
        match (self, next) {
            (SubDelta::Intervals(a), SubDelta::Intervals(b)) => SubDelta::Intervals(a.then(b)),
            (SubDelta::Rows(a), SubDelta::Rows(b)) => SubDelta::Rows(a.then(b)),
            _ => panic!("composing deltas of mismatched representations"),
        }
    }
}

/// A shared once-cell for the encoded wire image of one pushed delta —
/// the **encode-once broadcast** handle. Maintenance creates one cache
/// per emitted `(subscription, delta)` and hands the same handle to
/// every attached [`DeltaSink`]; the first network connection to
/// deliver the event encodes the full length-prefixed frame and
/// publishes the bytes, every other connection clones the `Arc<[u8]>`
/// (see [`crate::net::wire::encode_frame_bytes`]). The subscription
/// layer never encodes anything itself — it only provides the shared
/// cell, so the wire format stays a `net`-layer concern.
///
/// A cache is only ever shared between events carrying the *same*
/// subscription name, delta, and `lagged` flag: outbox squashing
/// replaces the survivor's cache with a fresh empty one, so a composed
/// (`lagged`) event re-encodes per connection — the rare slow-consumer
/// path.
#[derive(Clone, Default)]
pub struct FrameCache(Arc<OnceLock<Arc<[u8]>>>);

impl FrameCache {
    /// The published frame bytes, if any connection has encoded this
    /// event yet.
    pub fn get(&self) -> Option<Arc<[u8]>> {
        self.0.get().cloned()
    }

    /// Publishes the encoded frame bytes. First writer wins; a racing
    /// second encode is dropped (both encodes are bit-identical by the
    /// sharing contract above, so either is valid).
    pub fn prime(&self, bytes: Arc<[u8]>) {
        let _ = self.0.set(bytes);
    }
}

impl fmt::Debug for FrameCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.get() {
            Some(bytes) => write!(f, "FrameCache({} bytes)", bytes.len()),
            None => write!(f, "FrameCache(unencoded)"),
        }
    }
}

/// One pushed change-feed entry: the subscription it belongs to, the
/// epoch-tagged delta, and whether backpressure squashed older entries
/// into it (`lagged` — the consumer should resync from a full answer if
/// it cares about per-epoch granularity; folding stays exact either
/// way).
#[derive(Debug, Clone)]
pub struct FeedEvent {
    /// The subscription name.
    pub subscription: String,
    /// The (possibly squashed) answer delta.
    pub delta: SubDelta,
    /// `true` when this delta is the composition of entries an
    /// overflowing outbox squashed together.
    pub lagged: bool,
    /// The encode-once cell shared by every outbox this event was
    /// fanned out to (fresh and private after a squash).
    pub cache: FrameCache,
    /// [`crate::telemetry::now_ns`] at enqueue time (0 when metrics are
    /// off) — the drain side subtracts it to sample `push_drain_lag_ns`.
    /// A squash keeps the *older* timestamp, so the lag of a composed
    /// event reflects how long its oldest constituent waited.
    pub enqueued_ns: u64,
}

impl PartialEq for FeedEvent {
    /// The wire-byte cache is delivery state, not event identity.
    fn eq(&self, other: &Self) -> bool {
        self.subscription == other.subscription
            && self.delta == other.delta
            && self.lagged == other.lagged
    }
}

/// A bounded outbox for pushed [`FeedEvent`]s — the per-connection
/// backpressure buffer between subscription maintenance (the producer,
/// running on whichever thread committed the mutation) and a delivery
/// thread (the consumer, e.g. a [`crate::net::NetServer`] connection
/// pusher).
///
/// Overflow follows the squash-oldest contract documented at
/// [`crate::store::ModStore::set_feed_bound`]: the oldest two events of
/// the same subscription are composed via [`SubDelta::then`] and the
/// survivor is flagged `lagged`. Events are never dropped, so folding a
/// sink's stream remains bit-exact; if every queued event belongs to a
/// distinct subscription, the queue grows past the bound instead (a
/// sink serving `S` subscriptions needs a capacity ≥ `S` to stay
/// bounded).
///
/// A consumer can either block on [`DeltaSink::recv`] (its own delivery
/// thread) or register a [`DeltaSink::set_wake_hook`] and drain with
/// [`DeltaSink::try_recv`] — the event-loop pattern the multiplexed
/// [`crate::net::NetServer`] uses.
pub struct DeltaSink {
    state: Mutex<SinkState>,
    cv: Condvar,
    capacity: usize,
    /// Invoked (outside the queue lock) after every enqueue — the
    /// readiness-loop nudge for consumers that poll instead of block.
    wake_hook: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl fmt::Debug for DeltaSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock().unwrap();
        f.debug_struct("DeltaSink")
            .field("queued", &st.queue.len())
            .field("closed", &st.closed)
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[derive(Debug, Default)]
struct SinkState {
    queue: VecDeque<FeedEvent>,
    closed: bool,
}

impl DeltaSink {
    /// A sink retaining at most `capacity` undrained events before
    /// squashing (minimum 1).
    pub fn bounded(capacity: usize) -> DeltaSink {
        DeltaSink {
            state: Mutex::new(SinkState::default()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            wake_hook: Mutex::new(None),
        }
    }

    /// Registers (or clears) a callback invoked after every enqueue,
    /// outside the queue lock. An event-loop consumer points this at its
    /// waker so a maintenance thread's push interrupts the loop's
    /// `poll`; the hook must be cheap and must not call back into the
    /// sink.
    pub fn set_wake_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) {
        *self.wake_hook.lock().unwrap() = hook;
    }

    /// Enqueues one event, squashing the oldest same-subscription pair
    /// on overflow. No-op after [`DeltaSink::close`].
    fn push(&self, subscription: &str, delta: &SubDelta, cache: &FrameCache) {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return;
        }
        if st.queue.len() >= self.capacity {
            Self::squash_oldest(&mut st.queue);
        }
        st.queue.push_back(FeedEvent {
            subscription: subscription.to_string(),
            delta: delta.clone(),
            lagged: false,
            cache: cache.clone(),
            enqueued_ns: if telemetry::metrics_on() {
                telemetry::now_ns()
            } else {
                0
            },
        });
        drop(st);
        self.cv.notify_one();
        let hook = self.wake_hook.lock().unwrap().clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Composes the first two events sharing a subscription (events of
    /// one subscription are consecutive in its stream even when
    /// interleaved with other subscriptions' events, so `then` applies).
    /// The survivor's encode-once cache is replaced with a fresh private
    /// cell: the composed delta exists only in this outbox, so its frame
    /// must not alias the broadcast bytes.
    fn squash_oldest(queue: &mut VecDeque<FeedEvent>) {
        for i in 0..queue.len() {
            let name = queue[i].subscription.clone();
            if let Some(j) = (i + 1..queue.len()).find(|&j| queue[j].subscription == name) {
                let newer = queue.remove(j).expect("index in range");
                let older = &mut queue[i];
                older.delta = older.delta.then(&newer.delta);
                older.lagged = true;
                older.cache = FrameCache::default();
                return;
            }
        }
        // Every queued event belongs to a distinct subscription: nothing
        // can be squashed soundly; the queue grows past the bound.
    }

    /// Blocks until an event is available or the sink is closed *and*
    /// drained (`None`).
    pub fn recv(&self) -> Option<FeedEvent> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(ev) = st.queue.pop_front() {
                return Some(ev);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Pops the next event without blocking.
    pub fn try_recv(&self) -> Option<FeedEvent> {
        self.state.lock().unwrap().queue.pop_front()
    }

    /// Closes the sink: producers stop enqueueing, consumers drain what
    /// remains and then see `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// `true` once closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Undrained events.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// `true` when no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which maintenance ladder a subscription runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SubKind {
    /// Forward `PROB_NN(…) > 0`: banded qualification intervals
    /// (optionally rank-bounded).
    Intervals {
        /// The `RANK k` bound, when given.
        rank: Option<usize>,
    },
    /// Forward `PROB_NN(…) > p` with `p > 0`: sampled probability rows
    /// over the forward engine.
    ForwardRows,
    /// `PROB_RNN(…) > p`: sampled probability rows, one per perspective
    /// object, with per-perspective envelope carry.
    ReverseRows,
}

/// The identity of one maintained computation — everything that shapes
/// the engine, the maintenance ladder, and the produced answer.
/// Subscriptions whose statements agree on every field (the statement's
/// quantifier/target are *render-side* and deliberately absent) share
/// one [`SharedSub`]: one engine, one skip/patch/rebuild round per
/// commit, one answer diffed once and broadcast to every subscriber
/// slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ShareKey {
    oid: Oid,
    /// The window endpoints as `f64` bit patterns (`Eq`/`Hash` over the
    /// exact registered values).
    window: (u64, u64),
    kind: SubKind,
    policy: PrefilterPolicy,
    samples: u32,
    /// The probability threshold's bit pattern. Rows are maintained
    /// threshold-independently at tolerance 0, but the adaptive kernel
    /// aims its refinement at the threshold, so differing thresholds
    /// must not share a kernel ladder.
    threshold: u64,
    /// `Some(subscription name)` when engine sharing is disabled
    /// ([`SubscriptionRegistry::set_engine_sharing`]) — makes every key
    /// unique, restoring the one-engine-per-subscription baseline.
    exclusive: Option<String>,
}

/// One subscriber's view of a shared computation: its private pull feed
/// and push outboxes. The maintained answer lives on the share; slots
/// receive per-delta broadcasts.
#[derive(Debug)]
struct SubscriberSlot {
    name: String,
    feed: Vec<SubDelta>,
    /// Push outboxes attached to this subscription (e.g. network
    /// connections); pruned when the consumer drops its `Arc`.
    sinks: Vec<Weak<DeltaSink>>,
}

impl SubscriberSlot {
    /// Delivers one emitted delta: one encode-once [`FrameCache`] is
    /// created per (slot, delta) and shared by every attached sink —
    /// the pushed frame embeds the subscription name, so connections
    /// watching the same name broadcast identical bytes.
    fn deliver(&mut self, delta: &SubDelta, capacity: usize) {
        let cache = FrameCache::default();
        self.sinks.retain(|w| match w.upgrade() {
            Some(sink) => {
                sink.push(&self.name, delta, &cache);
                true
            }
            None => false,
        });
        self.feed.push(delta.clone());
        // Converge to the bound even when it was lowered mid-flight
        // (`store feed-bound <n>`): squash oldest pairs until within it.
        while self.feed.len() > capacity && self.feed.len() >= 2 {
            let second = self.feed.remove(1);
            self.feed[0] = self.feed[0].then(&second);
        }
    }
}

/// One shared maintained computation plus its subscriber slots. The
/// registry's `shares` map owns one of these per distinct [`ShareKey`];
/// every [`SubState`] holds an `Arc` to its share.
#[derive(Debug)]
struct SharedSub {
    /// Registry-unique id (never reused) — the share's key in the
    /// [`SubscriptionIndex`].
    id: u64,
    key: ShareKey,
    core: Mutex<ShareCore>,
}

/// One registered standing query: the thin per-name record. The
/// maintained state lives in the [`SharedSub`]; the per-subscription
/// query is kept for render-side semantics (quantifier/target) and the
/// `SHOW SUBSCRIPTIONS` statement surface.
#[derive(Debug)]
struct SubState {
    name: String,
    query: Query,
    share: Arc<SharedSub>,
}

/// The maintained state of one shared computation — the engine, carry
/// proofs, answer, stats, and the subscriber slots the answer's deltas
/// broadcast to. Guarded by the share's mutex; maintenance of one share
/// serializes on it, so concurrent commits apply their updates in
/// commit order.
#[derive(Debug)]
struct ShareCore {
    oid: Oid,
    window: TimeInterval,
    kind: SubKind,
    policy: PrefilterPolicy,
    /// Probe count of this share's rows (fixed at registration; part of
    /// the row-set shape).
    samples: u32,
    /// The statement threshold the adaptive kernel aims refinement at
    /// (part of the share key).
    threshold: f64,
    last_epoch: u64,
    /// The forward engine the current answer was computed with — the
    /// carried preprocessing the skip/patch paths reuse. `None` while
    /// parked on an evaluation error (and always for reverse kinds).
    engine: Option<Arc<QueryEngine>>,
    /// The reverse engine (perspective envelopes) of a
    /// [`SubKind::ReverseRows`] subscription.
    rev: Option<Arc<ReverseNnEngine>>,
    /// The query trajectory's content as of `last_epoch` (any op touching
    /// it forces a rebuild, so between rebuilds this equals the live
    /// content). Cached so the skip path needs no snapshot at all.
    query_tr: Option<Trajectory>,
    /// The skip-proof bounds derived from `engine` — cached so a burst
    /// of far commits pays one derivation, invalidated whenever the
    /// engine is replaced.
    proof: Option<ForwardProof>,
    /// Per-perspective proof bounds of a reverse subscription, keyed by
    /// perspective object; an entry is dropped whenever its perspective
    /// engine is replaced (and lazily re-derived from the then-current
    /// snapshot, sound because only provably untouched perspectives are
    /// ever proven against).
    rev_proofs: HashMap<Oid, ForwardProof>,
    /// The convolved difference-pdf model of the MOD's shared location
    /// model, memoized by kind (row subscriptions only; re-fetched from
    /// the store-wide cache when the MOD's registered pdf kind changes,
    /// which forces every column dirty anyway since it requires
    /// replacing the objects).
    model: Option<(PdfKind, DifferenceModel)>,
    answer: SubAnswer,
    /// The subscriber views this share's deltas broadcast to (one per
    /// registered name on this key).
    slots: Vec<SubscriberSlot>,
    error: Option<String>,
    /// Maintenance counters of the *share* — the work one maintenance
    /// round does regardless of how many subscribers ride it.
    stats: SubscriptionStats,
    /// The *completed*-round watermark this share is reconciled with:
    /// completed rounds in `(rounds_absorbed, completed]` did not visit
    /// the share (the index pruned them), and materialize as
    /// `skipped_unvisited` lazily — folded into `stats` at the next
    /// visit, and added on top at every info read. A round that visits
    /// this share absorbs its own number here at *finish* time, under
    /// the registry's finish lock and before the round counter
    /// advances — so a reader that observes the counter covering a
    /// round also observes the round absorbed, and a visit is never
    /// re-counted as a prune. That ordering is what makes
    /// `visited + skipped_unvisited <= commits` hold at every instant.
    /// Keeping the unvisited path write-free is the whole point of the
    /// index.
    rounds_absorbed: u64,
}

impl SubState {
    fn info(&self, rounds: u64) -> SubscriptionInfo {
        let core = self.share.core.lock().unwrap();
        self.info_from(&core, rounds)
    }

    /// The info row against an already-locked core (avoids re-locking
    /// when the caller holds it). `rounds` is the registry's completed
    /// round counter: index-pruned rounds never touch the core, so
    /// their `skipped_unvisited` tally materializes here, at read time,
    /// from the gap between the counter and the core's reconciliation
    /// watermark.
    fn info_from(&self, core: &ShareCore, rounds: u64) -> SubscriptionInfo {
        let mut stats = core.stats;
        stats.skipped_unvisited += rounds.saturating_sub(core.rounds_absorbed);
        SubscriptionInfo {
            name: self.name.clone(),
            statement: self.query.to_string(),
            last_epoch: core.last_epoch,
            entries: core.answer.len(),
            pending_deltas: core
                .slot(&self.name)
                .map(|s| s.feed.len())
                .unwrap_or_default(),
            error: core.error.clone(),
            stats,
        }
    }
}

impl ShareCore {
    /// A freshly registered, not-yet-evaluated core with the empty
    /// answer of its representation.
    fn new(key: &ShareKey) -> ShareCore {
        let window = TimeInterval::new(f64::from_bits(key.window.0), f64::from_bits(key.window.1));
        ShareCore {
            oid: key.oid,
            window,
            kind: key.kind,
            policy: key.policy,
            samples: key.samples,
            threshold: f64::from_bits(key.threshold),
            last_epoch: 0,
            engine: None,
            rev: None,
            query_tr: None,
            proof: None,
            rev_proofs: HashMap::new(),
            model: None,
            answer: empty_answer_of(key.kind, key.oid, window, key.samples),
            slots: Vec::new(),
            error: None,
            stats: SubscriptionStats::default(),
            rounds_absorbed: 0,
        }
    }

    /// The named subscriber's slot.
    fn slot(&self, name: &str) -> Option<&SubscriberSlot> {
        self.slots.iter().find(|s| s.name == name)
    }

    /// The named subscriber's slot, mutably.
    fn slot_mut(&mut self, name: &str) -> Option<&mut SubscriberSlot> {
        self.slots.iter_mut().find(|s| s.name == name)
    }

    /// The empty answer of this share's representation.
    fn empty_answer(&self) -> SubAnswer {
        empty_answer_of(self.kind, self.oid, self.window, self.samples)
    }

    /// Broadcasts an emitted delta to every subscriber slot: each slot
    /// appends it to its pull feed (squashing the oldest pair past
    /// `capacity`) and forwards it to its live push sinks under one
    /// per-slot encode-once cache.
    fn push_feed(&mut self, delta: SubDelta, capacity: usize) {
        for slot in &mut self.slots {
            slot.deliver(&delta, capacity);
        }
    }

    /// Installs a freshly evaluated answer, emitting its delta. The
    /// carried preprocessing (`engine` / `rev` / `query_tr` / proofs) is
    /// assigned by the caller beforehand.
    fn commit_answer(&mut self, answer: SubAnswer, epoch: u64, feed_capacity: usize) {
        let delta = self.answer.diff_to(&answer, epoch);
        if !delta.is_empty() {
            self.push_feed(delta, feed_capacity);
        }
        self.answer = answer;
        self.error = None;
        self.last_epoch = epoch;
    }

    /// Parks the subscription on an evaluation error: the answer empties
    /// (emitting the removals) until a later epoch evaluates again.
    fn park(&mut self, epoch: u64, message: String, feed_capacity: usize) {
        let empty = self.empty_answer();
        let delta = self.answer.diff_to(&empty, epoch);
        if !delta.is_empty() {
            self.push_feed(delta, feed_capacity);
        }
        self.answer = empty;
        self.engine = None;
        self.rev = None;
        self.query_tr = None;
        self.proof = None;
        self.rev_proofs.clear();
        self.error = Some(message);
        self.last_epoch = epoch;
    }

    /// The convolved difference-pdf model of the MOD's shared location
    /// model, served from the store-wide cache
    /// ([`ModStore::difference_model`]) and memoized here by kind so a
    /// maintenance round holding a shard lock does not touch the shared
    /// cache mutex while the registered kind is unchanged.
    fn ensure_model(
        &mut self,
        store: &ModStore,
        snapshot: &QuerySnapshot,
    ) -> Result<DifferenceModel, String> {
        let kind = common_pdf_kind(snapshot)
            .map_err(|_| "trajectories have differing location pdfs".to_string())?
            .ok_or_else(|| "the MOD needs at least two trajectories".to_string())?;
        if let Some((cached_kind, model)) = &self.model {
            if *cached_kind == kind {
                return Ok(model.clone());
            }
        }
        let model = store.difference_model(&kind);
        self.model = Some((kind, model.clone()));
        Ok(model)
    }

    /// The probability kernel one maintenance round evaluates its dirty
    /// probe columns with: the store-cached profile, plus the adaptive
    /// coarse-then-refine ladder aimed at this subscription's threshold
    /// (inert at tolerance 0 — every column runs full density,
    /// bit-identical to the one-shot sweeps).
    fn row_kernel(&self, model: &DifferenceModel, tolerance: f64) -> ColumnKernel {
        ColumnKernel::from_profile(Arc::clone(&model.profile)).adaptive(tolerance, self.threshold)
    }

    /// Folds a drained kernel's refinement counters into the stats row.
    fn absorb_kernel_counters(&mut self, kernel: &ColumnKernel) {
        let (refined, coarse_only) = kernel.take_counters();
        self.stats.columns_refined += refined;
        self.stats.columns_coarse_only += coarse_only;
    }
}

/// The delta ops shared by one cheap-pass, keyed by base epoch: the
/// cloned records (filtered to the sync watermark) and the set of ids
/// they touch. `None` when the log is truncated past the base.
type SharedOps = BTreeMap<u64, Option<Arc<(Vec<DeltaRecord>, BTreeSet<Oid>)>>>;

/// One share's published guard in the [`SubscriptionIndex`].
#[derive(Debug)]
struct GuardEntry {
    share: Weak<SharedSub>,
    /// `core.last_epoch` at publication — every op at or before it is
    /// absorbed by the share's answer, so only newer publications may
    /// replace the entry (concurrent rounds race benignly).
    valid_through: u64,
    /// The insertion guard: [`ForwardProof::guard_box`], installed in
    /// the grid. `None` while the share is always-visit (reverse kinds,
    /// parked shares, no derivable proof).
    gbox: Option<Aabb3>,
    /// The removal guard: [`ForwardProof::guarded_oids`], linked into
    /// the inverted oid map. Empty while always-visit.
    oids: Vec<Oid>,
}

/// A share's staged guard-box edits since the grid was last patched:
/// the box that sat in the grid when the first edit of the cycle
/// landed, and the box after the latest one. Canonicalizing per share
/// keeps [`GridIndex::apply_delta`]'s removed/inserted sets exact no
/// matter how many times a guard republished between lookups.
#[derive(Debug, Clone, Copy)]
struct PendingBoxes {
    old: Option<Aabb3>,
    new: Option<Aabb3>,
}

/// The publication-style index over the registered shares — the
/// subscription side of the paper's spatio-temporal filter, inverted.
/// Each share's [`ForwardProof`] publishes a guard here: the query
/// corridor box inflated by the envelope-max reach (spatial insertion
/// guard, kept in a [`GridIndex`] keyed by share id) and the
/// candidate/query ids (removal guard, kept in an inverted oid map).
/// A maintenance round then looks up only the shares a commit's ops
/// can possibly affect — an op hitting neither a guard box nor a
/// guarded id satisfies the respective [`ForwardProof`] obligation for
/// every unlisted share, so those shares are skipped *without being
/// touched*: no lock, no proof check, `O(affected)` instead of
/// `O(registered)`.
///
/// Guarded by one mutex, last in the registry's lock hierarchy (a core
/// lock may be held while taking it, never the reverse).
#[derive(Debug, Default)]
struct SubscriptionIndex {
    entries: HashMap<u64, GuardEntry>,
    /// Shares visited on every round: reverse kinds (every op adds,
    /// drops, or touches a perspective), parked shares, and shares
    /// whose proof is not derivable. Kept as a set so a lookup is
    /// `O(always + hits)`, not `O(entries)`.
    always: BTreeSet<u64>,
    /// Inverted removal guard: object id → shares whose proof cannot
    /// clear a mutation of that object.
    by_oid: HashMap<Oid, BTreeSet<u64>>,
    /// The spatial grid over the installed guard boxes, patched (or
    /// rebuilt, after bulk churn) lazily at lookup time from `pending`.
    grid: Option<GridIndex>,
    pending: HashMap<u64, PendingBoxes>,
    /// Every logged op at or before this epoch is accounted for: either
    /// absorbed by its share (`valid_through` covers it) or proven safe
    /// against the share's guard when a round's visit set was decided.
    checked_through: u64,
    /// Set by the sequential ablation sweep, which bypasses the index
    /// and advances share watermarks behind its back: the next indexed
    /// round visits everything and republishes.
    stale: bool,
}

impl SubscriptionIndex {
    /// Registers a share as always-visit; its first
    /// [`SubscriptionIndex::set_guard`] publication refines it.
    fn insert(&mut self, id: u64, share: Weak<SharedSub>) {
        self.entries.insert(
            id,
            GuardEntry {
                share,
                valid_through: 0,
                gbox: None,
                oids: Vec::new(),
            },
        );
        self.always.insert(id);
    }

    /// Publishes a visited share's guard (`None` = always-visit),
    /// stamped with the core watermark it was derived at. A no-op for
    /// unregistered ids — a sync racing an unregistration must not
    /// resurrect the entry — and for stale stamps.
    fn set_guard(&mut self, id: u64, guard: Option<(Aabb3, Vec<Oid>)>, valid_through: u64) {
        let Some(entry) = self.entries.get_mut(&id) else {
            return;
        };
        if valid_through < entry.valid_through {
            return;
        }
        entry.valid_through = valid_through;
        let (new_box, new_oids) = match guard {
            Some((b, oids)) => (Some(b), oids),
            None => (None, Vec::new()),
        };
        let old_box = std::mem::replace(&mut entry.gbox, new_box);
        let old_oids = std::mem::replace(&mut entry.oids, new_oids);
        for oid in &old_oids {
            if let Some(set) = self.by_oid.get_mut(oid) {
                set.remove(&id);
                if set.is_empty() {
                    self.by_oid.remove(oid);
                }
            }
        }
        // Re-borrow: the new oids now live on the entry.
        let entry = &self.entries[&id];
        for oid in &entry.oids {
            self.by_oid.entry(*oid).or_default().insert(id);
        }
        if new_box.is_some() {
            self.always.remove(&id);
        } else {
            self.always.insert(id);
        }
        let staged = self.pending.entry(id).or_insert(PendingBoxes {
            old: old_box,
            new: None,
        });
        staged.new = new_box;
    }

    /// Drops an unregistered share's entry and staged grid removal.
    fn remove(&mut self, id: u64) {
        let Some(entry) = self.entries.remove(&id) else {
            return;
        };
        for oid in &entry.oids {
            if let Some(set) = self.by_oid.get_mut(oid) {
                set.remove(&id);
                if set.is_empty() {
                    self.by_oid.remove(oid);
                }
            }
        }
        self.always.remove(&id);
        let staged = self.pending.entry(id).or_insert(PendingBoxes {
            old: entry.gbox,
            new: None,
        });
        staged.new = None;
    }

    /// Brings the grid up to date with the staged guard edits: one
    /// [`GridIndex::apply_delta`] batch normally, a full rebuild after
    /// bulk churn (registration bursts, extent drift) or on first use.
    fn flush_grid(&mut self) {
        let patchable = match &self.grid {
            Some(g) => self.pending.len() <= g.entry_count() / 4 + 16,
            None => false,
        };
        if patchable {
            let mut inserts: Vec<(Aabb3, Oid)> = Vec::new();
            let mut removed: HashSet<Oid> = HashSet::new();
            let mut removed_boxes: Vec<(Aabb3, Oid)> = Vec::new();
            for (&id, staged) in &self.pending {
                if let Some(b) = staged.old {
                    removed.insert(Oid(id));
                    removed_boxes.push((b, Oid(id)));
                }
                if let Some(b) = staged.new {
                    inserts.push((b, Oid(id)));
                }
            }
            if !inserts.is_empty() || !removed.is_empty() {
                let g = self.grid.as_ref().expect("patchable implies a grid");
                self.grid = Some(g.apply_delta(&inserts, &removed, &removed_boxes));
            }
        } else {
            let items: Vec<(Aabb3, Oid)> = self
                .entries
                .iter()
                .filter_map(|(&id, e)| e.gbox.map(|b| (b, Oid(id))))
                .collect();
            let target = items.len().max(16);
            self.grid = Some(GridIndex::build(items, target));
        }
        self.pending.clear();
    }

    /// The ids of every share `ops` can possibly affect: spatial grid
    /// hits of the inserted trajectories' (flattened) boxes, inverted
    /// oid-map hits of every touched id, plus the always-visit set.
    /// Everything else is provably safe under its published guard.
    fn lookup(&mut self, ops: &[DeltaRecord]) -> BTreeSet<u64> {
        self.flush_grid();
        let grid = self.grid.as_ref().expect("flushed");
        let mut hits: BTreeSet<u64> = self.always.clone();
        let mut touched: BTreeSet<Oid> = BTreeSet::new();
        for rec in ops {
            match &rec.op {
                DeltaOp::Insert(tr) => {
                    touched.insert(tr.oid());
                    let b = full_xy_box(tr.trajectory());
                    let flat = Aabb3 {
                        min: [b.min[0], b.min[1], 0.0],
                        max: [b.max[0], b.max[1], 0.0],
                    };
                    hits.extend(grid.query_bbox(&flat).into_iter().map(|oid| oid.0));
                }
                DeltaOp::Remove(oid) => {
                    touched.insert(*oid);
                }
            }
        }
        for oid in touched {
            if let Some(ids) = self.by_oid.get(&oid) {
                hits.extend(ids.iter().copied());
            }
        }
        hits
    }

    /// Upgrades a visit set to live shares.
    fn resolve(&self, ids: BTreeSet<u64>) -> Vec<(u64, Arc<SharedSub>)> {
        ids.into_iter()
            .filter_map(|id| {
                self.entries
                    .get(&id)
                    .and_then(|e| e.share.upgrade())
                    .map(|share| (id, share))
            })
            .collect()
    }

    /// Every live share — the visit set of a stale or truncated round.
    fn all_shares(&self) -> Vec<(u64, Arc<SharedSub>)> {
        self.entries
            .iter()
            .filter_map(|(&id, e)| e.share.upgrade().map(|share| (id, share)))
            .collect()
    }
}

/// The registry of standing queries attached to a store. Names live in
/// name-hashed shards (cheap lookup/registration); the maintained
/// computations live in the `shares` map, deduplicated by `ShareKey`
/// — `sync` runs **one maintenance round per share**, however many
/// subscriptions ride it. All methods are thread-safe; maintenance of
/// one share serializes on its core mutex, so concurrent mutations
/// apply their updates in commit order.
///
/// Lock hierarchy (acquire left to right, release in any order): name
/// shard → `shares` map → share core → subscription index. `sync`
/// touches only the last three, so registration bursts on one shard
/// never stall maintenance.
///
/// Registering a standing query, receiving its pushed delta through a
/// [`DeltaSink`], and folding it back onto the base answer:
///
/// ```
/// use std::sync::Arc;
/// use unn_modb::ql::parser::parse;
/// use unn_modb::store::ModStore;
/// use unn_modb::subscription::{DeltaSink, SubscriptionRegistry};
/// use unn_modb::PrefilterPolicy;
/// use unn_traj::trajectory::{Oid, Trajectory};
/// use unn_traj::uncertain::UncertainTrajectory;
///
/// fn tr(oid: u64, y: f64) -> UncertainTrajectory {
///     UncertainTrajectory::with_uniform_pdf(
///         Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (10.0, y, 60.0)]).unwrap(),
///         0.5,
///     )
///     .unwrap()
/// }
///
/// let store = ModStore::new();
/// store.bulk_load(vec![tr(0, 0.0), tr(1, 1.0)]).unwrap();
/// let registry = Arc::new(SubscriptionRegistry::new());
/// store.attach_subscriptions(&registry);
///
/// let query =
///     parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0")
///         .unwrap();
/// registry
///     .register(&store, "near0", query, PrefilterPolicy::default())
///     .unwrap();
///
/// // A network connection's outbox; here drained in-process.
/// let sink = Arc::new(DeltaSink::bounded(8));
/// assert!(registry.attach_sink("near0", &sink));
///
/// let base = registry.answer("near0").unwrap();
/// store.insert(tr(7, 0.4)).unwrap(); // maintenance runs on commit
///
/// let event = sink.try_recv().expect("delta pushed");
/// assert_eq!(event.subscription, "near0");
/// // Folding the pushed delta reproduces the maintained answer exactly.
/// assert_eq!(base.apply(&event.delta), registry.answer("near0").unwrap());
/// ```
#[derive(Debug)]
pub struct SubscriptionRegistry {
    shards: Vec<Mutex<BTreeMap<String, SubState>>>,
    /// The deduplicated maintained computations, keyed by share
    /// identity. A share is inserted by the first registration on its
    /// key and removed when its last subscriber unregisters.
    shares: Mutex<HashMap<ShareKey, Arc<SharedSub>>>,
    sequential: AtomicBool,
    /// `false` switches new registrations to exclusive (per-name) share
    /// keys — the one-engine-per-subscription ablation baseline.
    sharing: AtomicBool,
    row_samples: std::sync::atomic::AtomicU32,
    /// Adaptive-refinement tolerance of row maintenance, stored as the
    /// `f64` bit pattern (same idiom as the store's rebuild fraction).
    row_tolerance: std::sync::atomic::AtomicU64,
    /// The publication-style guard index the sharded sync prunes its
    /// visit set with (see [`SubscriptionIndex`]).
    index: Mutex<SubscriptionIndex>,
    /// Indexed maintenance rounds **completed** so far — the clock
    /// `skipped_unvisited` reconciles against (see
    /// [`ShareCore::rounds_absorbed`]). Advanced only in
    /// [`Self::finish_round`], under [`Self::round_finish`].
    sync_rounds: AtomicU64,
    /// Serializes round completion: a finishing round must assign its
    /// round number and absorb it into every share it visited as one
    /// atomic step, or a concurrent finisher could steal the number and
    /// the stolen slot would later be mis-counted as a pruned round
    /// (an observable `visited + skipped_unvisited > commits`).
    /// Lock order: `round_finish` → `core`; never taken with a core
    /// lock held.
    round_finish: Mutex<()>,
    /// Share-id mint ([`SharedSub::id`]); ids are never reused.
    next_share_id: AtomicU64,
}

impl Default for SubscriptionRegistry {
    fn default() -> Self {
        SubscriptionRegistry {
            shards: (0..REGISTRY_SHARDS).map(|_| Mutex::default()).collect(),
            shares: Mutex::new(HashMap::new()),
            sequential: AtomicBool::new(false),
            sharing: AtomicBool::new(true),
            row_samples: std::sync::atomic::AtomicU32::new(PROB_ROW_SAMPLES),
            row_tolerance: std::sync::atomic::AtomicU64::new(0),
            index: Mutex::new(SubscriptionIndex::default()),
            sync_rounds: AtomicU64::new(0),
            round_finish: Mutex::new(()),
            next_share_id: AtomicU64::new(0),
        }
    }
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SubscriptionRegistry::default()
    }

    /// FNV-1a over the name, folded onto the shard count.
    fn shard_of(&self, name: &str) -> &Mutex<BTreeMap<String, SubState>> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().unwrap().is_empty())
    }

    /// The active [`SyncMode`].
    pub fn sync_mode(&self) -> SyncMode {
        if self.sequential.load(Ordering::Relaxed) {
            SyncMode::Sequential
        } else {
            SyncMode::Sharded
        }
    }

    /// Switches between the sharded two-phase sync and the sequential
    /// ablation baseline (answers are identical either way; only the
    /// maintenance cost differs).
    pub fn set_sync_mode(&self, mode: SyncMode) {
        self.sequential
            .store(mode == SyncMode::Sequential, Ordering::Relaxed);
    }

    /// `true` while cross-subscription engine sharing is enabled (the
    /// default).
    pub fn engine_sharing(&self) -> bool {
        self.sharing.load(Ordering::Relaxed)
    }

    /// Enables/disables cross-subscription engine sharing for **future**
    /// registrations (existing subscriptions keep their share). With
    /// sharing off, every registration gets an exclusive engine and its
    /// own maintenance round — the pre-sharing ablation baseline the
    /// `fanout` bench compares against. Answers are identical either
    /// way; only the maintenance and registration cost differ.
    pub fn set_engine_sharing(&self, enabled: bool) {
        self.sharing.store(enabled, Ordering::Relaxed);
    }

    /// Number of distinct maintained computations (shares). With
    /// sharing enabled, `share_count() < len()` whenever subscriptions
    /// coalesced onto one engine.
    pub fn share_count(&self) -> usize {
        self.shares.lock().unwrap().len()
    }

    /// The probe count newly registered row subscriptions sample their
    /// window at.
    pub fn row_samples(&self) -> u32 {
        self.row_samples.load(Ordering::Relaxed)
    }

    /// Sets the probe count for **future** row registrations (minimum
    /// 1; default [`PROB_ROW_SAMPLES`]). Existing subscriptions keep
    /// the density they were registered with — the sample count is part
    /// of their row-set shape. Denser sampling sharpens the threshold
    /// fractions; sparser sampling cuts the per-patch `P^WD` quadrature
    /// cost proportionally.
    pub fn set_row_samples(&self, samples: u32) {
        self.row_samples.store(samples.max(1), Ordering::Relaxed);
    }

    /// The adaptive-refinement tolerance row maintenance runs at
    /// (default 0 = disabled: every dirty probe column is evaluated at
    /// full quadrature density).
    pub fn row_tolerance(&self) -> f64 {
        f64::from_bits(self.row_tolerance.load(Ordering::Relaxed))
    }

    /// Sets the adaptive tolerance for row maintenance (non-finite or
    /// negative values clamp to 0 = disabled). At 0 — the default —
    /// maintained rows stay bit-identical to a fresh full-density
    /// evaluation. A positive tolerance lets a maintenance round settle
    /// a dirty probe column at coarse quadrature density when the
    /// coarse/check disagreement is within the tolerance **and** the
    /// estimate sits farther than that error bound from the
    /// subscription's threshold `p`; only columns straddling the
    /// threshold pay full density
    /// ([`SubscriptionStats::columns_refined`] /
    /// [`SubscriptionStats::columns_coarse_only`] count the split).
    /// Unlike [`SubscriptionRegistry::set_row_samples`] this applies to
    /// **existing** subscriptions from their next maintenance round —
    /// the tolerance shapes per-column evaluation cost, not the row-set
    /// shape.
    pub fn set_row_tolerance(&self, tolerance: f64) {
        let clamped = if tolerance.is_finite() && tolerance > 0.0 {
            tolerance
        } else {
            0.0
        };
        self.row_tolerance
            .store(clamped.to_bits(), Ordering::Relaxed);
    }

    /// The registered name closest to `name` by Levenshtein distance,
    /// when one is near enough (distance ≤ max(2, |name| / 3)) to
    /// plausibly be a typo — the `UNREGISTER` / `sub drop` hint.
    pub fn nearest_name(&self, name: &str) -> Option<String> {
        let budget = (name.chars().count() / 3).max(2);
        let mut best: Option<(usize, String)> = None;
        for shard in &self.shards {
            for candidate in shard.lock().unwrap().keys() {
                if candidate == name {
                    continue;
                }
                let d = levenshtein(name, candidate);
                if d <= budget && best.as_ref().map(|(bd, _)| d < *bd).unwrap_or(true) {
                    best = Some((d, candidate.clone()));
                }
            }
        }
        best.map(|(_, n)| n)
    }

    /// Registers `query` as a standing query named `name`, evaluating it
    /// once against the store's current snapshot.
    ///
    /// Three statement shapes are maintainable: forward `PROB_NN(…) > 0`
    /// (any category, optional `RANK`) through the interval ladder, and
    /// threshold `PROB_NN(…) > p` / reverse `PROB_RNN(…)` statements
    /// through the probability-row ladder. The one remaining refusal —
    /// a `RANK` bound combined with a positive threshold — carries the
    /// offending token's span so callers can render a caret.
    pub fn register(
        &self,
        store: &ModStore,
        name: &str,
        query: Query,
        policy: PrefilterPolicy,
    ) -> Result<SubscriptionInfo, SubscriptionError> {
        self.register_with_sink(store, name, query, policy, None)
    }

    /// [`SubscriptionRegistry::register`] with a push outbox attached
    /// **atomically**: the sink is wired up under the same locks that
    /// install the subscription, so no commit can slip between
    /// registration and attachment — the first pushed delta is the first
    /// answer change after the returned info's epoch, guaranteed. (An
    /// [`SubscriptionRegistry::attach_sink`] after the fact has a window
    /// in which a delta reaches only the pull feed.)
    ///
    /// When a share with the same `ShareKey` already exists — same
    /// query object, window, ladder kind, policy, sampling, and
    /// threshold — the registration attaches a subscriber slot to it in
    /// `O(1)` instead of evaluating anything: thousands of subscriptions
    /// on one query object/window cost one engine and one maintenance
    /// round per commit. A reverse share's `O(N²)` perspective build is
    /// likewise paid once per key, not once per subscription.
    pub fn register_with_sink(
        &self,
        store: &ModStore,
        name: &str,
        query: Query,
        policy: PrefilterPolicy,
        sink: Option<&Arc<DeltaSink>>,
    ) -> Result<SubscriptionInfo, SubscriptionError> {
        let kind = match (query.predicate, query.prob_threshold > 0.0, query.rank) {
            (PredicateKind::Nn, true, Some(_)) => {
                return Err(SubscriptionError::Unsupported {
                    message: "RANK-bounded threshold standing queries are not supported \
                              (drop the RANK bound or the positive threshold; incremental \
                              rank maintenance is an open ROADMAP item)"
                        .to_string(),
                    span: Some(query.spans.rank),
                })
            }
            (PredicateKind::Nn, false, rank) => SubKind::Intervals { rank },
            (PredicateKind::Nn, true, None) => SubKind::ForwardRows,
            // The parser rejects RANK on PROB_RNN, so `rank` is None.
            (PredicateKind::Rnn, _, _) => SubKind::ReverseRows,
        };
        let oid = parse_object_name(&query.query_object).ok_or_else(|| {
            SubscriptionError::Evaluation(format!(
                "cannot resolve query object '{}'",
                query.query_object
            ))
        })?;
        let window = TimeInterval::try_new(query.window.0, query.window.1).ok_or_else(|| {
            SubscriptionError::Evaluation(format!(
                "invalid window [{}, {}]",
                query.window.0, query.window.1
            ))
        })?;
        let key = ShareKey {
            oid,
            window: (window.start().to_bits(), window.end().to_bits()),
            kind,
            policy,
            samples: self.row_samples(),
            threshold: query.prob_threshold.to_bits(),
            exclusive: (!self.engine_sharing()).then(|| name.to_string()),
        };
        let tolerance = self.row_tolerance();
        loop {
            // Racy duplicate pre-check (re-checked under the lock
            // below): fail fast before paying an evaluation.
            if self.shard_of(name).lock().unwrap().contains_key(name) {
                return Err(SubscriptionError::NameTaken(name.to_string()));
            }
            // Evaluate a fresh core WITHOUT any registry lock when no
            // share exists yet: a reverse registration's O(N² · samples)
            // build must not stall maintenance (every commit's sync
            // serializes on the share cores).
            let prebuilt = if self.shares.lock().unwrap().contains_key(&key) {
                None
            } else {
                let snapshot = store.snapshot();
                let mut core = ShareCore::new(&key);
                core.last_epoch = snapshot.epoch();
                Self::evaluate_into(&mut core, store, &snapshot, usize::MAX, tolerance)
                    .map_err(SubscriptionError::Evaluation)?;
                Some(core)
            };
            let mut map = self.shard_of(name).lock().unwrap();
            if map.contains_key(name) {
                return Err(SubscriptionError::NameTaken(name.to_string()));
            }
            let mut shares = self.shares.lock().unwrap();
            let (share, fresh) = match (shares.get(&key), prebuilt) {
                (Some(existing), _) => (Arc::clone(existing), false),
                (None, Some(core)) => {
                    let share = Arc::new(SharedSub {
                        id: self.next_share_id.fetch_add(1, Ordering::Relaxed) + 1,
                        key: key.clone(),
                        core: Mutex::new(core),
                    });
                    shares.insert(key.clone(), Arc::clone(&share));
                    // Join the guard index as always-visit *before* any
                    // commit can decide a visit set without us; the
                    // catch-up below then publishes the real guard.
                    self.index
                        .lock()
                        .unwrap()
                        .insert(share.id, Arc::downgrade(&share));
                    (share, true)
                }
                // The share we planned to join was unregistered while we
                // took the locks: retry (and evaluate ourselves).
                (None, None) => continue,
            };
            let mut core = share.core.lock().unwrap();
            // Commits that landed during the unlocked evaluation ran
            // their maintenance without this share (and an existing
            // share may be mid-burst, or the store mid-batch under a
            // maintenance window): catch up under the lock (a no-op
            // when already current; the ladder reconciles from the
            // delta log, rebuilding if it was truncated), so the
            // installed answer is current and every later commit's
            // delta reaches the new slot.
            let mut lazy = None;
            // Like the guard catch-up inside `publish_guard`, this
            // reconciliation is not an observable maintenance round:
            // the commits it absorbs are already booked to the rounds
            // that claimed them (as visits on this share or as the
            // pruned-round fold just below), so its ladder movement
            // stays out of the rider-visible stats.
            let saved = core.stats;
            Self::refresh(
                &mut core,
                store,
                &mut lazy,
                store.feed_bound(),
                true,
                tolerance,
            );
            self.publish_guard(
                share.id,
                &mut core,
                store,
                &mut lazy,
                store.feed_bound(),
                tolerance,
            );
            core.stats = saved;
            let rounds = self.sync_rounds.load(Ordering::Acquire);
            core.stats.skipped_unvisited += rounds.saturating_sub(core.rounds_absorbed);
            core.rounds_absorbed = core.rounds_absorbed.max(rounds);
            if let Some(message) = core.error.clone() {
                if core.slots.is_empty() {
                    // A share no subscriber rides must not linger.
                    drop(core);
                    shares.remove(&key);
                    self.index.lock().unwrap().remove(share.id);
                }
                return Err(SubscriptionError::Evaluation(message));
            }
            if fresh {
                // The bootstrap evaluation/catch-up is the base answer,
                // not maintenance work the share's riders observed.
                core.stats = SubscriptionStats::default();
            }
            // The initial answer is the subscriber's base, not a
            // change: the slot starts with an empty feed, and the sink
            // attaches under the core lock, so the first pushed delta
            // is the first answer change after the returned epoch.
            core.slots.push(SubscriberSlot {
                name: name.to_string(),
                feed: Vec::new(),
                sinks: sink.into_iter().map(Arc::downgrade).collect(),
            });
            let sub = SubState {
                name: name.to_string(),
                query,
                share: Arc::clone(&share),
            };
            let info = sub.info_from(&core, self.sync_rounds.load(Ordering::Acquire));
            drop(core);
            map.insert(name.to_string(), sub);
            return Ok(info);
        }
    }

    /// Drops the named standing query. `true` when it existed. The
    /// share survives while other subscriptions ride it; the last
    /// unregistration drops the engine and its maintenance round.
    pub fn unregister(&self, name: &str) -> bool {
        let mut map = self.shard_of(name).lock().unwrap();
        let Some(sub) = map.remove(name) else {
            return false;
        };
        let mut shares = self.shares.lock().unwrap();
        let mut core = sub.share.core.lock().unwrap();
        core.slots.retain(|s| s.name != name);
        let orphaned = core.slots.is_empty();
        drop(core);
        if orphaned {
            shares.remove(&sub.share.key);
            self.index.lock().unwrap().remove(sub.share.id);
        }
        true
    }

    /// Drops the named standing query, or explains which registered
    /// name it was probably a typo for.
    pub fn unregister_checked(&self, name: &str) -> Result<(), SubscriptionError> {
        if self.unregister(name) {
            Ok(())
        } else {
            Err(SubscriptionError::unknown(name, self))
        }
    }

    /// Every subscription's state, ascending by name.
    pub fn list(&self) -> Vec<SubscriptionInfo> {
        let rounds = self.sync_rounds.load(Ordering::Acquire);
        let mut out: Vec<SubscriptionInfo> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .map(|sub| sub.info(rounds))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The named subscription's state.
    pub fn info(&self, name: &str) -> Option<SubscriptionInfo> {
        let rounds = self.sync_rounds.load(Ordering::Acquire);
        self.shard_of(name)
            .lock()
            .unwrap()
            .get(name)
            .map(|sub| sub.info(rounds))
    }

    /// The named subscription's current answer.
    pub fn answer(&self, name: &str) -> Option<SubAnswer> {
        self.shard_of(name)
            .lock()
            .unwrap()
            .get(name)
            .map(|s| s.share.core.lock().unwrap().answer.clone())
    }

    /// The named subscription's current answer together with the epoch
    /// it is current at, read atomically. Push consumers use the epoch
    /// to resync after a lagged stream: every already-buffered event
    /// with `delta.epoch <= epoch` is subsumed by this answer, and every
    /// later delta diffs from exactly this state.
    pub fn answer_with_epoch(&self, name: &str) -> Option<(SubAnswer, u64)> {
        self.shard_of(name).lock().unwrap().get(name).map(|s| {
            let core = s.share.core.lock().unwrap();
            (core.answer.clone(), core.last_epoch)
        })
    }

    /// The named subscription's current answer rendered through its own
    /// quantifier/target, like a one-shot execution of the statement.
    /// Subscriptions sharing one maintained answer render through their
    /// own statements here — the per-quantifier views of one engine.
    pub fn output(&self, name: &str) -> Option<QueryOutput> {
        self.shard_of(name).lock().unwrap().get(name).map(|s| {
            let core = s.share.core.lock().unwrap();
            match &core.answer {
                SubAnswer::Intervals(a) => render_output(&s.query, a),
                SubAnswer::Rows(r) => render_row_output(&s.query, r),
            }
        })
    }

    /// Drains the named subscription's change feed: every undrained
    /// [`SubDelta`] in epoch order. `None` for unknown names.
    pub fn drain(&self, name: &str) -> Option<Vec<SubDelta>> {
        self.shard_of(name).lock().unwrap().get(name).map(|s| {
            let mut core = s.share.core.lock().unwrap();
            core.slot_mut(name)
                .map(|slot| std::mem::take(&mut slot.feed))
                .unwrap_or_default()
        })
    }

    /// Attaches a push outbox to the named subscription: every future
    /// answer delta is forwarded into `sink` in addition to the pull
    /// feed. The registry holds only a weak reference — dropping the
    /// consumer's `Arc` detaches it. `false` for unknown names.
    pub fn attach_sink(&self, name: &str, sink: &Arc<DeltaSink>) -> bool {
        self.attach_sink_checked(name, sink).is_ok()
    }

    /// [`SubscriptionRegistry::attach_sink`] returning the
    /// subscription's info row (so the consumer knows the epoch its
    /// pushed stream starts after), or the typo-hinted unknown-name
    /// error — the `WATCH <name>` statement's registry entry point.
    /// Many connections watching one name share that slot's encode-once
    /// frame caches, so a pushed delta is serialized once for all of
    /// them.
    pub fn attach_sink_checked(
        &self,
        name: &str,
        sink: &Arc<DeltaSink>,
    ) -> Result<SubscriptionInfo, SubscriptionError> {
        let attached = {
            let map = self.shard_of(name).lock().unwrap();
            map.get(name).map(|sub| {
                let mut core = sub.share.core.lock().unwrap();
                core.slot_mut(name)
                    .expect("every registered name has a slot")
                    .sinks
                    .push(Arc::downgrade(sink));
                sub.info_from(&core, self.sync_rounds.load(Ordering::Acquire))
            })
        };
        // The unknown-name hint scans every shard; build it only after
        // releasing the looked-up shard's lock.
        attached.ok_or_else(|| SubscriptionError::unknown(name, self))
    }

    /// Brings every subscription up to the store's current epoch. Called
    /// by the store after each commit (the registry must be attached via
    /// [`ModStore::attach_subscriptions`]); also callable directly to
    /// re-sync a registry that was detached while mutations ran.
    ///
    /// Maintenance runs **once per share**, not per subscription: a
    /// thousand subscriptions on one query object/window are one
    /// skip/patch/rebuild round whose answer delta broadcasts to every
    /// slot. In the default sharded mode the round first consults the
    /// `SubscriptionIndex`: the commit's ops are looked up against
    /// every share's published guard, and only the hits are visited at
    /// all — everything else is `skipped_unvisited` without a lock, a
    /// proof check, or any write to its core. The store snapshot is
    /// materialized **lazily**: a commit whose delta every visited
    /// share provably skips costs only the per-share band-bound check —
    /// no snapshot refresh, no engine work, no thread spawned.
    pub fn sync(&self, store: &ModStore) {
        let feed_cap = store.feed_bound();
        let tolerance = self.row_tolerance();
        if self.sync_mode() == SyncMode::Sequential {
            // The pre-sharding baseline: one sequential sweep, each
            // share fetching its own ops and deriving its skip proof
            // from scratch. Bypasses the guard index entirely.
            let shares: Vec<Arc<SharedSub>> =
                self.shares.lock().unwrap().values().cloned().collect();
            if shares.is_empty() {
                return;
            }
            let rounds = self.sync_rounds.load(Ordering::Acquire);
            let mut lazy: Option<Arc<QuerySnapshot>> = None;
            let stats_on = telemetry::metrics_on() || telemetry::trace_on();
            for share in &shares {
                let mut core = share.core.lock().unwrap();
                // This sweep visits the share, so every indexed round
                // that pruned it is now in the past: fold the tally.
                core.stats.skipped_unvisited += rounds.saturating_sub(core.rounds_absorbed);
                core.rounds_absorbed = core.rounds_absorbed.max(rounds);
                let before = stats_on.then(|| core.stats);
                Self::refresh(&mut core, store, &mut lazy, feed_cap, false, tolerance);
                if let Some(before) = before {
                    Self::record_visit(store, share.id, store.epoch(), &before, &core.stats);
                }
            }
            // The sweep advanced watermarks (and possibly replaced
            // engines) behind the index's back: the next indexed round
            // must visit everything and republish the guards.
            self.index.lock().unwrap().stale = true;
            return;
        }
        let now = store.epoch();
        let round_started =
            (telemetry::metrics_on() || telemetry::trace_on()).then(std::time::Instant::now);
        // Decide the visit set atomically under the index lock: the ops
        // since the last accounted epoch either hit a published guard
        // (visit) or are proven safe for every other share right here.
        // `checked_through` advances in the same critical section, so a
        // concurrent round and a concurrent guard publication always
        // observe each other (see `publish_guard`).
        let visit: Vec<(u64, Arc<SharedSub>)> = {
            let mut idx = self.index.lock().unwrap();
            if idx.entries.is_empty() {
                return;
            }
            if idx.stale {
                // A sequential sweep ran since the last indexed round:
                // guards may be arbitrarily outdated. Visit everything
                // and republish.
                idx.stale = false;
                idx.checked_through = idx.checked_through.max(now);
                idx.all_shares()
            } else {
                match store.ops_since_cloned(idx.checked_through) {
                    Some(ops) => {
                        let ops: Vec<DeltaRecord> =
                            ops.into_iter().filter(|r| r.epoch <= now).collect();
                        if ops.is_empty() {
                            idx.checked_through = idx.checked_through.max(now);
                            return;
                        }
                        let hits = idx.lookup(&ops);
                        idx.checked_through = idx.checked_through.max(now);
                        idx.resolve(hits)
                    }
                    None => {
                        // Truncated history: the log cannot prove what
                        // happened since — every share reconciles (and
                        // rebuilds where its own watermark is also past
                        // the log's tail).
                        idx.checked_through = idx.checked_through.max(now);
                        idx.all_shares()
                    }
                }
            }
        };
        // Completed-round accounting. The round counter advances only
        // when a round *completes* (see `finish_round`), so a stats
        // reader can never count an in-flight round as pruned. A
        // visited share folds the completed rounds it was pruned from
        // here; this round absorbs itself into every visited share at
        // finish time, where the finish lock makes the round-number
        // assignment and the absorption one atomic step — so this
        // round's own outcome lands in skip/patch/rebuild via the
        // ladder, never in `skipped_unvisited`.
        let completed = self.sync_rounds.load(Ordering::Acquire);
        let stats_on = round_started.is_some();
        // Phase 1 — cheap pass: classify every visited share, sharing
        // the ops fetch and changed-id set per watermark across them.
        let mut shared: SharedOps = BTreeMap::new();
        let mut heavy: Vec<(u64, Arc<SharedSub>, Option<SubscriptionStats>)> = Vec::new();
        for (id, share) in &visit {
            let mut core = share.core.lock().unwrap();
            let before = stats_on.then(|| core.stats);
            // Fold the completed rounds the index pruned between
            // visits. Completed rounds that visited this share already
            // absorbed themselves, so the gap is exactly the prunes.
            core.stats.skipped_unvisited += completed.saturating_sub(core.rounds_absorbed);
            core.rounds_absorbed = core.rounds_absorbed.max(completed);
            let done = Self::try_cheap(&mut core, store, now, &mut shared);
            if done {
                self.publish_guard(*id, &mut core, store, &mut None, feed_cap, tolerance);
                if let Some(before) = before {
                    Self::record_visit(store, *id, now, &before, &core.stats);
                }
                drop(core);
            } else {
                drop(core);
                heavy.push((*id, Arc::clone(share), before));
            }
        }
        if heavy.is_empty() {
            self.finish_round(store, round_started, &visit, now);
            return;
        }
        // Phase 2 — heavy pass: the affected shares re-run the full
        // ladder (the cheap classification is rechecked against any ops
        // that raced in since), then republish their guards. One
        // snapshot is materialized up front and shared by every worker;
        // shares fan out across scoped threads on multi-core hosts.
        let snapshot = store.snapshot();
        let refresh_share = |entry: &(u64, Arc<SharedSub>, Option<SubscriptionStats>)| {
            let (id, share, before) = entry;
            let mut lazy = Some(Arc::clone(&snapshot));
            let mut core = share.core.lock().unwrap();
            Self::refresh(&mut core, store, &mut lazy, feed_cap, true, tolerance);
            self.publish_guard(*id, &mut core, store, &mut lazy, feed_cap, tolerance);
            if let Some(before) = before {
                Self::record_visit(store, *id, now, before, &core.stats);
            }
        };
        let cores = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        if cores <= 1 || heavy.len() <= 1 {
            heavy.iter().for_each(refresh_share);
        } else {
            // Strided hand-out: lane `l` refreshes shares l, l+lanes, …
            let lanes = cores.min(heavy.len());
            let refresh_share = &refresh_share;
            let heavy = &heavy;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..lanes)
                    .map(|lane| {
                        scope.spawn(move || {
                            for share in heavy.iter().skip(lane).step_by(lanes) {
                                refresh_share(share);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("subscription maintenance worker panicked");
                }
            });
        }
        self.finish_round(store, round_started, &visit, now);
    }

    /// Completes one indexed maintenance round: assigns the round its
    /// number, absorbs that number into every share the round visited,
    /// and only then publishes the advanced counter — all under
    /// `round_finish`, so no concurrent finisher can take the same
    /// number. Ordering is what keeps the partition observable-safe:
    /// a reader that sees the new counter value (acquire) also sees
    /// every visited share's watermark already covering it (the core
    /// mutex hands over the latest write), so a round this share
    /// visited is never re-counted as pruned; a reader that doesn't
    /// see the counter yet doesn't count the round at all.
    fn finish_round(
        &self,
        store: &ModStore,
        started: Option<std::time::Instant>,
        visited: &[(u64, Arc<SharedSub>)],
        epoch: u64,
    ) {
        {
            let _finish = self.round_finish.lock().unwrap();
            let finished = self.sync_rounds.load(Ordering::Relaxed) + 1;
            for (_, share) in visited {
                let mut core = share.core.lock().unwrap();
                core.rounds_absorbed = core.rounds_absorbed.max(finished);
            }
            self.sync_rounds.store(finished, Ordering::Release);
        }
        let visited_shares = visited.len() as u64;
        if let Some(t0) = started {
            let t = store.telemetry();
            let dur_ns = t0.elapsed().as_nanos() as u64;
            t.maintenance_rounds.inc();
            t.maintenance_round_ns.record(dur_ns);
            t.trace_event(TraceEvent {
                epoch,
                stage: TraceStage::Round,
                share: 0,
                detail: visited_shares,
                dur_ns,
            });
        }
    }

    /// Folds one visited share's stats movement into the telemetry
    /// registry: per-ladder-rung counters, kernel refinement counters,
    /// the lazily materialized unvisited tally, and (when tracing) a
    /// visit event naming the share and its ladder decision.
    fn record_visit(
        store: &ModStore,
        share: u64,
        epoch: u64,
        before: &SubscriptionStats,
        after: &SubscriptionStats,
    ) {
        let t = store.telemetry();
        t.ladder_skipped
            .add(after.skipped.saturating_sub(before.skipped));
        t.ladder_patched
            .add(after.patched.saturating_sub(before.patched));
        t.ladder_rebuilt
            .add(after.rebuilt.saturating_sub(before.rebuilt));
        t.ladder_unvisited.add(
            after
                .skipped_unvisited
                .saturating_sub(before.skipped_unvisited),
        );
        t.kernel_columns_refined
            .add(after.columns_refined.saturating_sub(before.columns_refined));
        t.kernel_columns_coarse.add(
            after
                .columns_coarse_only
                .saturating_sub(before.columns_coarse_only),
        );
        if telemetry::trace_on() {
            let detail = if after.rebuilt > before.rebuilt {
                telemetry::LADDER_REBUILT
            } else if after.patched > before.patched {
                telemetry::LADDER_PATCHED
            } else if after.skipped > before.skipped {
                telemetry::LADDER_SKIPPED
            } else {
                telemetry::LADDER_EMPTY
            };
            t.trace_event(TraceEvent {
                epoch,
                stage: TraceStage::Visit,
                share,
                detail,
                dur_ns: 0,
            });
        }
    }

    /// The guard a share's current state publishes to the index:
    /// `None` (always-visit) while parked, reverse, or proofless;
    /// otherwise the cached [`ForwardProof`]'s inflated corridor box
    /// plus its guarded object ids.
    fn guard_of(core: &mut ShareCore) -> Option<(Aabb3, Vec<Oid>)> {
        if core.error.is_some() || core.kind == SubKind::ReverseRows {
            return None;
        }
        if core.proof.is_none() {
            let engine = core.engine.as_ref()?;
            let query_tr = core.query_tr.as_ref()?;
            core.proof = Some(ForwardProof::derive(engine, query_tr));
        }
        let proof = core.proof.as_ref().expect("just derived");
        Some((proof.guard_box(), proof.guarded_oids().collect()))
    }

    /// Publishes a visited share's guard, closing the race with
    /// concurrent rounds: a round that decided its visit set after this
    /// share's previous publication proved its ops safe against the
    /// **previous** guard, so the new guard may only be installed once
    /// the core has absorbed everything up to the index's
    /// `checked_through`. The check-and-install is atomic under the
    /// index lock; when the core is behind, the lock is dropped and the
    /// core refreshed before retrying (each retry strictly advances the
    /// core's watermark to the then-current epoch, so the loop
    /// terminates as soon as rounds stop racing in).
    fn publish_guard(
        &self,
        id: u64,
        core: &mut ShareCore,
        store: &ModStore,
        lazy: &mut Option<Arc<QuerySnapshot>>,
        feed_cap: usize,
        tolerance: f64,
    ) {
        loop {
            let guard = Self::guard_of(core);
            let valid_through = core.last_epoch;
            let mut idx = self.index.lock().unwrap();
            if core.last_epoch >= idx.checked_through {
                idx.set_guard(id, guard, valid_through);
                return;
            }
            drop(idx);
            // Guard-coherence catch-up, not an observable maintenance
            // round: the commits that raced past this round belong to
            // the rounds that claimed them — they surface either as
            // those rounds' own visits or as `skipped_unvisited` when
            // they pruned this share. Counting this refresh's ladder
            // movement too would double-book those commits and make
            // `visited + skipped_unvisited` overshoot the commit
            // count, so the share's stats are restored around it.
            let saved = core.stats;
            Self::refresh(core, store, lazy, feed_cap, true, tolerance);
            core.stats = saved;
        }
    }

    /// The cheap classification: `true` when the share is done (already
    /// current, nothing logged, or the cached proof skipped the whole
    /// burst); `false` when it needs the heavy pass.
    fn try_cheap(sub: &mut ShareCore, store: &ModStore, now: u64, shared: &mut SharedOps) -> bool {
        if now <= sub.last_epoch {
            return true;
        }
        let entry = shared.entry(sub.last_epoch).or_insert_with(|| {
            store.ops_since_cloned(sub.last_epoch).map(|ops| {
                let ops: Vec<DeltaRecord> = ops.into_iter().filter(|r| r.epoch <= now).collect();
                let changed = changed_ids(ops.iter());
                Arc::new((ops, changed))
            })
        });
        let shared_ops = match entry {
            Some(arc) => Arc::clone(arc),
            None => return false, // truncated history: heavy rebuild
        };
        let (ops, changed) = (&shared_ops.0, &shared_ops.1);
        if ops.is_empty() {
            sub.last_epoch = now;
            return true;
        }
        if sub.kind == SubKind::ReverseRows {
            // Every insert/remove adds, drops, or touches a perspective:
            // there is no whole-subscription skip, only per-perspective
            // carry in the heavy pass.
            return false;
        }
        let refs: Vec<&DeltaRecord> = ops.iter().collect();
        if skip_proven(sub, &refs, changed, now, true) {
            sub.stats.visited += 1;
            sub.stats.batched_commits += epochs_spanned(&refs).saturating_sub(1);
            return true;
        }
        false
    }

    /// Routes the delta since `sub.last_epoch` through the skip → patch →
    /// rebuild ladder. `cached_proof` selects whether the skip check may
    /// reuse the per-engine [`ForwardProof`] (the sequential ablation
    /// derives it fresh, as the pre-sharding code did).
    fn refresh(
        sub: &mut ShareCore,
        store: &ModStore,
        lazy: &mut Option<Arc<QuerySnapshot>>,
        feed_cap: usize,
        cached_proof: bool,
        tolerance: f64,
    ) {
        let now = store.epoch();
        if now <= sub.last_epoch {
            return;
        }
        match store.ops_since_cloned(sub.last_epoch) {
            Some(ops) => {
                let ops: Vec<&DeltaRecord> = ops.iter().filter(|r| r.epoch <= now).collect();
                if ops.is_empty() {
                    sub.last_epoch = now;
                    return;
                }
                sub.stats.visited += 1;
                sub.stats.batched_commits += epochs_spanned(&ops).saturating_sub(1);
                let changed = changed_ids(ops.iter().copied());
                match sub.kind {
                    SubKind::Intervals { .. } | SubKind::ForwardRows => {
                        if skip_proven(sub, &ops, &changed, now, cached_proof) {
                            // Every op is provably outside the engine's
                            // reach: the answer is already current.
                            return;
                        }
                        // Heavy paths need the consistent snapshot view.
                        let snapshot = Self::materialize(lazy, store);
                        if snapshot.epoch() == now
                            && !changed.contains(&sub.oid)
                            && sub.engine.is_some()
                        {
                            return Self::patch(
                                sub, store, &snapshot, now, &changed, feed_cap, tolerance,
                            );
                        }
                    }
                    SubKind::ReverseRows => {
                        let snapshot = Self::materialize(lazy, store);
                        if snapshot.epoch() == now
                            && !changed.contains(&sub.oid)
                            && sub.rev.is_some()
                            && snapshot.len() >= 2
                        {
                            return Self::patch_reverse(
                                sub, store, &snapshot, now, &ops, &changed, feed_cap, tolerance,
                            );
                        }
                    }
                }
                // The query object itself changed, there is no engine to
                // reuse, or commits raced past `now` while we looked —
                // re-evaluate wholesale at the snapshot's epoch.
            }
            None => {
                // Truncation: the log can no longer prove what happened
                // since the answer was computed — patching would silently
                // miss the evicted mutations, so fall through to the full
                // re-evaluation. Epochs increment once per commit, so
                // the watermark gap bounds the commits this rebuild
                // coalesces.
                sub.stats.visited += 1;
                sub.stats.batched_commits += now.saturating_sub(sub.last_epoch + 1);
            }
        }
        let snapshot = Self::materialize(lazy, store);
        sub.stats.rebuilt += 1;
        Self::reevaluate(sub, store, &snapshot, snapshot.epoch(), feed_cap, tolerance);
    }

    /// The lazily materialized snapshot, refreshed when a newer epoch
    /// exists (a cached older snapshot would silently miss ops).
    fn materialize(lazy: &mut Option<Arc<QuerySnapshot>>, store: &ModStore) -> Arc<QuerySnapshot> {
        match lazy {
            Some(s) if s.epoch() == store.epoch() => Arc::clone(s),
            _ => {
                let s = store.snapshot();
                *lazy = Some(Arc::clone(&s));
                s
            }
        }
    }

    /// The incremental re-eval of the forward kinds: re-plan (cheap,
    /// index-backed prefilter), reuse every unchanged candidate's
    /// difference function from the carried engine, build fresh
    /// functions only for candidates the delta touched, and rebuild the
    /// envelope over the merged set. The candidate set and every
    /// function value are exactly what a cold plan would produce, so the
    /// answer is bit-identical — only the per-candidate difference
    /// construction (and, with a carried envelope, the untouched
    /// intervals / clean probe columns) is skipped.
    #[allow(clippy::too_many_arguments)]
    fn patch(
        sub: &mut ShareCore,
        store: &ModStore,
        snapshot: &Arc<QuerySnapshot>,
        now: u64,
        changed: &BTreeSet<Oid>,
        feed_cap: usize,
        tolerance: f64,
    ) {
        let plan =
            match QueryPlanner::new(sub.policy).plan(Arc::clone(snapshot), sub.oid, sub.window) {
                Ok(plan) => plan,
                Err(e) => {
                    // The commit was absorbed by an (empty-answer)
                    // rebuild attempt.
                    sub.stats.rebuilt += 1;
                    return sub.park(now, e.to_string(), feed_cap);
                }
            };
        let old = Arc::clone(
            sub.engine
                .as_ref()
                .expect("patch requires a carried engine"),
        );
        let old_fns: HashMap<Oid, &DistanceFunction> =
            old.functions().iter().map(|f| (f.owner(), f)).collect();
        let query_tr = plan.query_trajectory();
        let mut fs: Vec<DistanceFunction> = Vec::with_capacity(plan.candidate_count());
        let (mut reused, mut built) = (0u64, 0u64);
        for tr in plan.candidate_trajectories() {
            let oid = tr.oid();
            if !changed.contains(&oid) {
                if let Some(f) = old_fns.get(&oid) {
                    fs.push((*f).clone());
                    reused += 1;
                    continue;
                }
            }
            match CandidateSet::build(query_tr, std::iter::once(tr), &sub.window) {
                Ok(set) => {
                    debug_assert_eq!(set.len(), 1);
                    fs.extend(set.into_functions());
                    built += 1;
                }
                Err(e) => {
                    sub.stats.rebuilt += 1;
                    return sub.park(now, e.to_string(), feed_cap);
                }
            }
        }
        let query_tr = query_tr.clone();
        let kernel = match sub.kind {
            SubKind::ForwardRows => match sub.ensure_model(store, snapshot) {
                Ok(model) => Some(sub.row_kernel(&model, tolerance)),
                Err(e) => {
                    sub.stats.rebuilt += 1;
                    return sub.park(now, e, feed_cap);
                }
            },
            _ => None,
        };
        // Cheapest re-eval first: when the delta provably leaves the
        // lower envelope unchanged, carry it (no O(M log M) rebuild) and
        // recompute only the touched candidates' intervals / dirty probe
        // columns; otherwise rebuild envelope and answer over the merged
        // function set.
        let is_fresh = |oid: Oid| changed.contains(&oid);
        let (engine, answer) = match old.carry_envelope(fs, plan.radius(), &is_fresh) {
            Ok(engine) => {
                let answer = match (&sub.kind, &sub.answer) {
                    (SubKind::Intervals { rank: None }, SubAnswer::Intervals(prev)) => {
                        SubAnswer::Intervals(engine.answer_set_reusing(prev, &is_fresh))
                    }
                    // Rank intervals depend on the k-level structure of
                    // the whole function set, not just the envelope —
                    // recompute them (the carried envelope still saves
                    // the construction).
                    (SubKind::Intervals { rank: Some(k) }, _) => {
                        SubAnswer::Intervals(engine.ranked_answer_set(*k))
                    }
                    (SubKind::ForwardRows, SubAnswer::Rows(prev)) => {
                        let (rows, touched) = engine.prob_row_set_reusing_kernel(
                            kernel.as_ref().expect("kernel built for row kinds"),
                            prev,
                            &is_fresh,
                        );
                        sub.stats.rows_patched += touched as u64;
                        SubAnswer::Rows(rows)
                    }
                    _ => unreachable!("answer representation matches kind"),
                };
                sub.stats.envelopes_carried += 1;
                (Arc::new(engine), answer)
            }
            Err(fs) => {
                let engine = Arc::new(QueryEngine::new(sub.oid, fs, plan.radius()));
                let answer = match sub.kind {
                    SubKind::Intervals { rank } => SubAnswer::Intervals(answer_of(&engine, rank)),
                    SubKind::ForwardRows => {
                        let rows = engine.prob_row_set_kernel(
                            kernel.as_ref().expect("kernel built for row kinds"),
                            sub.samples,
                        );
                        sub.stats.rows_patched += rows.len() as u64;
                        SubAnswer::Rows(rows)
                    }
                    SubKind::ReverseRows => unreachable!("reverse kinds patch per perspective"),
                };
                (engine, answer)
            }
        };
        sub.stats.patched += 1;
        sub.stats.functions_reused += reused;
        sub.stats.functions_built += built;
        if let Some(kernel) = &kernel {
            sub.absorb_kernel_counters(kernel);
        }
        sub.engine = Some(engine);
        sub.query_tr = Some(query_tr);
        sub.proof = None;
        sub.commit_answer(answer, now, feed_cap);
    }

    /// The per-perspective incremental re-eval of a reverse
    /// subscription: every perspective object untouched by the delta and
    /// provably outside its reach (its own [`ForwardProof`], under the
    /// row obligation) carries its envelope *and* its sampled row
    /// wholesale; only touched, new, or unprovable perspectives pay the
    /// per-perspective difference + envelope build and re-sampling.
    #[allow(clippy::too_many_arguments)]
    fn patch_reverse(
        sub: &mut ShareCore,
        store: &ModStore,
        snapshot: &Arc<QuerySnapshot>,
        now: u64,
        ops: &[&DeltaRecord],
        changed: &BTreeSet<Oid>,
        feed_cap: usize,
        tolerance: f64,
    ) {
        let old = Arc::clone(sub.rev.as_ref().expect("patch requires a carried engine"));
        let radius = match common_radius(snapshot) {
            Ok(r) if r > 0.0 => r,
            Ok(_) | Err(_) => {
                sub.stats.rebuilt += 1;
                return sub.park(
                    now,
                    "trajectories have differing uncertainty radii".to_string(),
                    feed_cap,
                );
            }
        };
        let kernel = match sub.ensure_model(store, snapshot) {
            Ok(model) => sub.row_kernel(&model, tolerance),
            Err(e) => {
                sub.stats.rebuilt += 1;
                return sub.park(now, e, feed_cap);
            }
        };
        // Classify the old perspectives: carried iff untouched, still
        // present, and proven unreachable by every op. Proofs are
        // derived lazily from the *current* snapshot — sound because a
        // perspective is only ever proven when the delta left both its
        // trajectory and its engine untouched.
        let mut carried: BTreeSet<Oid> = BTreeSet::new();
        for (oid, engine) in old.perspective_engines() {
            if changed.contains(&oid) || !snapshot.contains(oid) {
                sub.rev_proofs.remove(&oid);
                continue;
            }
            let proof = sub.rev_proofs.entry(oid).or_insert_with(|| {
                let tr = snapshot.get(oid).expect("presence checked above");
                ForwardProof::derive(engine, tr.trajectory())
            });
            if proof.ops_unaffected_rows(ops) {
                carried.insert(oid);
            } else {
                sub.rev_proofs.remove(&oid);
            }
        }
        let refs: Vec<&Trajectory> = snapshot.iter().map(|t| t.trajectory()).collect();
        let rev = match ReverseNnEngine::build_reusing(&refs, sub.oid, sub.window, radius, |oid| {
            if carried.contains(&oid) {
                old.perspective_engine_arc(oid)
            } else {
                None
            }
        }) {
            Ok(rev) => rev,
            Err(e) => {
                sub.stats.rebuilt += 1;
                return sub.park(now, e.to_string(), feed_cap);
            }
        };
        let prev = match &sub.answer {
            SubAnswer::Rows(prev) => prev,
            SubAnswer::Intervals(_) => unreachable!("reverse subscriptions maintain rows"),
        };
        let (rows, recomputed) =
            rev.prob_row_set_reusing_kernel(&kernel, prev, &|oid| carried.contains(&oid));
        sub.stats.patched += 1;
        sub.stats.perspectives_skipped += carried.len() as u64;
        sub.stats.rows_patched += recomputed as u64;
        sub.absorb_kernel_counters(&kernel);
        sub.rev = Some(Arc::new(rev));
        sub.commit_answer(SubAnswer::Rows(rows), now, feed_cap);
    }

    /// The full re-plan: the same pipeline a cold registration runs.
    fn reevaluate(
        sub: &mut ShareCore,
        store: &ModStore,
        snapshot: &Arc<QuerySnapshot>,
        now: u64,
        feed_cap: usize,
        tolerance: f64,
    ) {
        if let Err(e) = Self::evaluate_into(sub, store, snapshot, feed_cap, tolerance) {
            sub.park(now, e, feed_cap);
        }
    }

    /// Evaluates `sub`'s standing query from scratch against `snapshot`
    /// and commits the result (carried engines, proofs, answer, feed
    /// delta at the snapshot's epoch).
    fn evaluate_into(
        sub: &mut ShareCore,
        store: &ModStore,
        snapshot: &Arc<QuerySnapshot>,
        feed_cap: usize,
        tolerance: f64,
    ) -> Result<(), String> {
        let epoch = snapshot.epoch();
        match sub.kind {
            SubKind::Intervals { rank } => {
                let (engine, query_tr, answer) =
                    evaluate(snapshot, sub.oid, sub.window, rank, sub.policy)?;
                sub.engine = Some(engine);
                sub.rev = None;
                sub.query_tr = Some(query_tr);
                sub.proof = None;
                sub.commit_answer(SubAnswer::Intervals(answer), epoch, feed_cap);
            }
            SubKind::ForwardRows => {
                let model = sub.ensure_model(store, snapshot)?;
                let kernel = sub.row_kernel(&model, tolerance);
                let plan: QueryPlan = QueryPlanner::new(sub.policy)
                    .plan(Arc::clone(snapshot), sub.oid, sub.window)
                    .map_err(|e| e.to_string())?;
                let query_tr = plan.query_trajectory().clone();
                let engine = Arc::new(plan.build_engine().map_err(|e| e.to_string())?);
                let rows = engine.prob_row_set_kernel(&kernel, sub.samples);
                sub.absorb_kernel_counters(&kernel);
                sub.engine = Some(engine);
                sub.rev = None;
                sub.query_tr = Some(query_tr);
                sub.proof = None;
                sub.commit_answer(SubAnswer::Rows(rows), epoch, feed_cap);
            }
            SubKind::ReverseRows => {
                let model = sub.ensure_model(store, snapshot)?;
                let kernel = sub.row_kernel(&model, tolerance);
                // The exhaustive plan validates the snapshot, window,
                // query object, and shared radius; the reverse build
                // needs the full population regardless of policy.
                let plan: QueryPlan = QueryPlanner::new(PrefilterPolicy::Exhaustive)
                    .plan(Arc::clone(snapshot), sub.oid, sub.window)
                    .map_err(|e| e.to_string())?;
                let query_tr = plan.query_trajectory().clone();
                let rev = Arc::new(plan.build_reverse_engine().map_err(|e| e.to_string())?);
                let rows = rev.prob_row_set_kernel(&kernel, sub.samples);
                sub.absorb_kernel_counters(&kernel);
                sub.engine = None;
                sub.rev = Some(rev);
                sub.query_tr = Some(query_tr);
                sub.proof = None;
                sub.rev_proofs.clear();
                sub.commit_answer(SubAnswer::Rows(rows), epoch, feed_cap);
            }
        }
        Ok(())
    }
}

/// The empty answer of a subscription shape (shared by registration and
/// the park path).
fn empty_answer_of(kind: SubKind, oid: Oid, window: TimeInterval, samples: u32) -> SubAnswer {
    match kind {
        SubKind::Intervals { rank } => SubAnswer::Intervals(AnswerSet::empty(oid, window, rank)),
        SubKind::ForwardRows => SubAnswer::Rows(ProbRowSet::empty(
            oid,
            window,
            RowPerspective::Forward,
            samples,
        )),
        SubKind::ReverseRows => SubAnswer::Rows(ProbRowSet::empty(
            oid,
            window,
            RowPerspective::Reverse,
            samples,
        )),
    }
}

/// Levenshtein edit distance (two-row dynamic program) — the cheap
/// nearest-name metric behind the `UNREGISTER` typo hint.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub_cost = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub_cost.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The distinct object ids a (filtered) op sequence touches.
/// The number of distinct commit epochs `ops` spans (ops arrive in
/// log order, so equal epochs are adjacent). A maintenance round's
/// `batched_commits` contribution is this minus one: the first commit
/// of a burst is ordinary maintenance, the rest were coalesced into
/// the same ladder pass.
fn epochs_spanned(ops: &[&DeltaRecord]) -> u64 {
    let mut n = 0u64;
    let mut last = None;
    for r in ops {
        if last != Some(r.epoch) {
            n += 1;
            last = Some(r.epoch);
        }
    }
    n
}

fn changed_ids<'a>(ops: impl IntoIterator<Item = &'a DeltaRecord>) -> BTreeSet<Oid> {
    ops.into_iter()
        .map(|r| match &r.op {
            DeltaOp::Insert(tr) => tr.oid(),
            DeltaOp::Remove(oid) => *oid,
        })
        .collect()
}

/// The **single** skip decision both sync modes share: `true` iff the
/// subscription's carried engine provably cannot be touched by `ops`
/// (the watermark and skip counters are then advanced). `cached`
/// selects whether the per-engine [`ForwardProof`] is reused (sharded
/// mode) or derived from scratch (the sequential ablation baseline).
/// Row subscriptions check the sharper band-survivor obligation
/// ([`ForwardProof::ops_unaffected_rows`]).
fn skip_proven(
    sub: &mut ShareCore,
    ops: &[&DeltaRecord],
    changed: &BTreeSet<Oid>,
    now: u64,
    cached: bool,
) -> bool {
    if changed.contains(&sub.oid) {
        return false;
    }
    let (Some(engine), Some(query_tr)) = (&sub.engine, &sub.query_tr) else {
        return false;
    };
    let rows = sub.kind == SubKind::ForwardRows;
    let unaffected = if cached {
        let proof = sub
            .proof
            .get_or_insert_with(|| ForwardProof::derive(engine, query_tr));
        if rows {
            proof.ops_unaffected_rows(ops)
        } else {
            proof.ops_unaffected(ops)
        }
    } else {
        let proof = ForwardProof::derive(engine, query_tr);
        if rows {
            proof.ops_unaffected_rows(ops)
        } else {
            proof.ops_unaffected(ops)
        }
    };
    if unaffected {
        sub.stats.skipped += 1;
        sub.stats.skipped_ops += ops.len() as u64;
        sub.last_epoch = now;
    }
    unaffected
}

/// Plans and evaluates one interval standing query from scratch.
fn evaluate(
    snapshot: &Arc<QuerySnapshot>,
    oid: Oid,
    window: TimeInterval,
    rank: Option<usize>,
    policy: PrefilterPolicy,
) -> Result<(Arc<QueryEngine>, Trajectory, AnswerSet), String> {
    let plan: QueryPlan = QueryPlanner::new(policy)
        .plan(Arc::clone(snapshot), oid, window)
        .map_err(|e| e.to_string())?;
    let query_tr = plan.query_trajectory().clone();
    let engine = Arc::new(plan.build_engine().map_err(|e| e.to_string())?);
    let answer = answer_of(&engine, rank);
    Ok((engine, query_tr, answer))
}

/// The engine's answer under the subscription's rank bound.
fn answer_of(engine: &QueryEngine, rank: Option<usize>) -> AnswerSet {
    match rank {
        Some(k) => engine.ranked_answer_set(k),
        None => engine.answer_set(),
    }
}

/// Renders an [`AnswerSet`] through a query's quantifier and target —
/// the same decision rules the one-shot execution path applies to its
/// engine, derived from the maintained qualification intervals instead.
pub fn render_output(query: &Query, answer: &AnswerSet) -> QueryOutput {
    let window = answer.window();
    let tol = 1e-7 * window.len().max(1.0);
    match &query.target {
        Target::One(name) => {
            let intervals = parse_object_name(name).and_then(|oid| answer.intervals_of(oid));
            let answer = match (&query.quantifier, intervals) {
                (Quantifier::Exists, iv) => iv.map(|iv| !iv.is_empty()).unwrap_or(false),
                (Quantifier::Forall, Some(iv)) => iv.covers_interval(window, tol),
                (Quantifier::Forall, None) => false,
                (Quantifier::AtLeast(x), iv) => {
                    let frac = iv.map(|iv| iv.total_len() / window.len()).unwrap_or(0.0);
                    frac + 1e-12 >= *x
                }
                (Quantifier::At(t), iv) => iv.map(|iv| iv.covers(*t)).unwrap_or(false),
            };
            QueryOutput::Boolean(answer)
        }
        Target::All => {
            let rows = answer
                .entries()
                .iter()
                .filter_map(|e| {
                    let frac = e.fraction(window);
                    match &query.quantifier {
                        Quantifier::Exists => Some((e.oid, frac)),
                        Quantifier::Forall => e
                            .intervals
                            .covers_interval(window, tol)
                            .then_some((e.oid, 1.0)),
                        Quantifier::AtLeast(x) => (frac + 1e-12 >= *x).then_some((e.oid, frac)),
                        Quantifier::At(t) => e.intervals.covers(*t).then_some((e.oid, frac)),
                    }
                })
                .collect();
            QueryOutput::Objects(rows)
        }
    }
}

/// Renders a [`ProbRowSet`] through a query's quantifier and target —
/// the sampled analogue of the one-shot threshold decision rules: the
/// qualifying fraction of `oid` is the fraction of probes where its
/// `P^NN` exceeds the statement's threshold, `FORALL` means every probe
/// passed, and `AT t` reads the probe column containing `t`.
///
/// The semantics are deliberately *probe-based*: a standing query's
/// maintained truth is its sampled rows, so `AT t` answers from the
/// probe column containing `t`, whereas a one-shot execution of the
/// same statement evaluates the probability at exactly `t` (and
/// one-shot `PROB_RNN(…) > 0` uses exact band intervals). Near a
/// threshold crossing between two probes the two surfaces can disagree;
/// raise the registry's sampling density to narrow the window.
pub fn render_row_output(query: &Query, rows: &ProbRowSet) -> QueryOutput {
    let p = query.prob_threshold;
    let samples = rows.samples();
    let full = 1.0 - 0.5 / samples as f64;
    let window = rows.window();
    let column_of = |t: f64| -> u32 {
        let frac = ((t - window.start()) / window.len()).clamp(0.0, 1.0);
        ((frac * samples as f64) as u32).min(samples - 1)
    };
    let decide = |frac: f64, at_hit: bool| match &query.quantifier {
        Quantifier::Exists => frac > 0.0,
        Quantifier::Forall => frac >= full,
        Quantifier::AtLeast(x) => frac + 1e-12 >= *x,
        Quantifier::At(_) => at_hit,
    };
    let at_hit_of = |oid: Oid| match &query.quantifier {
        Quantifier::At(t) => rows
            .row_of(oid)
            .and_then(|r| r.at(column_of(*t)))
            .map(|prob| prob > p)
            .unwrap_or(false),
        _ => false,
    };
    match &query.target {
        Target::One(name) => {
            let answer = parse_object_name(name)
                .map(|oid| decide(rows.fraction_above(oid, p), at_hit_of(oid)))
                .unwrap_or(false);
            QueryOutput::Boolean(answer)
        }
        Target::All => {
            let out = rows
                .rows()
                .iter()
                .filter_map(|r| {
                    let frac = rows.fraction_above(r.oid, p);
                    decide(frac, at_hit_of(r.oid)).then_some((r.oid, frac))
                })
                .collect();
            QueryOutput::Objects(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ql::parser::parse;
    use unn_traj::trajectory::Trajectory;
    use unn_traj::uncertain::UncertainTrajectory;

    fn tr(oid: u64, y: f64) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (10.0, y, 10.0)]).unwrap(),
            0.5,
        )
        .unwrap()
    }

    fn populated_store() -> ModStore {
        let s = ModStore::new();
        s.bulk_load(vec![tr(0, 0.0), tr(1, 1.0), tr(2, 3.0), tr(3, 40.0)])
            .unwrap();
        s
    }

    fn star_query() -> Query {
        parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0")
            .unwrap()
    }

    fn threshold_query() -> Query {
        parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0.4")
            .unwrap()
    }

    fn rnn_query() -> Query {
        parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_RNN(*, Tr0, TIME) > 0")
            .unwrap()
    }

    fn interval_answer(reg: &SubscriptionRegistry, name: &str) -> AnswerSet {
        match reg.answer(name).unwrap() {
            SubAnswer::Intervals(a) => a,
            other => panic!("expected intervals, got {other:?}"),
        }
    }

    fn row_answer(reg: &SubscriptionRegistry, name: &str) -> ProbRowSet {
        match reg.answer(name).unwrap() {
            SubAnswer::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// A fresh exhaustive forward row evaluation — the ground truth the
    /// maintained threshold rows must equal bit-for-bit.
    fn fresh_forward_rows(store: &ModStore, query: Oid) -> ProbRowSet {
        let snapshot = store.snapshot();
        let kind = common_pdf_kind(&snapshot).unwrap().unwrap();
        let pdf = kind.convolve_with(&kind);
        QueryPlanner::new(PrefilterPolicy::Exhaustive)
            .plan(snapshot, query, TimeInterval::new(0.0, 10.0))
            .unwrap()
            .build_engine()
            .unwrap()
            .prob_row_set(pdf.as_ref(), PROB_ROW_SAMPLES)
    }

    /// A fresh exhaustive reverse row evaluation.
    fn fresh_reverse_rows(store: &ModStore, query: Oid) -> ProbRowSet {
        let snapshot = store.snapshot();
        let kind = common_pdf_kind(&snapshot).unwrap().unwrap();
        let pdf = kind.convolve_with(&kind);
        QueryPlanner::new(PrefilterPolicy::Exhaustive)
            .plan(snapshot, query, TimeInterval::new(0.0, 10.0))
            .unwrap()
            .build_reverse_engine()
            .unwrap()
            .prob_row_set(pdf.as_ref(), PROB_ROW_SAMPLES)
    }

    #[test]
    fn register_evaluates_and_lists() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        let info = reg
            .register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        assert!(info.entries >= 1);
        assert_eq!(info.last_epoch, store.epoch());
        assert!(info.error.is_none());
        // Duplicate names are refused.
        assert!(matches!(
            reg.register(&store, "near0", star_query(), PrefilterPolicy::default()),
            Err(SubscriptionError::NameTaken(_))
        ));
        assert_eq!(reg.list().len(), 1);
        assert!(reg.unregister("near0"));
        assert!(!reg.unregister("near0"));
        assert!(reg.is_empty());
    }

    #[test]
    fn threshold_and_reverse_statements_register() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        let info = reg
            .register(
                &store,
                "hot0",
                threshold_query(),
                PrefilterPolicy::default(),
            )
            .unwrap();
        assert!(info.error.is_none());
        assert!(info.entries >= 1, "{info:?}");
        let info = reg
            .register(&store, "rev0", rnn_query(), PrefilterPolicy::default())
            .unwrap();
        assert!(info.error.is_none());
        assert!(info.entries >= 1, "{info:?}");
        // The registered answers equal fresh exhaustive evaluations.
        assert_eq!(row_answer(&reg, "hot0"), fresh_forward_rows(&store, Oid(0)));
        assert_eq!(row_answer(&reg, "rev0"), fresh_reverse_rows(&store, Oid(0)));
    }

    #[test]
    fn remaining_unsupported_shapes_carry_spans() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        let src = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] \
                   AND PROB_NN(*, Tr0, TIME, RANK 2) > 0.5";
        let ranked_threshold = parse(src).unwrap();
        let err = reg
            .register(&store, "rt", ranked_threshold, PrefilterPolicy::default())
            .unwrap_err();
        match &err {
            SubscriptionError::Unsupported { span, .. } => {
                let span = span.expect("refusal carries the RANK span");
                assert_eq!(&src[span.offset..span.offset + 4], "RANK");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // The render draws a caret at the offending token.
        let rendered = err.render(src);
        assert!(rendered.contains('^'), "{rendered}");
        // Last line is "  " + pad + "^": the caret sits at the token.
        let caret_offset = rendered.lines().last().unwrap().len() - 3;
        assert_eq!(caret_offset, src.find("RANK").unwrap(), "{rendered}");
        // Unknown query objects still fail evaluation.
        let unknown =
            parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr99, TIME) > 0")
                .unwrap();
        assert!(matches!(
            reg.register(&store, "u", unknown, PrefilterPolicy::default()),
            Err(SubscriptionError::Evaluation(_))
        ));
    }

    #[test]
    fn unknown_names_hint_at_the_nearest_registered_one() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        let err = reg.unregister_checked("naer0").unwrap_err();
        match &err {
            SubscriptionError::Unknown { name, nearest } => {
                assert_eq!(name, "naer0");
                assert_eq!(nearest.as_deref(), Some("near0"));
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        assert!(err.to_string().contains("did you mean 'near0'"), "{err}");
        // A wildly different name gets no hint.
        let err = reg.unregister_checked("completely-else").unwrap_err();
        assert!(matches!(
            err,
            SubscriptionError::Unknown { nearest: None, .. }
        ));
        // Dropping the real name still works.
        assert!(reg.unregister_checked("near0").is_ok());
    }

    #[test]
    fn far_churn_is_skipped_and_near_mutations_patch() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        // A far insertion cannot touch the 4r band: the skip path runs
        // and no delta is emitted.
        store.insert(tr(50, 90_000.0)).unwrap();
        let info = reg.info("near0").unwrap();
        assert_eq!(info.stats.skipped, 1, "{info:?}");
        assert_eq!(info.last_epoch, store.epoch());
        assert_eq!(reg.drain("near0").unwrap(), vec![]);
        // A nearby insertion lands in the band: the patch path reuses the
        // old candidates' functions and emits an upsert for the newcomer.
        store.insert(tr(60, 0.5)).unwrap();
        let info = reg.info("near0").unwrap();
        assert_eq!(info.stats.patched, 1, "{info:?}");
        assert!(info.stats.functions_reused >= 2, "{info:?}");
        let deltas = reg.drain("near0").unwrap();
        assert_eq!(deltas.len(), 1);
        let d = deltas[0].as_intervals().unwrap();
        assert!(d.upserts.iter().any(|e| e.oid == Oid(60)));
        assert_eq!(d.epoch, store.epoch());
        // Removing the newcomer emits the removal.
        store.remove(Oid(60)).unwrap();
        let deltas = reg.drain("near0").unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(
            deltas[0].as_intervals().unwrap().removed.contains(&Oid(60)),
            "{deltas:?}"
        );
        // The maintained answer equals a fresh evaluation throughout.
        let fresh = evaluate(
            &store.snapshot(),
            Oid(0),
            TimeInterval::new(0.0, 10.0),
            None,
            PrefilterPolicy::Exhaustive,
        )
        .unwrap()
        .2;
        assert_eq!(interval_answer(&reg, "near0"), fresh);
    }

    #[test]
    fn threshold_rows_skip_patch_and_stay_bit_identical() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(
            &store,
            "hot0",
            threshold_query(),
            PrefilterPolicy::default(),
        )
        .unwrap();
        let initial = row_answer(&reg, "hot0");
        // Far churn: the insert round's visit skips via the (sharper,
        // band-survivor) proof and publishes the guard; the remove of
        // that far object is then pruned without a visit. Nothing
        // recomputed, nothing emitted either way.
        store.insert(tr(50, 90_000.0)).unwrap();
        store.remove(Oid(50)).unwrap();
        let info = reg.info("hot0").unwrap();
        assert_eq!(info.stats.skipped, 1, "{info:?}");
        assert_eq!(info.stats.skipped_unvisited, 1, "{info:?}");
        assert_eq!(info.stats.rows_patched, 0, "{info:?}");
        assert_eq!(reg.drain("hot0").unwrap(), vec![]);
        assert_eq!(row_answer(&reg, "hot0"), initial);
        // An in-band newcomer patches: only its columns recompute, and
        // the result equals a fresh exhaustive sweep bit-for-bit.
        store.insert(tr(60, 0.5)).unwrap();
        let info = reg.info("hot0").unwrap();
        assert_eq!(info.stats.patched, 1, "{info:?}");
        assert!(info.stats.rows_patched >= 1, "{info:?}");
        assert_eq!(row_answer(&reg, "hot0"), fresh_forward_rows(&store, Oid(0)));
        // Folding the emitted deltas over the initial rows reproduces
        // the maintained answer.
        let folded = reg
            .drain("hot0")
            .unwrap()
            .iter()
            .fold(initial, |acc, d| acc.apply(d.as_rows().unwrap()));
        assert_eq!(folded, row_answer(&reg, "hot0"));
    }

    #[test]
    fn reverse_rows_carry_untouched_perspectives() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "rev0", rnn_query(), PrefilterPolicy::default())
            .unwrap();
        let initial = row_answer(&reg, "rev0");
        // A far insertion becomes a new perspective, but every existing
        // perspective is provably untouched: its envelope and row carry.
        store.insert(tr(50, 90_000.0)).unwrap();
        let info = reg.info("rev0").unwrap();
        assert_eq!(info.stats.patched, 1, "{info:?}");
        assert_eq!(info.stats.perspectives_skipped, 3, "{info:?}");
        assert_eq!(info.stats.rows_patched, 1, "one new perspective: {info:?}");
        assert_eq!(row_answer(&reg, "rev0"), fresh_reverse_rows(&store, Oid(0)));
        // Removing it again drops the perspective; the others carry.
        store.remove(Oid(50)).unwrap();
        let info = reg.info("rev0").unwrap();
        assert_eq!(info.stats.perspectives_skipped, 6, "{info:?}");
        assert_eq!(row_answer(&reg, "rev0"), fresh_reverse_rows(&store, Oid(0)));
        // A near mutation recomputes the touched perspective (and any
        // perspective it can reach) — still bit-identical.
        store.update(tr(1, 1.2));
        assert_eq!(row_answer(&reg, "rev0"), fresh_reverse_rows(&store, Oid(0)));
        // Folding the emitted deltas lands on the maintained rows.
        let folded = reg
            .drain("rev0")
            .unwrap()
            .iter()
            .fold(initial, |acc, d| acc.apply(d.as_rows().unwrap()));
        assert_eq!(folded, row_answer(&reg, "rev0"));
    }

    #[test]
    fn mutating_the_query_object_rebuilds() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        // Moving the query object invalidates every difference function.
        store.remove(Oid(0)).unwrap();
        let info = reg.info("near0").unwrap();
        assert!(info.error.is_some(), "query object gone: {info:?}");
        assert!(reg.answer("near0").unwrap().is_empty());
        // Its answers emptied out through the feed…
        let deltas = reg.drain("near0").unwrap();
        assert!(deltas
            .iter()
            .any(|d| !d.as_intervals().unwrap().removed.is_empty()));
        // …and re-registering the object revives the subscription.
        store.insert(tr(0, 0.0)).unwrap();
        let info = reg.info("near0").unwrap();
        assert!(info.error.is_none(), "{info:?}");
        assert!(info.entries >= 1);
        assert!(info.stats.rebuilt >= 2, "{info:?}");
    }

    #[test]
    fn render_matches_one_shot_semantics() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        for (name, stmt) in [
            (
                "exists",
                "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0",
            ),
            (
                "atleast",
                "SELECT * FROM MOD WHERE ATLEAST 0.5 OF TIME IN [0, 10] \
                 AND PROB_NN(*, Tr0, TIME) > 0",
            ),
            (
                "one",
                "SELECT Tr1 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr1, Tr0, TIME) > 0",
            ),
            (
                "far",
                "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr3, Tr0, TIME) > 0",
            ),
        ] {
            reg.register(
                &store,
                name,
                parse(stmt).unwrap(),
                PrefilterPolicy::default(),
            )
            .unwrap();
        }
        match reg.output("exists").unwrap() {
            QueryOutput::Objects(rows) => {
                let oids: Vec<Oid> = rows.iter().map(|(o, _)| *o).collect();
                assert!(oids.contains(&Oid(1)));
                assert!(!oids.contains(&Oid(3)), "far object must not qualify");
            }
            other => panic!("expected Objects, got {other:?}"),
        }
        assert_eq!(reg.output("one").unwrap(), QueryOutput::Boolean(true));
        assert_eq!(reg.output("far").unwrap(), QueryOutput::Boolean(false));
        match reg.output("atleast").unwrap() {
            QueryOutput::Objects(rows) => {
                for (_, frac) in rows {
                    assert!(frac >= 0.5 - 1e-9);
                }
            }
            other => panic!("expected Objects, got {other:?}"),
        }
    }

    #[test]
    fn row_rendering_applies_threshold_and_quantifier() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        // Tr1 (one mile away, everything else far) dominates: its P^NN
        // exceeds 0.4 essentially always.
        reg.register(
            &store,
            "hot",
            parse(
                "SELECT Tr1 FROM MOD WHERE ATLEAST 0.6 OF TIME IN [0, 10] \
                 AND PROB_NN(Tr1, Tr0, TIME) > 0.4",
            )
            .unwrap(),
            PrefilterPolicy::default(),
        )
        .unwrap();
        assert_eq!(reg.output("hot").unwrap(), QueryOutput::Boolean(true));
        // The far object fails any positive-threshold test.
        reg.register(
            &store,
            "cold",
            parse(
                "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 10] \
                 AND PROB_NN(Tr3, Tr0, TIME) > 0.4",
            )
            .unwrap(),
            PrefilterPolicy::default(),
        )
        .unwrap();
        assert_eq!(reg.output("cold").unwrap(), QueryOutput::Boolean(false));
        // Reverse star rendering lists the perspectives with their
        // qualifying fractions.
        reg.register(&store, "rev", rnn_query(), PrefilterPolicy::default())
            .unwrap();
        match reg.output("rev").unwrap() {
            QueryOutput::Objects(rows) => {
                assert!(rows.iter().any(|(o, _)| *o == Oid(1)), "{rows:?}");
                for (_, frac) in &rows {
                    assert!((0.0..=1.0 + 1e-9).contains(frac));
                }
            }
            other => panic!("expected Objects, got {other:?}"),
        }
    }

    #[test]
    fn feed_overflow_squashes_but_folds_identically() {
        let store = populated_store();
        store.set_feed_bound(16);
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        let initial = reg.answer("near0").unwrap();
        // Far more in-band churn than the feed retains.
        for k in 0..56u64 {
            let oid = 100 + (k % 7);
            if store.contains(Oid(oid)) {
                store.remove(Oid(oid)).unwrap();
            }
            store.insert(tr(oid, 0.3 + (k % 5) as f64 * 0.1)).unwrap();
        }
        let info = reg.info("near0").unwrap();
        assert!(info.pending_deltas <= 16, "{info:?}");
        let deltas = reg.drain("near0").unwrap();
        let folded = deltas.iter().fold(initial, |acc, d| acc.apply(d));
        assert_eq!(folded, reg.answer("near0").unwrap());
    }

    #[test]
    fn bursts_coalesce_into_single_proof_rounds() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        // A bulk load of far objects is one commit carrying many ops:
        // the whole burst must be absorbed by one skip round.
        store
            .bulk_load((200..208).map(|k| tr(k, 80_000.0 + k as f64)))
            .unwrap();
        let info = reg.info("near0").unwrap();
        assert_eq!(info.stats.skipped, 1, "{info:?}");
        assert_eq!(info.stats.skipped_ops, 8, "{info:?}");
        // That first visit published the share's guard, so per-commit
        // far churn never locks the share again: the index prunes the
        // rounds outright and they materialize lazily as
        // `skipped_unvisited`.
        for k in 0..5u64 {
            store.insert(tr(300 + k, 90_000.0)).unwrap();
        }
        let info = reg.info("near0").unwrap();
        assert_eq!(info.stats.skipped, 1, "{info:?}");
        assert_eq!(info.stats.skipped_ops, 8, "{info:?}");
        assert_eq!(info.stats.skipped_unvisited, 5, "{info:?}");
        // Every post-registration commit is accounted exactly once.
        assert_eq!(
            info.stats.visited + info.stats.skipped_unvisited,
            6,
            "{info:?}"
        );
        // A near newcomer hits the guard: the share is visited again
        // and catches up to the store in one coalesced round.
        store.insert(tr(400, 0.25)).unwrap();
        let info = reg.info("near0").unwrap();
        assert_eq!(info.last_epoch, store.epoch(), "{info:?}");
        assert_eq!(
            info.stats.visited + info.stats.skipped_unvisited,
            7,
            "{info:?}"
        );
    }

    #[test]
    fn sync_modes_produce_identical_answers() {
        let run = |mode: SyncMode| {
            let store = populated_store();
            let reg = Arc::new(SubscriptionRegistry::new());
            reg.set_sync_mode(mode);
            store.attach_subscriptions(&reg);
            for q in 0..3u64 {
                reg.register(
                    &store,
                    &format!("sub{q}"),
                    parse(&format!(
                        "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] \
                         AND PROB_NN(*, Tr{q}, TIME) > 0"
                    ))
                    .unwrap(),
                    PrefilterPolicy::default(),
                )
                .unwrap();
            }
            // A row subscription rides along in both modes.
            reg.register(
                &store,
                "rows0",
                threshold_query(),
                PrefilterPolicy::default(),
            )
            .unwrap();
            for k in 0..10u64 {
                match k % 3 {
                    0 => {
                        store.insert(tr(100 + k, 0.4 + 0.05 * k as f64)).unwrap();
                    }
                    1 => {
                        store.insert(tr(200 + k, 95_000.0)).unwrap();
                    }
                    _ => {
                        store.update(tr(2, 3.0 + 0.01 * k as f64));
                    }
                }
            }
            let mut out: Vec<SubAnswer> = (0..3u64)
                .map(|q| reg.answer(&format!("sub{q}")).unwrap())
                .collect();
            out.push(reg.answer("rows0").unwrap());
            out
        };
        assert_eq!(run(SyncMode::Sharded), run(SyncMode::Sequential));
    }

    #[test]
    fn sinks_receive_pushed_deltas_and_squash_on_overflow() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        let sink = Arc::new(DeltaSink::bounded(2));
        assert!(reg.attach_sink("near0", &sink));
        assert!(!reg.attach_sink("bogus", &sink));
        let initial = reg.answer("near0").unwrap();
        // Three in-band commits against a capacity-2 sink: the oldest
        // pair squashes into one lagged event.
        store.insert(tr(70, 0.4)).unwrap();
        store.insert(tr(71, 0.6)).unwrap();
        store.insert(tr(72, 0.8)).unwrap();
        assert_eq!(sink.len(), 2);
        let first = sink.try_recv().unwrap();
        assert!(first.lagged, "{first:?}");
        assert_eq!(first.subscription, "near0");
        let second = sink.try_recv().unwrap();
        assert!(!second.lagged);
        // Folding the (squashed) stream still lands on the maintained
        // answer bit-for-bit.
        let folded = initial.apply(&first.delta).apply(&second.delta);
        assert_eq!(folded, reg.answer("near0").unwrap());
        // A dropped consumer is pruned; a closed sink accepts nothing.
        sink.close();
        store.insert(tr(73, 0.9)).unwrap();
        assert!(sink.is_empty());
        assert!(sink.recv().is_none(), "closed and drained");
    }

    #[test]
    fn identical_queries_coalesce_onto_one_share() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        for name in ["a", "b", "c"] {
            reg.register(&store, name, star_query(), PrefilterPolicy::default())
                .unwrap();
        }
        assert_eq!(reg.list().len(), 3);
        assert_eq!(reg.share_count(), 1, "identical queries share one engine");
        let reference = interval_answer(&reg, "a");
        assert_eq!(interval_answer(&reg, "b"), reference);
        assert_eq!(interval_answer(&reg, "c"), reference);
        // A different query object (or kind) is a different computation.
        reg.register(&store, "hot", threshold_query(), PrefilterPolicy::default())
            .unwrap();
        assert_eq!(reg.share_count(), 2);
        // The share survives while any member remains, and dies with
        // the last one.
        assert!(reg.unregister("a"));
        assert!(reg.unregister("b"));
        assert_eq!(reg.share_count(), 2);
        assert_eq!(interval_answer(&reg, "c"), reference);
        assert!(reg.unregister("c"));
        assert_eq!(reg.share_count(), 1);
    }

    #[test]
    fn disabled_sharing_gives_every_registration_its_own_engine() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        reg.set_engine_sharing(false);
        assert!(!reg.engine_sharing());
        reg.register(&store, "x", star_query(), PrefilterPolicy::default())
            .unwrap();
        reg.register(&store, "y", star_query(), PrefilterPolicy::default())
            .unwrap();
        assert_eq!(reg.share_count(), 2, "exclusive engines never coalesce");
        // Re-enabling affects only future registrations: the new name
        // cannot join an exclusive share, so it opens a third.
        reg.set_engine_sharing(true);
        reg.register(&store, "z", star_query(), PrefilterPolicy::default())
            .unwrap();
        assert_eq!(reg.share_count(), 3);
        // Sharing is an optimization, never a semantic change.
        let reference = interval_answer(&reg, "x");
        assert_eq!(interval_answer(&reg, "y"), reference);
        assert_eq!(interval_answer(&reg, "z"), reference);
    }

    #[test]
    fn shared_engine_broadcasts_one_delta_to_every_member_sink() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "a", star_query(), PrefilterPolicy::default())
            .unwrap();
        reg.register(&store, "b", star_query(), PrefilterPolicy::default())
            .unwrap();
        assert_eq!(reg.share_count(), 1);
        let sink_a = Arc::new(DeltaSink::bounded(8));
        let sink_b = Arc::new(DeltaSink::bounded(8));
        assert!(reg.attach_sink("a", &sink_a));
        assert!(reg.attach_sink("b", &sink_b));
        let initial = reg.answer("a").unwrap();
        store.insert(tr(70, 0.4)).unwrap();
        // One maintenance round fans the same delta out to both
        // members, each stamped with its own subscription name.
        let ev_a = sink_a.try_recv().unwrap();
        let ev_b = sink_b.try_recv().unwrap();
        assert_eq!(ev_a.subscription, "a");
        assert_eq!(ev_b.subscription, "b");
        assert_eq!(ev_a.delta, ev_b.delta);
        assert_eq!(initial.apply(&ev_a.delta), reg.answer("b").unwrap());
    }

    #[test]
    fn levenshtein_distances_are_sane() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("near0", "naer0"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }
}
