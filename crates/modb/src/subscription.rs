//! Standing queries: registered continuous queries whose answers are
//! **maintained incrementally** as the MOD mutates, instead of being
//! re-planned per request.
//!
//! The paper's queries are continuous by nature — probabilistic NN
//! predicates holding over a time window — yet a request/response server
//! re-derives every answer from a point-in-time snapshot. A
//! [`SubscriptionRegistry`] attached to the store
//! ([`crate::store::ModStore::attach_subscriptions`]) closes that gap:
//! after every commit, the epoch's delta is routed to the affected
//! subscriptions only, in the DBSP spirit of re-deriving just the changed
//! part of each answer from the input delta. Per subscription, per delta,
//! one of three paths runs (cheapest first):
//!
//! 1. **Skip** — the carried engine's band-bound proof
//!    ([`crate::delta::forward_engine_unaffected`]) shows no logged op
//!    can touch the answer: only the epoch watermark advances. `O(|ops|)`.
//! 2. **Patch** — the prefilter re-runs against the patched snapshot and
//!    the engine is rebuilt *reusing every unchanged candidate's
//!    difference function* from the carried engine; only candidates the
//!    delta touched (or newly prefiltered in) pay difference
//!    construction. The fresh [`AnswerSet`] is diffed against the old one
//!    and the [`AnswerDelta`] lands in the subscription's change feed.
//! 3. **Rebuild** — the delta log was truncated past the subscription's
//!    last epoch (or the query object itself changed): patching against
//!    incomplete history would silently miss mutations, so the full
//!    plan → difference → envelope pipeline runs from scratch (see the
//!    truncation contract in [`crate::delta::DeltaLog`]).
//!
//! Every path yields answers **bit-identical** to a fresh exhaustive
//! evaluation of the current contents — the patch path replans with the
//! same deterministic prefilter a cold query would use and reuses only
//! difference functions whose inputs are untouched; `tests/
//! continuous_queries.rs` asserts the equivalence property-style across
//! random mutation interleavings and all prefilter backends, and that
//! folding the emitted deltas over the initial answer reproduces the
//! final one.

use crate::delta::{forward_engine_unaffected, DeltaOp, DeltaRecord};
use crate::plan::{PrefilterPolicy, QueryPlan, QueryPlanner};
use crate::ql::ast::{PredicateKind, Quantifier, Query, Target};
use crate::ql::parse_object_name;
use crate::server::QueryOutput;
use crate::snapshot::QuerySnapshot;
use crate::store::ModStore;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};
use unn_core::answer::{AnswerDelta, AnswerSet};
use unn_core::candidates::CandidateSet;
use unn_core::query::QueryEngine;
use unn_geom::interval::TimeInterval;
use unn_traj::distance::DistanceFunction;
use unn_traj::trajectory::{Oid, Trajectory};

/// Change-feed bound per subscription: beyond this many undrained
/// deltas, the two oldest are composed into one (the fold invariant
/// `answer₀ ⊕ δ₁ ⊕ … = current` is preserved, per-epoch granularity of
/// the oldest entries is not).
const FEED_CAPACITY: usize = 256;

/// Errors raised by subscription management.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionError {
    /// A subscription with this name already exists.
    NameTaken(String),
    /// No subscription with this name.
    Unknown(String),
    /// The statement cannot be registered as a standing query.
    Unsupported(String),
    /// The initial evaluation failed (unknown query object, not enough
    /// objects, invalid window…).
    Evaluation(String),
}

impl fmt::Display for SubscriptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscriptionError::NameTaken(n) => {
                write!(f, "a subscription named '{n}' already exists")
            }
            SubscriptionError::Unknown(n) => write!(f, "no subscription named '{n}'"),
            SubscriptionError::Unsupported(m) => write!(f, "cannot register: {m}"),
            SubscriptionError::Evaluation(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SubscriptionError {}

/// Per-subscription maintenance counters: how each routed delta was
/// absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscriptionStats {
    /// Deltas proven unable to touch the answer (watermark bump only).
    pub skipped: u64,
    /// Deltas absorbed by the incremental re-eval (prefilter + reused
    /// difference functions + envelope).
    pub patched: u64,
    /// Full re-plans: truncated history, a mutated query object, or an
    /// evaluation error.
    pub rebuilt: u64,
    /// Patches that additionally carried the envelope (the delta provably
    /// left the lower envelope untouched, so only the touched candidates'
    /// intervals were recomputed).
    pub envelopes_carried: u64,
    /// Difference functions reused from the carried engine across all
    /// patches (the work incrementality avoided).
    pub functions_reused: u64,
    /// Difference functions built fresh across all patches.
    pub functions_built: u64,
}

/// A snapshot of one subscription's state (the `SHOW SUBSCRIPTIONS` row).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionInfo {
    /// The subscription's unique name.
    pub name: String,
    /// The standing query, rendered back to its statement surface.
    pub statement: String,
    /// The store epoch the answer is current at.
    pub last_epoch: u64,
    /// Number of objects currently qualifying.
    pub entries: usize,
    /// Undrained deltas in the change feed.
    pub pending_deltas: usize,
    /// The evaluation error the subscription is parked on, if any (e.g.
    /// its query object left the MOD; cleared when evaluation succeeds
    /// again).
    pub error: Option<String>,
    /// Maintenance counters.
    pub stats: SubscriptionStats,
}

/// One registered standing query.
#[derive(Debug)]
struct SubState {
    query: Query,
    oid: Oid,
    window: TimeInterval,
    rank: Option<usize>,
    policy: PrefilterPolicy,
    last_epoch: u64,
    /// The engine the current answer was computed with — the carried
    /// preprocessing the skip/patch paths reuse. `None` while parked on
    /// an evaluation error.
    engine: Option<Arc<QueryEngine>>,
    /// The query trajectory's content as of `last_epoch` (any op touching
    /// it forces a rebuild, so between rebuilds this equals the live
    /// content). Cached so the skip path needs no snapshot at all.
    query_tr: Option<Trajectory>,
    answer: AnswerSet,
    feed: Vec<AnswerDelta>,
    error: Option<String>,
    stats: SubscriptionStats,
}

impl SubState {
    fn info(&self, name: &str) -> SubscriptionInfo {
        SubscriptionInfo {
            name: name.to_string(),
            statement: self.query.to_string(),
            last_epoch: self.last_epoch,
            entries: self.answer.len(),
            pending_deltas: self.feed.len(),
            error: self.error.clone(),
            stats: self.stats,
        }
    }

    fn push_feed(&mut self, delta: AnswerDelta) {
        self.feed.push(delta);
        if self.feed.len() > FEED_CAPACITY {
            let second = self.feed.remove(1);
            self.feed[0] = self.feed[0].then(&second);
        }
    }

    /// Installs a freshly evaluated answer, emitting its delta.
    fn commit_answer(
        &mut self,
        engine: Arc<QueryEngine>,
        query_tr: Trajectory,
        answer: AnswerSet,
        epoch: u64,
    ) {
        let delta = self.answer.diff_to(&answer, epoch);
        if !delta.is_empty() {
            self.push_feed(delta);
        }
        self.answer = answer;
        self.engine = Some(engine);
        self.query_tr = Some(query_tr);
        self.error = None;
        self.last_epoch = epoch;
    }

    /// Parks the subscription on an evaluation error: the answer empties
    /// (emitting the removals) until a later epoch evaluates again.
    fn park(&mut self, epoch: u64, message: String) {
        let empty = AnswerSet::empty(self.oid, self.window, self.rank);
        let delta = self.answer.diff_to(&empty, epoch);
        if !delta.is_empty() {
            self.push_feed(delta);
        }
        self.answer = empty;
        self.engine = None;
        self.query_tr = None;
        self.error = Some(message);
        self.last_epoch = epoch;
    }
}

/// The registry of standing queries attached to a store. All methods are
/// thread-safe; maintenance runs under the registry lock, so concurrent
/// mutations serialize their subscription updates in commit order.
#[derive(Debug, Default)]
pub struct SubscriptionRegistry {
    inner: Mutex<BTreeMap<String, SubState>>,
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SubscriptionRegistry::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// Registers `query` as a standing query named `name`, evaluating it
    /// once against the store's current snapshot. Only forward
    /// non-threshold queries (`PROB_NN(…) > 0`, any category, optional
    /// RANK) are maintainable: their answers reduce to the banded
    /// qualification intervals of the [`AnswerSet`] algebra.
    pub fn register(
        &self,
        store: &ModStore,
        name: &str,
        query: Query,
        policy: PrefilterPolicy,
    ) -> Result<SubscriptionInfo, SubscriptionError> {
        if query.predicate != PredicateKind::Nn {
            return Err(SubscriptionError::Unsupported(
                "PROB_RNN standing queries are not supported (register the forward query instead)"
                    .to_string(),
            ));
        }
        if query.prob_threshold > 0.0 {
            return Err(SubscriptionError::Unsupported(format!(
                "threshold standing queries (> {}) are not supported; only the \
                 non-zero-probability semantics (> 0) is incrementally maintainable",
                query.prob_threshold
            )));
        }
        let oid = parse_object_name(&query.query_object).ok_or_else(|| {
            SubscriptionError::Evaluation(format!(
                "cannot resolve query object '{}'",
                query.query_object
            ))
        })?;
        let window = TimeInterval::try_new(query.window.0, query.window.1).ok_or_else(|| {
            SubscriptionError::Evaluation(format!(
                "invalid window [{}, {}]",
                query.window.0, query.window.1
            ))
        })?;
        let mut map = self.inner.lock().unwrap();
        if map.contains_key(name) {
            return Err(SubscriptionError::NameTaken(name.to_string()));
        }
        let snapshot = store.snapshot();
        let rank = query.rank;
        let (engine, query_tr, answer) = evaluate(&snapshot, oid, window, rank, policy)
            .map_err(SubscriptionError::Evaluation)?;
        let sub = SubState {
            query,
            oid,
            window,
            rank,
            policy,
            last_epoch: snapshot.epoch(),
            engine: Some(engine),
            query_tr: Some(query_tr),
            answer,
            feed: Vec::new(),
            error: None,
            stats: SubscriptionStats::default(),
        };
        let info = sub.info(name);
        map.insert(name.to_string(), sub);
        Ok(info)
    }

    /// Drops the named standing query. `true` when it existed.
    pub fn unregister(&self, name: &str) -> bool {
        self.inner.lock().unwrap().remove(name).is_some()
    }

    /// Every subscription's state, ascending by name.
    pub fn list(&self) -> Vec<SubscriptionInfo> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(name, sub)| sub.info(name))
            .collect()
    }

    /// The named subscription's state.
    pub fn info(&self, name: &str) -> Option<SubscriptionInfo> {
        self.inner.lock().unwrap().get(name).map(|s| s.info(name))
    }

    /// The named subscription's current answer.
    pub fn answer(&self, name: &str) -> Option<AnswerSet> {
        self.inner
            .lock()
            .unwrap()
            .get(name)
            .map(|s| s.answer.clone())
    }

    /// The named subscription's current answer rendered through its own
    /// quantifier/target, like a one-shot execution of the statement.
    pub fn output(&self, name: &str) -> Option<QueryOutput> {
        self.inner
            .lock()
            .unwrap()
            .get(name)
            .map(|s| render_output(&s.query, &s.answer))
    }

    /// Drains the named subscription's change feed: every undrained
    /// [`AnswerDelta`] in epoch order. `None` for unknown names.
    pub fn drain(&self, name: &str) -> Option<Vec<AnswerDelta>> {
        self.inner
            .lock()
            .unwrap()
            .get_mut(name)
            .map(|s| std::mem::take(&mut s.feed))
    }

    /// Brings every subscription up to the store's current epoch. Called
    /// by the store after each commit (the registry must be attached via
    /// [`ModStore::attach_subscriptions`]); also callable directly to
    /// re-sync a registry that was detached while mutations ran.
    ///
    /// The store snapshot is materialized **lazily**: a commit whose
    /// delta every subscription provably skips costs only the per-
    /// subscription band-bound check — no snapshot refresh, no engine
    /// work.
    pub fn sync(&self, store: &ModStore) {
        let mut map = self.inner.lock().unwrap();
        if map.is_empty() {
            return;
        }
        let mut snapshot: Option<Arc<QuerySnapshot>> = None;
        for sub in map.values_mut() {
            Self::refresh(sub, store, &mut snapshot);
        }
    }

    /// Routes the delta since `sub.last_epoch` through the skip → patch →
    /// rebuild ladder.
    fn refresh(sub: &mut SubState, store: &ModStore, lazy: &mut Option<Arc<QuerySnapshot>>) {
        let now = store.epoch();
        if now <= sub.last_epoch {
            return;
        }
        match store.ops_since_cloned(sub.last_epoch) {
            Some(ops) => {
                let ops: Vec<&DeltaRecord> = ops.iter().filter(|r| r.epoch <= now).collect();
                if ops.is_empty() {
                    sub.last_epoch = now;
                    return;
                }
                let changed: BTreeSet<Oid> = ops
                    .iter()
                    .map(|r| match &r.op {
                        DeltaOp::Insert(tr) => tr.oid(),
                        DeltaOp::Remove(oid) => *oid,
                    })
                    .collect();
                if !changed.contains(&sub.oid) {
                    if let (Some(engine), Some(query_tr)) = (&sub.engine, &sub.query_tr) {
                        if forward_engine_unaffected(engine, query_tr, &ops) {
                            // Every op is provably outside the engine's
                            // reach: the answer is already current.
                            sub.stats.skipped += 1;
                            sub.last_epoch = now;
                            return;
                        }
                    }
                }
                // Heavy paths need the consistent snapshot view.
                let snapshot = lazy.get_or_insert_with(|| store.snapshot());
                if snapshot.epoch() == now && !changed.contains(&sub.oid) && sub.engine.is_some() {
                    return Self::patch(sub, &Arc::clone(snapshot), now, &changed);
                }
                // The query object itself changed, there is no engine to
                // reuse, or commits raced past `now` while we looked —
                // re-evaluate wholesale at the snapshot's epoch.
            }
            None => {
                // Truncation: the log can no longer prove what happened
                // since the answer was computed — patching would silently
                // miss the evicted mutations, so fall through to the full
                // re-evaluation.
            }
        }
        let snapshot = Arc::clone(lazy.get_or_insert_with(|| store.snapshot()));
        sub.stats.rebuilt += 1;
        Self::reevaluate(sub, &snapshot, snapshot.epoch());
    }

    /// The incremental re-eval: re-plan (cheap, index-backed prefilter),
    /// reuse every unchanged candidate's difference function from the
    /// carried engine, build fresh functions only for candidates the
    /// delta touched, and rebuild the envelope over the merged set. The
    /// candidate set and every function value are exactly what a cold
    /// plan would produce, so the answer is bit-identical — only the
    /// per-candidate difference construction is skipped.
    fn patch(sub: &mut SubState, snapshot: &Arc<QuerySnapshot>, now: u64, changed: &BTreeSet<Oid>) {
        let plan =
            match QueryPlanner::new(sub.policy).plan(Arc::clone(snapshot), sub.oid, sub.window) {
                Ok(plan) => plan,
                Err(e) => {
                    // The commit was absorbed by an (empty-answer)
                    // rebuild attempt.
                    sub.stats.rebuilt += 1;
                    return sub.park(now, e.to_string());
                }
            };
        let old = Arc::clone(
            sub.engine
                .as_ref()
                .expect("patch requires a carried engine"),
        );
        let old_fns: HashMap<Oid, &DistanceFunction> =
            old.functions().iter().map(|f| (f.owner(), f)).collect();
        let query_tr = plan.query_trajectory();
        let mut fs: Vec<DistanceFunction> = Vec::with_capacity(plan.candidate_count());
        let (mut reused, mut built) = (0u64, 0u64);
        for tr in plan.candidate_trajectories() {
            let oid = tr.oid();
            if !changed.contains(&oid) {
                if let Some(f) = old_fns.get(&oid) {
                    fs.push((*f).clone());
                    reused += 1;
                    continue;
                }
            }
            match CandidateSet::build(query_tr, std::iter::once(tr), &sub.window) {
                Ok(set) => {
                    debug_assert_eq!(set.len(), 1);
                    fs.extend(set.into_functions());
                    built += 1;
                }
                Err(e) => {
                    sub.stats.rebuilt += 1;
                    return sub.park(now, e.to_string());
                }
            }
        }
        let query_tr = query_tr.clone();
        // Cheapest re-eval first: when the delta provably leaves the
        // lower envelope unchanged, carry it (no O(M log M) rebuild) and
        // recompute intervals only for the touched candidates; otherwise
        // rebuild envelope and answer over the merged function set.
        let is_fresh = |oid: Oid| changed.contains(&oid);
        let (engine, answer) = match old.carry_envelope(fs, plan.radius(), &is_fresh) {
            Ok(engine) => {
                let answer = match sub.rank {
                    None => engine.answer_set_reusing(&sub.answer, &is_fresh),
                    // Rank intervals depend on the k-level structure of
                    // the whole function set, not just the envelope —
                    // recompute them (the carried envelope still saves
                    // the construction).
                    Some(k) => engine.ranked_answer_set(k),
                };
                sub.stats.envelopes_carried += 1;
                (Arc::new(engine), answer)
            }
            Err(fs) => {
                let engine = Arc::new(QueryEngine::new(sub.oid, fs, plan.radius()));
                let answer = answer_of(&engine, sub.rank);
                (engine, answer)
            }
        };
        sub.stats.patched += 1;
        sub.stats.functions_reused += reused;
        sub.stats.functions_built += built;
        sub.commit_answer(engine, query_tr, answer, now);
    }

    /// The full re-plan: the same pipeline a cold query runs.
    fn reevaluate(sub: &mut SubState, snapshot: &Arc<QuerySnapshot>, now: u64) {
        match evaluate(snapshot, sub.oid, sub.window, sub.rank, sub.policy) {
            Ok((engine, query_tr, answer)) => sub.commit_answer(engine, query_tr, answer, now),
            Err(e) => sub.park(now, e),
        }
    }
}

/// Plans and evaluates one standing query from scratch.
fn evaluate(
    snapshot: &Arc<QuerySnapshot>,
    oid: Oid,
    window: TimeInterval,
    rank: Option<usize>,
    policy: PrefilterPolicy,
) -> Result<(Arc<QueryEngine>, Trajectory, AnswerSet), String> {
    let plan: QueryPlan = QueryPlanner::new(policy)
        .plan(Arc::clone(snapshot), oid, window)
        .map_err(|e| e.to_string())?;
    let query_tr = plan.query_trajectory().clone();
    let engine = Arc::new(plan.build_engine().map_err(|e| e.to_string())?);
    let answer = answer_of(&engine, rank);
    Ok((engine, query_tr, answer))
}

/// The engine's answer under the subscription's rank bound.
fn answer_of(engine: &QueryEngine, rank: Option<usize>) -> AnswerSet {
    match rank {
        Some(k) => engine.ranked_answer_set(k),
        None => engine.answer_set(),
    }
}

/// Renders an [`AnswerSet`] through a query's quantifier and target —
/// the same decision rules the one-shot execution path applies to its
/// engine, derived from the maintained qualification intervals instead.
pub fn render_output(query: &Query, answer: &AnswerSet) -> QueryOutput {
    let window = answer.window();
    let tol = 1e-7 * window.len().max(1.0);
    match &query.target {
        Target::One(name) => {
            let intervals = parse_object_name(name).and_then(|oid| answer.intervals_of(oid));
            let answer = match (&query.quantifier, intervals) {
                (Quantifier::Exists, iv) => iv.map(|iv| !iv.is_empty()).unwrap_or(false),
                (Quantifier::Forall, Some(iv)) => iv.covers_interval(window, tol),
                (Quantifier::Forall, None) => false,
                (Quantifier::AtLeast(x), iv) => {
                    let frac = iv.map(|iv| iv.total_len() / window.len()).unwrap_or(0.0);
                    frac + 1e-12 >= *x
                }
                (Quantifier::At(t), iv) => iv.map(|iv| iv.covers(*t)).unwrap_or(false),
            };
            QueryOutput::Boolean(answer)
        }
        Target::All => {
            let rows = answer
                .entries()
                .iter()
                .filter_map(|e| {
                    let frac = e.fraction(window);
                    match &query.quantifier {
                        Quantifier::Exists => Some((e.oid, frac)),
                        Quantifier::Forall => e
                            .intervals
                            .covers_interval(window, tol)
                            .then_some((e.oid, 1.0)),
                        Quantifier::AtLeast(x) => (frac + 1e-12 >= *x).then_some((e.oid, frac)),
                        Quantifier::At(t) => e.intervals.covers(*t).then_some((e.oid, frac)),
                    }
                })
                .collect();
            QueryOutput::Objects(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ql::parser::parse;
    use unn_traj::trajectory::Trajectory;
    use unn_traj::uncertain::UncertainTrajectory;

    fn tr(oid: u64, y: f64) -> UncertainTrajectory {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (10.0, y, 10.0)]).unwrap(),
            0.5,
        )
        .unwrap()
    }

    fn populated_store() -> ModStore {
        let s = ModStore::new();
        s.bulk_load(vec![tr(0, 0.0), tr(1, 1.0), tr(2, 3.0), tr(3, 40.0)])
            .unwrap();
        s
    }

    fn star_query() -> Query {
        parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0")
            .unwrap()
    }

    #[test]
    fn register_evaluates_and_lists() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        let info = reg
            .register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        assert!(info.entries >= 1);
        assert_eq!(info.last_epoch, store.epoch());
        assert!(info.error.is_none());
        // Duplicate names are refused.
        assert!(matches!(
            reg.register(&store, "near0", star_query(), PrefilterPolicy::default()),
            Err(SubscriptionError::NameTaken(_))
        ));
        assert_eq!(reg.list().len(), 1);
        assert!(reg.unregister("near0"));
        assert!(!reg.unregister("near0"));
        assert!(reg.is_empty());
    }

    #[test]
    fn unsupported_statements_are_refused() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        let rnn =
            parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_RNN(*, Tr0, TIME) > 0")
                .unwrap();
        assert!(matches!(
            reg.register(&store, "r", rnn, PrefilterPolicy::default()),
            Err(SubscriptionError::Unsupported(_))
        ));
        let threshold =
            parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0.5")
                .unwrap();
        assert!(matches!(
            reg.register(&store, "t", threshold, PrefilterPolicy::default()),
            Err(SubscriptionError::Unsupported(_))
        ));
        let unknown =
            parse("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr99, TIME) > 0")
                .unwrap();
        assert!(matches!(
            reg.register(&store, "u", unknown, PrefilterPolicy::default()),
            Err(SubscriptionError::Evaluation(_))
        ));
    }

    #[test]
    fn far_churn_is_skipped_and_near_mutations_patch() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        // A far insertion cannot touch the 4r band: the skip path runs
        // and no delta is emitted.
        store.insert(tr(50, 90_000.0)).unwrap();
        let info = reg.info("near0").unwrap();
        assert_eq!(info.stats.skipped, 1, "{info:?}");
        assert_eq!(info.last_epoch, store.epoch());
        assert_eq!(reg.drain("near0").unwrap(), vec![]);
        // A nearby insertion lands in the band: the patch path reuses the
        // old candidates' functions and emits an upsert for the newcomer.
        store.insert(tr(60, 0.5)).unwrap();
        let info = reg.info("near0").unwrap();
        assert_eq!(info.stats.patched, 1, "{info:?}");
        assert!(info.stats.functions_reused >= 2, "{info:?}");
        let deltas = reg.drain("near0").unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].upserts.iter().any(|e| e.oid == Oid(60)));
        assert_eq!(deltas[0].epoch, store.epoch());
        // Removing the newcomer emits the removal.
        store.remove(Oid(60)).unwrap();
        let deltas = reg.drain("near0").unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].removed.contains(&Oid(60)), "{deltas:?}");
        // The maintained answer equals a fresh evaluation throughout.
        let fresh = evaluate(
            &store.snapshot(),
            Oid(0),
            TimeInterval::new(0.0, 10.0),
            None,
            PrefilterPolicy::Exhaustive,
        )
        .unwrap()
        .2;
        assert_eq!(reg.answer("near0").unwrap(), fresh);
    }

    #[test]
    fn mutating_the_query_object_rebuilds() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        // Moving the query object invalidates every difference function.
        store.remove(Oid(0)).unwrap();
        let info = reg.info("near0").unwrap();
        assert!(info.error.is_some(), "query object gone: {info:?}");
        assert!(reg.answer("near0").unwrap().is_empty());
        // Its answers emptied out through the feed…
        let deltas = reg.drain("near0").unwrap();
        assert!(deltas.iter().any(|d| !d.removed.is_empty()));
        // …and re-registering the object revives the subscription.
        store.insert(tr(0, 0.0)).unwrap();
        let info = reg.info("near0").unwrap();
        assert!(info.error.is_none(), "{info:?}");
        assert!(info.entries >= 1);
        assert!(info.stats.rebuilt >= 2, "{info:?}");
    }

    #[test]
    fn render_matches_one_shot_semantics() {
        let store = populated_store();
        let reg = SubscriptionRegistry::new();
        for (name, stmt) in [
            (
                "exists",
                "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(*, Tr0, TIME) > 0",
            ),
            (
                "atleast",
                "SELECT * FROM MOD WHERE ATLEAST 0.5 OF TIME IN [0, 10] \
                 AND PROB_NN(*, Tr0, TIME) > 0",
            ),
            (
                "one",
                "SELECT Tr1 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr1, Tr0, TIME) > 0",
            ),
            (
                "far",
                "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 10] AND PROB_NN(Tr3, Tr0, TIME) > 0",
            ),
        ] {
            reg.register(
                &store,
                name,
                parse(stmt).unwrap(),
                PrefilterPolicy::default(),
            )
            .unwrap();
        }
        match reg.output("exists").unwrap() {
            QueryOutput::Objects(rows) => {
                let oids: Vec<Oid> = rows.iter().map(|(o, _)| *o).collect();
                assert!(oids.contains(&Oid(1)));
                assert!(!oids.contains(&Oid(3)), "far object must not qualify");
            }
            other => panic!("expected Objects, got {other:?}"),
        }
        assert_eq!(reg.output("one").unwrap(), QueryOutput::Boolean(true));
        assert_eq!(reg.output("far").unwrap(), QueryOutput::Boolean(false));
        match reg.output("atleast").unwrap() {
            QueryOutput::Objects(rows) => {
                for (_, frac) in rows {
                    assert!(frac >= 0.5 - 1e-9);
                }
            }
            other => panic!("expected Objects, got {other:?}"),
        }
    }

    #[test]
    fn feed_overflow_squashes_but_folds_identically() {
        let store = populated_store();
        let reg = Arc::new(SubscriptionRegistry::new());
        store.attach_subscriptions(&reg);
        reg.register(&store, "near0", star_query(), PrefilterPolicy::default())
            .unwrap();
        let initial = reg.answer("near0").unwrap();
        // Far more in-band churn than the feed retains.
        for k in 0..(FEED_CAPACITY as u64 + 40) {
            let oid = 100 + (k % 7);
            if store.contains(Oid(oid)) {
                store.remove(Oid(oid)).unwrap();
            }
            store.insert(tr(oid, 0.3 + (k % 5) as f64 * 0.1)).unwrap();
        }
        let info = reg.info("near0").unwrap();
        assert!(info.pending_deltas <= FEED_CAPACITY, "{info:?}");
        let deltas = reg.drain("near0").unwrap();
        let folded = deltas.iter().fold(initial, |acc, d| acc.apply(d));
        assert_eq!(folded, reg.answer("near0").unwrap());
    }
}
