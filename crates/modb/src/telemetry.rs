//! The unified telemetry core: one home for every operational number.
//!
//! Three pieces, mirroring the issue that introduced it:
//!
//! 1. A **lock-free metrics registry** ([`Telemetry`]): named counters,
//!    gauges, and log-bucketed latency histograms behind plain atomics,
//!    instrumented at every hot boundary of the seven-stage pipeline —
//!    commit latency, snapshot patch-vs-rebuild time, WAL append and
//!    fsync time, maintenance-round duration, per-ladder-rung counts,
//!    kernel columns refined vs coarse, frame encode time, outbox
//!    push-to-drain lag, and follower replication lag. The pre-existing
//!    stats structs ([`crate::cache::CacheStats`],
//!    [`crate::store::DeltaStats`], [`crate::durability::WalStatus`],
//!    [`crate::subscription::SubscriptionStats`]) are re-expressed as
//!    *views* over this registry by
//!    [`crate::server::ModServer::metrics_snapshot`], which merges them
//!    into one [`MetricsSnapshot`].
//!
//! 2. **Epoch-scoped tracing** ([`TraceRing`]): a bounded ring of
//!    structured [`TraceEvent`]s (epoch, stage, share id, ladder
//!    decision, duration) recorded per commit when enabled, so `TRACE
//!    EPOCH <e>` reconstructs exactly what one commit caused across the
//!    store, WAL, subscription index, and push fan-out. Disabled
//!    tracing compiles to a branch on a relaxed atomic ([`trace_on`]);
//!    the overhead of both switches is gated by `benches/telemetry.rs`.
//!
//! 3. **Exposition**: `SHOW METRICS [PREFIX <p>]` / `TRACE EPOCH <e>`
//!    statements (see [`crate::ql`]), wire-v5 Metrics/Trace frames
//!    (`docs/WIRE.md`), Prometheus-style text via
//!    [`MetricsSnapshot::render_prometheus`], and a JSON dump via
//!    [`MetricsSnapshot::to_json`] for `unn-cli serve --metrics-dump`.
//!
//! The full metric catalog lives in `docs/OBSERVABILITY.md`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Global enablement switches
// ---------------------------------------------------------------------

/// Metrics are recorded by default; the bare-path bench flips this off.
static METRICS_ON: AtomicBool = AtomicBool::new(true);

/// Tracing is off by default — it costs a ring-buffer push per event.
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// `true` when metric recording is enabled (one relaxed load — the
/// entire cost of the disabled path at every instrumentation site).
#[inline]
pub fn metrics_on() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Enables or disables metric recording process-wide.
pub fn set_metrics(on: bool) {
    METRICS_ON.store(on, Ordering::Relaxed);
}

/// `true` when epoch-scoped tracing is enabled (one relaxed load).
#[inline]
pub fn trace_on() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Enables or disables epoch-scoped tracing process-wide.
pub fn set_trace(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Nanoseconds since the process-wide monotonic base — a compact
/// timestamp for queue-lag measurements (enqueue stamps `now_ns`, the
/// drain subtracts).
pub fn now_ns() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------
// Primitives: counters, gauges, histograms
// ---------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (a relaxed fetch-add; skipped when metrics are off).
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_on() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that moves both ways (queue depths, lags).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge (skipped when metrics are off).
    #[inline]
    pub fn set(&self, v: u64) {
        if metrics_on() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to at least `v`.
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        if metrics_on() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets per histogram: bucket `i > 0` holds samples
/// whose bit length is `i` (the range `[2^(i-1), 2^i - 1]`), bucket `0`
/// holds exact zeros, and the last bucket absorbs everything above
/// `2^62`. 64 buckets cover the full `u64` nanosecond range — from
/// single nanoseconds past five centuries.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed latency histogram. Recording is one
/// relaxed fetch-add per of bucket/count/sum plus a fetch-max; reading
/// produces a [`HistogramSnapshot`] with p50/p90/p99/max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: its bit length, clamped to the last
/// bucket (zero lands in bucket 0).
#[inline]
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Records one sample (skipped when metrics are off).
    #[inline]
    pub fn record(&self, v: u64) {
        if !metrics_on() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy (buckets sparse, zero buckets elided).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u8, c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time histogram: sparse `(bucket, count)` pairs plus the
/// running count/sum/max. Snapshots merge ([`HistogramSnapshot::merge`])
/// and answer quantile queries ([`HistogramSnapshot::quantile`]); both
/// travel bit-exact over the wire (`docs/WIRE.md` § Metrics payload).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (nanoseconds for the latency histograms).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Sparse non-empty buckets, ascending by index; bucket `i > 0`
    /// covers `[2^(i-1), 2^i - 1]`, bucket 0 covers exact zeros.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The inclusive upper bound of bucket `idx`.
    fn bucket_upper(idx: u8) -> u64 {
        match idx {
            0 => 0,
            i if i as usize >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the upper bound of the
    /// bucket containing the `ceil(q·count)`-th sample, clamped to the
    /// observed maximum. Empty histograms answer 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= target {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket-resolution).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self`: counts and sums add, maxima take the
    /// larger, buckets merge index-wise (still sparse and ascending).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u8, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia == ib {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else {
                        merged.push((ib, cb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

// ---------------------------------------------------------------------
// Epoch-scoped tracing
// ---------------------------------------------------------------------

/// Which pipeline stage a [`TraceEvent`] was recorded at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceStage {
    /// The store commit itself (duration = commit latency).
    Commit = 0,
    /// One WAL record appended (duration = write + any fsync).
    WalAppend = 1,
    /// A query snapshot refreshed by patching deltas.
    SnapshotPatch = 2,
    /// A query snapshot rebuilt from scratch.
    SnapshotRebuild = 3,
    /// The subscription index visited one share (`share` = share id,
    /// `detail` = the ladder decision, see [`ladder_decision_name`]).
    Visit = 4,
    /// One maintenance round completed (duration = round wall-clock,
    /// `detail` = shares visited).
    Round = 5,
    /// One pushed frame encoded (`share` = share id).
    FrameEncode = 6,
    /// One commit replicated to followers (`detail` = payload bytes).
    Replicate = 7,
}

impl TraceStage {
    /// The stage for wire tag `v`, if valid.
    pub fn from_u8(v: u8) -> Option<TraceStage> {
        Some(match v {
            0 => TraceStage::Commit,
            1 => TraceStage::WalAppend,
            2 => TraceStage::SnapshotPatch,
            3 => TraceStage::SnapshotRebuild,
            4 => TraceStage::Visit,
            5 => TraceStage::Round,
            6 => TraceStage::FrameEncode,
            7 => TraceStage::Replicate,
            _ => return None,
        })
    }

    /// Human-readable stage name (stable — rendered by the CLI).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Commit => "commit",
            TraceStage::WalAppend => "wal-append",
            TraceStage::SnapshotPatch => "snapshot-patch",
            TraceStage::SnapshotRebuild => "snapshot-rebuild",
            TraceStage::Visit => "visit",
            TraceStage::Round => "round",
            TraceStage::FrameEncode => "frame-encode",
            TraceStage::Replicate => "replicate",
        }
    }
}

/// Ladder decision codes carried in a [`TraceStage::Visit`] event's
/// `detail` field.
pub const LADDER_SKIPPED: u64 = 0;
/// The share's engine was patched in place.
pub const LADDER_PATCHED: u64 = 1;
/// The share's engine was rebuilt from scratch.
pub const LADDER_REBUILT: u64 = 2;
/// The commit carried no ops relevant to the share's watermark.
pub const LADDER_EMPTY: u64 = 3;

/// Renders a ladder decision code (the `detail` of a visit event).
pub fn ladder_decision_name(detail: u64) -> &'static str {
    match detail {
        LADDER_SKIPPED => "skipped",
        LADDER_PATCHED => "patched",
        LADDER_REBUILT => "rebuilt",
        LADDER_EMPTY => "empty",
        _ => "?",
    }
}

/// One structured trace event: which epoch, which stage, which share
/// (0 when not share-scoped), a stage-specific detail code, and the
/// stage's duration in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The store epoch this event belongs to.
    pub epoch: u64,
    /// The pipeline stage.
    pub stage: TraceStage,
    /// The share id for share-scoped stages, 0 otherwise.
    pub share: u64,
    /// Stage-specific detail (ladder decision, bytes, share count…).
    pub detail: u64,
    /// Stage duration in nanoseconds (0 when not timed).
    pub dur_ns: u64,
}

/// How many trace events the ring retains before evicting the oldest.
pub const TRACE_RING_CAPACITY: usize = 4096;

/// A bounded ring of [`TraceEvent`]s. Pushes are gated on [`trace_on`]
/// *by the caller* (so disabled tracing never constructs an event); the
/// ring itself is a short critical section over a `VecDeque`.
#[derive(Debug, Default)]
pub struct TraceRing {
    events: Mutex<VecDeque<TraceEvent>>,
}

impl TraceRing {
    /// Appends one event, evicting the oldest past capacity.
    pub fn record(&self, ev: TraceEvent) {
        let mut ring = self.events.lock().unwrap();
        if ring.len() >= TRACE_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Every retained event of `epoch`, in recording order.
    pub fn events_for(&self, epoch: u64) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.epoch == epoch)
            .copied()
            .collect()
    }

    /// Number of retained events (bounded by [`TRACE_RING_CAPACITY`]).
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// The per-store metrics registry: every hot-path counter, gauge, and
/// histogram as a plain struct field (no name lookups on the hot path —
/// names are attached only when a [`MetricsSnapshot`] is taken).
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Commits applied (every mutator path).
    pub commits: Counter,
    /// Maintenance rounds completed by the subscription registry.
    pub maintenance_rounds: Counter,
    /// Ladder rung: shares skipped with an untouched-proof.
    pub ladder_skipped: Counter,
    /// Ladder rung: shares patched in place.
    pub ladder_patched: Counter,
    /// Ladder rung: shares rebuilt from scratch.
    pub ladder_rebuilt: Counter,
    /// Ladder rung: rounds absorbed without visiting (spatial index).
    pub ladder_unvisited: Counter,
    /// Kernel probability columns refined at full quadrature density.
    pub kernel_columns_refined: Counter,
    /// Kernel probability columns resolved at coarse density.
    pub kernel_columns_coarse: Counter,
    /// Pushed frames encoded (encode-once, fan-out shared).
    pub frames_encoded: Counter,
    /// Commits replicated to the follower hub.
    pub repl_frames: Counter,
    /// Replication payload bytes published.
    pub repl_bytes: Counter,
    /// Worst follower lag at last publish, in queued epochs.
    pub repl_lag_epochs: Gauge,
    /// Worst follower lag at last publish, in queued bytes.
    pub repl_lag_bytes: Gauge,
    /// Commit latency (mutator entry to delta published).
    pub commit_ns: Histogram,
    /// Snapshot refresh time when deltas were patched in.
    pub snapshot_patch_ns: Histogram,
    /// Snapshot refresh time when rebuilt from scratch.
    pub snapshot_rebuild_ns: Histogram,
    /// WAL record append time (write path, excluding fsync).
    pub wal_append_ns: Histogram,
    /// WAL fsync time (policy-dependent; empty under `os`).
    pub wal_fsync_ns: Histogram,
    /// Maintenance round wall-clock.
    pub maintenance_round_ns: Histogram,
    /// Pushed frame encode time.
    pub frame_encode_ns: Histogram,
    /// Outbox lag: event enqueued to event drained onto a socket.
    pub push_drain_lag_ns: Histogram,
    /// Commit start to pushed frame handed to a socket.
    pub commit_to_push_ns: Histogram,
    /// `now_ns` at the start of the most recent commit (the anchor the
    /// push path subtracts to sample `commit_to_push_ns`).
    pub last_commit_start: AtomicU64,
    /// The epoch-scoped trace ring.
    pub trace: TraceRing,
}

impl Telemetry {
    /// A fresh registry with every number at zero.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Records a trace event if tracing is enabled (the disabled path
    /// is one relaxed load).
    #[inline]
    pub fn trace_event(&self, ev: TraceEvent) {
        if trace_on() {
            self.trace.record(ev);
        }
    }

    /// The registry's own counters/gauges/histograms as a snapshot
    /// (derived views from the legacy stats structs are merged in by
    /// [`crate::server::ModServer::metrics_snapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = vec![
            ("store_commits_total", &self.commits),
            ("maintenance_rounds_total", &self.maintenance_rounds),
            ("ladder_skipped_total", &self.ladder_skipped),
            ("ladder_patched_total", &self.ladder_patched),
            ("ladder_rebuilt_total", &self.ladder_rebuilt),
            ("ladder_unvisited_total", &self.ladder_unvisited),
            ("kernel_columns_refined_total", &self.kernel_columns_refined),
            ("kernel_columns_coarse_total", &self.kernel_columns_coarse),
            ("frames_encoded_total", &self.frames_encoded),
            ("repl_frames_total", &self.repl_frames),
            ("repl_bytes_total", &self.repl_bytes),
        ]
        .into_iter()
        .map(|(n, c)| (n.to_string(), c.get()))
        .collect();
        let gauges = vec![
            ("repl_lag_epochs".to_string(), self.repl_lag_epochs.get()),
            ("repl_lag_bytes".to_string(), self.repl_lag_bytes.get()),
        ];
        let histograms = vec![
            ("commit_ns", &self.commit_ns),
            ("snapshot_patch_ns", &self.snapshot_patch_ns),
            ("snapshot_rebuild_ns", &self.snapshot_rebuild_ns),
            ("wal_append_ns", &self.wal_append_ns),
            ("wal_fsync_ns", &self.wal_fsync_ns),
            ("maintenance_round_ns", &self.maintenance_round_ns),
            ("frame_encode_ns", &self.frame_encode_ns),
            ("push_drain_lag_ns", &self.push_drain_lag_ns),
            ("commit_to_push_ns", &self.commit_to_push_ns),
        ]
        .into_iter()
        .map(|(n, h)| (n.to_string(), h.snapshot()))
        .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots and rendering
// ---------------------------------------------------------------------

/// A point-in-time view of every metric: plain `(name, value)` rows for
/// counters and gauges plus named [`HistogramSnapshot`]s. This is the
/// payload of the wire `Metrics` output and the unit the CLI renders.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, ascending by name.
    pub gauges: Vec<(String, u64)>,
    /// Latency histograms, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Drops every row whose name does not start with `prefix` (the
    /// `SHOW METRICS PREFIX <p>` filter).
    pub fn retain_prefix(&mut self, prefix: &str) {
        self.counters.retain(|(n, _)| n.starts_with(prefix));
        self.gauges.retain(|(n, _)| n.starts_with(prefix));
        self.histograms.retain(|(n, _)| n.starts_with(prefix));
    }

    /// Sorts every section by name (canonical order for rendering and
    /// deterministic wire payloads).
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Total number of rows across all three sections.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` when no rows survived (e.g. an unmatched prefix).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prometheus-style text exposition: counters and gauges as plain
    /// samples, histograms as summaries with p50/p90/p99 quantile rows
    /// plus `_sum`, `_count`, and `_max`. Every family is prefixed
    /// `unn_`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE unn_{name} counter");
            let _ = writeln!(out, "unn_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE unn_{name} gauge");
            let _ = writeln!(out, "unn_{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE unn_{name} summary");
            for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                let _ = writeln!(out, "unn_{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "unn_{name}_sum {}", h.sum);
            let _ = writeln!(out, "unn_{name}_count {}", h.count);
            let _ = writeln!(out, "unn_{name}_max {}", h.max);
        }
        out
    }

    /// A JSON rendering of the snapshot (the `--metrics-dump` format):
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`,
    /// histogram objects carrying count/sum/max, the three quantiles,
    /// and the sparse buckets. Metric names are ASCII identifiers, so
    /// no string escaping is required.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            );
            for (j, (idx, c)) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{idx}, {c}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::default().snapshot();
        assert_eq!(h.count, 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn single_bucket_quantiles_collapse_to_max() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(100);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 1000);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets.len(), 1);
        // Every quantile sits in the one bucket, clamped to max.
        assert_eq!(s.p50(), 100);
        assert_eq!(s.p90(), 100);
        assert_eq!(s.p99(), 100);
        assert_eq!(s.mean(), 100);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(0, 2)]);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn quantiles_are_bucket_resolution_and_monotone() {
        let h = Histogram::default();
        // 90 fast samples (~1µs) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 resolves within the fast bucket [512, 1023]... 1000 has
        // bit length 10, so its bucket upper bound is 1023.
        assert_eq!(s.p50(), 1023);
        assert_eq!(s.p90(), 1023);
        // p99 falls among the slow samples, clamped to the observed max.
        assert_eq!(s.p99(), 1_000_000);
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
        assert!(s.p99() <= s.max);
    }

    #[test]
    fn merge_combines_counts_sums_and_buckets() {
        let (a, b) = (Histogram::default(), Histogram::default());
        a.record(10);
        a.record(1_000);
        b.record(10);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 10 + 1_000 + 10 + 1_000_000);
        assert_eq!(m.max, 1_000_000);
        // Shared bucket (the two 10s) merged; each index at most once.
        let idx10 = super::bucket_of(10) as u8;
        assert_eq!(
            m.buckets.iter().find(|(i, _)| *i == idx10),
            Some(&(idx10, 2))
        );
        let indices: Vec<u8> = m.buckets.iter().map(|(i, _)| *i).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(indices, sorted, "buckets ascending and unique");
        // Merging an empty snapshot is the identity.
        let before = m.clone();
        m.merge(&HistogramSnapshot::default());
        assert_eq!(m, before);
        // Merging *into* an empty snapshot copies.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn metrics_switch_gates_recording() {
        let h = Histogram::default();
        let c = Counter::default();
        set_metrics(false);
        h.record(42);
        c.inc();
        set_metrics(true);
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(c.get(), 0);
        h.record(42);
        c.inc();
        assert_eq!(h.snapshot().count, 1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn trace_ring_bounds_and_filters() {
        let ring = TraceRing::default();
        for epoch in 0..(TRACE_RING_CAPACITY as u64 + 100) {
            ring.record(TraceEvent {
                epoch,
                stage: TraceStage::Commit,
                share: 0,
                detail: 0,
                dur_ns: epoch,
            });
        }
        assert_eq!(ring.len(), TRACE_RING_CAPACITY);
        // The oldest 100 epochs were evicted.
        assert!(ring.events_for(50).is_empty());
        let newest = ring.events_for(TRACE_RING_CAPACITY as u64 + 99);
        assert_eq!(newest.len(), 1);
        assert_eq!(newest[0].stage, TraceStage::Commit);
    }

    #[test]
    fn trace_event_gated_by_switch() {
        let t = Telemetry::new();
        let ev = TraceEvent {
            epoch: 7,
            stage: TraceStage::Visit,
            share: 3,
            detail: LADDER_PATCHED,
            dur_ns: 10,
        };
        t.trace_event(ev); // tracing off by default
        assert!(t.trace.events_for(7).is_empty());
        set_trace(true);
        t.trace_event(ev);
        set_trace(false);
        assert_eq!(t.trace.events_for(7), vec![ev]);
    }

    #[test]
    fn stage_codes_round_trip() {
        for code in 0..8u8 {
            let stage = TraceStage::from_u8(code).expect("valid stage");
            assert_eq!(stage as u8, code);
            assert!(!stage.name().is_empty());
        }
        assert_eq!(TraceStage::from_u8(99), None);
        assert_eq!(ladder_decision_name(LADDER_REBUILT), "rebuilt");
        assert_eq!(ladder_decision_name(42), "?");
    }

    #[test]
    fn snapshot_prefix_filter_and_render() {
        let t = Telemetry::new();
        t.commits.add(3);
        t.commit_ns.record(1_000);
        t.repl_lag_epochs.set(2);
        let mut snap = t.snapshot();
        snap.sort();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "store_commits_total" && *v == 3));
        let text = snap.render_prometheus();
        assert!(text.contains("unn_store_commits_total 3"), "{text}");
        assert!(text.contains("unn_repl_lag_epochs 2"), "{text}");
        assert!(text.contains("unn_commit_ns{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("unn_commit_ns_count 1"), "{text}");
        let json = snap.to_json();
        assert!(json.contains("\"store_commits_total\": 3"), "{json}");
        assert!(json.contains("\"commit_ns\""), "{json}");
        // Prefix filtering keeps only matching families.
        snap.retain_prefix("wal_");
        assert!(snap.counters.is_empty());
        assert_eq!(snap.histograms.len(), 2, "{:?}", snap.histograms);
        let mut none = t.snapshot();
        none.retain_prefix("no_such_prefix");
        assert!(none.is_empty());
    }
}
