//! The cone pdf of the paper's Eq. 7 (Example 4).
//!
//! The paper states: "the convolution of two cylinders with heights
//! `1/(r²π)` is a cone whose base is a circle with radius `2r` and height
//! `3/(4r²π)`", and uses it as the pdf of the difference `V_i − V_q` of
//! two independent uniform locations.
//!
//! **Reproduction note.** The cone is a valid rotationally symmetric pdf
//! (it integrates to one) but it is *not* the exact convolution — the true
//! difference pdf is the disk autocorrelation implemented in
//! [`crate::uniform_diff`], with peak `1/(πr²)` (4/3 of the cone's). We
//! keep the cone for fidelity to the paper's text; every result the paper
//! derives from the convolution (rotational symmetry, support `2r`,
//! monotone decay, Lemma 1, Theorem 1) holds for both shapes.

use crate::pdf::RadialPdf;
use rand::Rng;
use rand::RngCore;
use std::f64::consts::PI;
use unn_geom::point::Vec2;

/// The cone density `(3 / (4 r² π)) · (1 − s / 2r)` on a disk of radius
/// `2r`, where `r` is the radius of the two convolved uniform disks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConePdf {
    /// Radius of the *original* uniform disks (support is `2r`).
    r: f64,
    peak: f64,
}

impl ConePdf {
    /// Creates the cone pdf for original disk radius `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is non-positive or not finite.
    pub fn new(r: f64) -> Self {
        assert!(
            r.is_finite() && r > 0.0,
            "cone pdf requires positive r, got {r}"
        );
        ConePdf {
            r,
            peak: 3.0 / (4.0 * r * r * PI),
        }
    }

    /// The original uniform-disk radius `r` (the support radius is `2r`).
    pub fn original_radius(&self) -> f64 {
        self.r
    }
}

impl RadialPdf for ConePdf {
    fn support_radius(&self) -> f64 {
        2.0 * self.r
    }

    fn density(&self, s: f64) -> f64 {
        if s <= 2.0 * self.r {
            self.peak * (1.0 - s / (2.0 * self.r))
        } else {
            0.0
        }
    }

    fn density_bound(&self) -> f64 {
        self.peak
    }

    fn mass_within(&self, radius: f64) -> f64 {
        // M(R) = ∫_0^R peak (1 - s/2r) 2π s ds
        //      = 2π·peak (R²/2 − R³/(6r)) = 3R²/(4r²) − R³/(4r³).
        if radius <= 0.0 {
            return 0.0;
        }
        let rr = radius.min(2.0 * self.r);
        let m = 3.0 * rr * rr / (4.0 * self.r * self.r)
            - rr * rr * rr / (4.0 * self.r * self.r * self.r);
        m.clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Vec2 {
        // Inverse transform on the radial CDF M(s) = 3s²/4r² − s³/4r³,
        // solved by bracketed Newton iteration.
        let u: f64 = rng.random_range(0.0..1.0);
        let (mut lo, mut hi) = (0.0, 2.0 * self.r);
        let mut s = self.r; // initial guess
        for _ in 0..60 {
            let m = self.mass_within(s) - u;
            if m.abs() < 1e-12 {
                break;
            }
            if m > 0.0 {
                hi = s;
            } else {
                lo = s;
            }
            let dens = self.density(s) * 2.0 * PI * s;
            let next = if dens > 1e-12 {
                s - m / dens
            } else {
                0.5 * (lo + hi)
            };
            s = if next > lo && next < hi {
                next
            } else {
                0.5 * (lo + hi)
            };
        }
        let theta: f64 = rng.random_range(0.0..(2.0 * PI));
        Vec2::new(s * theta.cos(), s * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::total_mass;
    use rand::SeedableRng;

    #[test]
    fn peak_and_support_match_paper() {
        let c = ConePdf::new(1.0);
        assert_eq!(c.support_radius(), 2.0);
        assert!((c.density(0.0) - 3.0 / (4.0 * PI)).abs() < 1e-15);
        assert_eq!(c.density(2.0), 0.0);
        assert_eq!(c.density(2.1), 0.0);
        // linear decay: half the peak at s = r.
        assert!((c.density(1.0) - 0.5 * c.density(0.0)).abs() < 1e-15);
    }

    #[test]
    fn total_mass_is_one() {
        for r in [0.1, 0.5, 1.0, 2.5] {
            let c = ConePdf::new(r);
            assert!((total_mass(&c) - 1.0).abs() < 1e-12, "r={r}");
            // Closed form at full support.
            assert!((c.mass_within(2.0 * r) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_within_matches_numeric_integration() {
        let c = ConePdf::new(1.3);
        for frac in [0.1f64, 0.3, 0.5, 0.8, 1.0, 1.7] {
            let rr = frac * 1.3;
            let numeric = crate::integrate::adaptive_simpson(
                &|s: f64| c.density(s) * 2.0 * PI * s,
                0.0,
                rr.min(2.6),
                1e-12,
                40,
            );
            assert!(
                (c.mass_within(rr) - numeric).abs() < 1e-9,
                "frac {frac}: {} vs {numeric}",
                c.mass_within(rr)
            );
        }
    }

    #[test]
    fn sampler_matches_radial_cdf() {
        // Empirical mass within R must match the closed form.
        let c = ConePdf::new(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 30_000;
        let mut within_1 = 0usize;
        for _ in 0..n {
            let v = c.sample(&mut rng);
            assert!(v.norm() <= 2.0 + 1e-9);
            if v.norm() <= 1.0 {
                within_1 += 1;
            }
        }
        let frac = within_1 as f64 / n as f64;
        let expected = c.mass_within(1.0); // = 3/4 - 1/4 = 0.5
        assert!((expected - 0.5).abs() < 1e-12);
        assert!((frac - expected).abs() < 0.02, "frac {frac}");
    }
}
