//! Convolution of rotationally symmetric pdfs (§3.1).
//!
//! The pdf of `V_iq = V_i − V_q` is the convolution of the pdfs of `V_i`
//! and `−V_q` (Eq. 6 of the paper). Property 1: centroids add. Property 2:
//! the convolution of two rotationally symmetric pdfs is rotationally
//! symmetric. This module computes that convolution numerically for
//! arbitrary [`RadialPdf`]s. (The uniform ∗ uniform case has the exact
//! closed form of [`crate::uniform_diff`]; the paper's Eq. 7 cone is only
//! an approximation of it — see that module's documentation.)

use crate::integrate::GaussLegendre;
use crate::pdf::RadialPdf;
use std::f64::consts::PI;

/// A rotationally symmetric pdf given by sampled radial values on a
/// uniform grid, with linear interpolation in between.
///
/// Produced by [`convolve_radial`]; can also be used to wrap empirical
/// radial densities.
#[derive(Debug, Clone)]
pub struct NumericRadialPdf {
    support: f64,
    step: f64,
    vals: Vec<f64>,
    bound: f64,
}

impl NumericRadialPdf {
    /// Wraps raw samples `vals[k] = density(k * step)` covering
    /// `[0, support]`, renormalizing so the total 2D mass is one.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two samples are supplied or the support is
    /// not positive.
    pub fn from_samples(support: f64, vals: Vec<f64>) -> Self {
        assert!(vals.len() >= 2, "need at least two radial samples");
        assert!(
            support > 0.0 && support.is_finite(),
            "invalid support {support}"
        );
        let step = support / (vals.len() - 1) as f64;
        let mut pdf = NumericRadialPdf {
            support,
            step,
            vals,
            bound: 0.0,
        };
        // Normalize: total mass = ∫ density(s) 2π s ds via trapezoids on
        // the sample grid (consistent with the interpolation rule).
        let mass = pdf.grid_mass(pdf.vals.len() - 1);
        assert!(mass > 0.0, "radial samples integrate to zero");
        for v in &mut pdf.vals {
            *v /= mass;
        }
        pdf.bound = pdf.vals.iter().fold(0.0f64, |m, &v| m.max(v));
        pdf
    }

    /// Trapezoidal mass of `density(s)·2πs` over the first `upto` panels.
    fn grid_mass(&self, upto: usize) -> f64 {
        let mut acc = 0.0;
        for k in 0..upto {
            let s0 = k as f64 * self.step;
            let s1 = (k + 1) as f64 * self.step;
            let f0 = self.vals[k] * 2.0 * PI * s0;
            let f1 = self.vals[k + 1] * 2.0 * PI * s1;
            acc += 0.5 * (f0 + f1) * self.step;
        }
        acc
    }
}

impl RadialPdf for NumericRadialPdf {
    fn support_radius(&self) -> f64 {
        self.support
    }

    fn density(&self, s: f64) -> f64 {
        if s < 0.0 || s > self.support {
            return 0.0;
        }
        let x = s / self.step;
        let k = (x.floor() as usize).min(self.vals.len() - 2);
        let frac = x - k as f64;
        self.vals[k] * (1.0 - frac) + self.vals[k + 1] * frac
    }

    fn density_bound(&self) -> f64 {
        self.bound
    }
}

/// Numerically convolves two rotationally symmetric pdfs, producing the
/// radial density of the sum/difference variable on a grid of
/// `grid_points` samples.
///
/// For rotationally symmetric `g` and `h`, the convolution at radius `ρ` is
///
/// ```text
/// f(ρ) = ∫_0^{S_g} g(a) · a · [ 2 ∫_0^π h(√(ρ² + a² − 2ρa·cosθ)) dθ ] da
/// ```
///
/// evaluated with Gauss–Legendre quadrature in both variables. The result
/// is renormalized to unit mass, absorbing quadrature error.
pub fn convolve_radial(
    g: &dyn RadialPdf,
    h: &dyn RadialPdf,
    grid_points: usize,
) -> NumericRadialPdf {
    let grid_points = grid_points.max(16);
    let support = g.support_radius() + h.support_radius();
    let outer = GaussLegendre::new(64);
    let inner = GaussLegendre::new(64);
    let mut vals = Vec::with_capacity(grid_points);
    for k in 0..grid_points {
        let rho = support * k as f64 / (grid_points - 1) as f64;
        let f = outer.integrate(
            |a: f64| {
                if a <= 0.0 {
                    return 0.0;
                }
                let ga = g.density(a);
                if ga == 0.0 {
                    return 0.0;
                }
                // The inner integrand vanishes once the argument distance
                // s(θ) = √(ρ² + a² − 2ρa·cosθ) exceeds h's support; s(θ)
                // is increasing in θ, so integrate only up to the crossing
                // angle. This keeps Gauss–Legendre on a smooth integrand
                // even for pdfs with boundary jumps (e.g. uniform).
                let sh = h.support_radius();
                if rho > 0.0 && (rho - a).abs() >= sh {
                    return 0.0;
                }
                let theta_max = if rho == 0.0 || rho + a <= sh {
                    PI
                } else {
                    ((rho * rho + a * a - sh * sh) / (2.0 * rho * a))
                        .clamp(-1.0, 1.0)
                        .acos()
                };
                let ang = inner.integrate(
                    |theta: f64| {
                        let d2 = rho * rho + a * a - 2.0 * rho * a * theta.cos();
                        h.density(d2.max(0.0).sqrt())
                    },
                    0.0,
                    theta_max,
                );
                ga * a * 2.0 * ang
            },
            0.0,
            g.support_radius(),
        );
        vals.push(f.max(0.0));
    }
    NumericRadialPdf::from_samples(support, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::ConePdf;
    use crate::gaussian::TruncatedGaussianPdf;
    use crate::pdf::total_mass;
    use crate::uniform::UniformDiskPdf;
    use crate::uniform_diff::UniformDifferencePdf;

    #[test]
    fn numeric_pdf_interpolates_and_normalizes() {
        // Flat samples -> uniform disk after normalization.
        let p = NumericRadialPdf::from_samples(2.0, vec![5.0; 33]);
        let expected = 1.0 / (PI * 4.0);
        assert!((p.density(0.0) - expected).abs() < 1e-9);
        assert!((p.density(1.37) - expected).abs() < 1e-9);
        assert_eq!(p.density(2.5), 0.0);
        assert!((total_mass(&p) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_convolved_with_uniform_is_disk_autocorrelation() {
        // Example 4 / Eq. 7 of the paper claim a *cone*; the exact
        // convolution is the disk autocorrelation (lens-area shape). The
        // numeric convolution must match the exact shape, and visibly
        // deviate from the cone at the center.
        let u = UniformDiskPdf::new(1.0);
        let conv = convolve_radial(&u, &u, 128);
        let exact = UniformDifferencePdf::new(1.0);
        let cone = ConePdf::new(1.0);
        assert!((conv.support_radius() - 2.0).abs() < 1e-12);
        for s in [0.0, 0.3, 0.7, 1.0, 1.5, 1.9] {
            let a = conv.density(s);
            let b = exact.density(s);
            assert!(
                (a - b).abs() < 5e-3 * exact.density(0.0),
                "s={s}: numeric {a} vs exact {b}"
            );
        }
        // The paper's cone underestimates the center density by 25%.
        assert!((conv.density(0.0) - cone.density(0.0)).abs() > 0.05);
        assert!((total_mass(&conv) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn convolution_mass_is_one_for_mixed_pdfs() {
        let u = UniformDiskPdf::new(0.8);
        let g = TruncatedGaussianPdf::new(1.2, 0.5);
        let conv = convolve_radial(&u, &g, 96);
        assert!((conv.support_radius() - 2.0).abs() < 1e-12);
        assert!((total_mass(&conv) - 1.0).abs() < 1e-6);
        // Rotational symmetry is structural; density must be finite and
        // non-negative everywhere.
        for s in [0.0, 0.5, 1.0, 1.5, 1.99] {
            let d = conv.density(s);
            assert!(d.is_finite() && d >= 0.0);
        }
    }

    #[test]
    fn convolution_is_commutative() {
        // Property of convolution: g ∗ h == h ∗ g.
        let u = UniformDiskPdf::new(0.6);
        let g = TruncatedGaussianPdf::new(1.0, 0.4);
        let a = convolve_radial(&u, &g, 64);
        let b = convolve_radial(&g, &u, 64);
        for s in [0.0, 0.4, 0.9, 1.3] {
            assert!(
                (a.density(s) - b.density(s)).abs() < 8e-3 * (1.0 + a.density(0.0)),
                "s={s}"
            );
        }
    }

    #[test]
    fn convolution_density_is_monotone_decreasing_for_unimodal_inputs() {
        let u = UniformDiskPdf::new(1.0);
        let conv = convolve_radial(&u, &u, 96);
        let mut prev = conv.density(0.0);
        let mut s = 0.05;
        while s < 2.0 {
            let d = conv.density(s);
            assert!(d <= prev + 1e-6, "not decreasing at s={s}");
            prev = d;
            s += 0.05;
        }
    }
}
