//! Discretized NN probabilities with explicit joint ("tie") terms.
//!
//! §2.2-IV of the paper observes that evaluating Eq. 5 alone does not
//! yield a probability space: `Σ_i P^NN_i < 1`, the missing mass being the
//! *joint* probability of several objects being nearest neighbors
//! simultaneously (Eq. 6). For **continuous** distance distributions exact
//! ties have probability zero and Eq. 5 alone sums to one (the paper's
//! integrals of density *products* vanish); the discrepancy materializes
//! when the computation is discretized, as in Cheng et al.'s histogram
//! evaluation — two objects falling into the same distance bin are a tie
//! with non-zero probability.
//!
//! This module makes the paper's discussion concrete: it discretizes each
//! candidate's distance distribution into bins and computes
//!
//! * the **exclusive** probability `P^NNE_j` (only `j` in the minimal bin),
//! * the **joint** terms of order 2 and 3 (pairs/triples sharing the
//!   minimal bin — the sums written out in §2.2-IV),
//! * the total mass recovered up to a given order, which converges to 1 as
//!   the order grows or the bins shrink.

use crate::nn_prob::NnCandidate;
use crate::within_distance::{distance_bounds, within_distance_auto};

/// Discretized NN evaluation engine over `bins` equal-width distance bins.
#[derive(Debug)]
pub struct DiscretizedNn {
    /// `q[i][b]`: probability that candidate `i`'s distance falls in bin `b`.
    q: Vec<Vec<f64>>,
    /// `s[i][b]`: probability that candidate `i`'s distance exceeds the top
    /// of bin `b`.
    s: Vec<Vec<f64>>,
    bins: usize,
}

impl DiscretizedNn {
    /// Builds the engine: the distance CDF of each candidate is exactly its
    /// within-distance probability `P^WD`, evaluated at the bin edges.
    pub fn new(cands: &[NnCandidate<'_>], bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        let hi = cands
            .iter()
            .map(|c| distance_bounds(c.pdf, c.center_distance).1)
            .fold(0.0, f64::max);
        let n = cands.len();
        let mut q = vec![vec![0.0; bins]; n];
        let mut s = vec![vec![0.0; bins]; n];
        for (i, c) in cands.iter().enumerate() {
            let mut cdf_lo = 0.0;
            for b in 0..bins {
                let edge_hi = hi * (b + 1) as f64 / bins as f64;
                let cdf_hi = within_distance_auto(c.pdf, c.center_distance, edge_hi);
                q[i][b] = (cdf_hi - cdf_lo).max(0.0);
                s[i][b] = (1.0 - cdf_hi).max(0.0);
                cdf_lo = cdf_hi;
            }
        }
        DiscretizedNn { q, s, bins }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// `true` when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Exclusive NN probability `P^NNE_j`: `j`'s distance lands in some bin
    /// while every other candidate's distance is strictly beyond that bin.
    pub fn exclusive(&self) -> Vec<f64> {
        let n = self.len();
        let mut out = vec![0.0; n];
        for b in 0..self.bins {
            // prefix/suffix products of the survival factors.
            let mut prefix = vec![1.0; n + 1];
            for i in 0..n {
                prefix[i + 1] = prefix[i] * self.s[i][b];
            }
            let mut suffix = vec![1.0; n + 1];
            for i in (0..n).rev() {
                suffix[i] = suffix[i + 1] * self.s[i][b];
            }
            for j in 0..n {
                out[j] += self.q[j][b] * prefix[j] * suffix[j + 1];
            }
        }
        out
    }

    /// Pairwise joint NN probability: for each `j`, the summed probability
    /// that `j` *ties* with exactly one other candidate in the minimal bin
    /// (the first sum of §2.2-IV).
    pub fn joint_pairs(&self) -> Vec<f64> {
        let n = self.len();
        let mut out = vec![0.0; n];
        for b in 0..self.bins {
            for j in 0..n {
                for k in (j + 1)..n {
                    let mut rest = 1.0;
                    for i in 0..n {
                        if i != j && i != k {
                            rest *= self.s[i][b];
                        }
                    }
                    let p = self.q[j][b] * self.q[k][b] * rest;
                    out[j] += p;
                    out[k] += p;
                }
            }
        }
        out
    }

    /// Triple joint NN probability per candidate (the second sum of
    /// §2.2-IV). Cubic in the number of candidates; intended for the small
    /// configurations where the decomposition is being studied.
    pub fn joint_triples(&self) -> Vec<f64> {
        let n = self.len();
        let mut out = vec![0.0; n];
        for b in 0..self.bins {
            for j in 0..n {
                for k in (j + 1)..n {
                    for l in (k + 1)..n {
                        let mut rest = 1.0;
                        for i in 0..n {
                            if i != j && i != k && i != l {
                                rest *= self.s[i][b];
                            }
                        }
                        let p = self.q[j][b] * self.q[k][b] * self.q[l][b] * rest;
                        out[j] += p;
                        out[k] += p;
                        out[l] += p;
                    }
                }
            }
        }
        out
    }

    /// Total probability mass recovered when ties are resolved at
    /// increasing order:
    ///
    /// * order 1 — `Σ_j P^NNE_j` (what Eq. 5 alone captures; `< 1`);
    /// * order 2 — adds each unordered pair tie once;
    /// * order 3 — adds each unordered triple tie once.
    ///
    /// As the order approaches the candidate count (or bins shrink) the
    /// total converges to exactly 1 (the telescoping identity
    /// `Σ_b [Π_i (q_i + s_i) − Π_i s_i] = 1`).
    pub fn total_mass(&self, order: usize) -> f64 {
        let mut total: f64 = self.exclusive().iter().sum();
        if order >= 2 {
            total += self.joint_pairs().iter().sum::<f64>() / 2.0;
        }
        if order >= 3 {
            total += self.joint_triples().iter().sum::<f64>() / 3.0;
        }
        total
    }

    /// The exact total mass across *all* orders, via the telescoping
    /// product identity — always 1 up to floating error; exposed for tests.
    pub fn total_mass_exact(&self) -> f64 {
        let n = self.len();
        let mut total = 0.0;
        for b in 0..self.bins {
            let mut all = 1.0;
            let mut none = 1.0;
            for i in 0..n {
                all *= self.q[i][b] + self.s[i][b];
                none *= self.s[i][b];
            }
            total += all - none;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformDiskPdf;

    fn setup() -> (UniformDiskPdf, Vec<f64>) {
        (UniformDiskPdf::new(1.0), vec![2.0, 2.3, 2.8, 3.1])
    }

    #[test]
    fn exclusive_sum_is_below_one_with_coarse_bins() {
        let (p, ds) = setup();
        let cands: Vec<NnCandidate> = ds
            .iter()
            .map(|&d| NnCandidate {
                center_distance: d,
                pdf: &p,
            })
            .collect();
        let engine = DiscretizedNn::new(&cands, 8);
        let total: f64 = engine.exclusive().iter().sum();
        assert!(total < 0.999, "coarse bins must lose tie mass, got {total}");
        assert!(total > 0.5);
    }

    #[test]
    fn joint_terms_recover_missing_mass() {
        let (p, ds) = setup();
        let cands: Vec<NnCandidate> = ds
            .iter()
            .map(|&d| NnCandidate {
                center_distance: d,
                pdf: &p,
            })
            .collect();
        let engine = DiscretizedNn::new(&cands, 8);
        let t1 = engine.total_mass(1);
        let t2 = engine.total_mass(2);
        let t3 = engine.total_mass(3);
        let exact = engine.total_mass_exact();
        assert!(t1 < t2 && t2 <= t3 + 1e-12, "t1={t1} t2={t2} t3={t3}");
        assert!(t3 <= exact + 1e-9);
        // With 4 candidates, order-4 ties remain; order 3 must already be
        // very close.
        assert!((t3 - exact).abs() < 0.02, "t3={t3} exact={exact}");
        assert!((exact - 1.0).abs() < 1e-6, "exact mass {exact}");
    }

    #[test]
    fn fine_bins_approach_continuous_behavior() {
        let (p, ds) = setup();
        let cands: Vec<NnCandidate> = ds
            .iter()
            .map(|&d| NnCandidate {
                center_distance: d,
                pdf: &p,
            })
            .collect();
        let coarse = DiscretizedNn::new(&cands, 8).total_mass(1);
        let fine = DiscretizedNn::new(&cands, 256).total_mass(1);
        assert!(
            fine > coarse,
            "finer bins must shrink tie mass: coarse {coarse}, fine {fine}"
        );
        assert!(fine > 0.98, "fine-bin exclusive mass {fine}");
    }

    #[test]
    fn discretized_exclusive_matches_continuous_ranking() {
        let (p, ds) = setup();
        let cands: Vec<NnCandidate> = ds
            .iter()
            .map(|&d| NnCandidate {
                center_distance: d,
                pdf: &p,
            })
            .collect();
        let excl = DiscretizedNn::new(&cands, 128).exclusive();
        for w in excl.windows(2) {
            assert!(w[0] > w[1], "ranking must follow distance: {excl:?}");
        }
    }
}
