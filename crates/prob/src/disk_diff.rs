//! The exact pdf of the difference of two independent uniform-disk
//! locations with **different** radii `r1`, `r2`.
//!
//! This generalizes [`crate::uniform_diff`] (the equal-radius case) and is
//! the probability substrate for the paper's last future-work item (§7:
//! "allow for different uncertainty zones of the object locations, i.e.,
//! circles with different radii"). For `V_1 ~ U(D(0, r1))` and
//! `V_2 ~ U(D(0, r2))` independent, the difference `W = V_1 − V_2` has
//! density
//!
//! ```text
//! f(w) = ∫ f_1(v + w) f_2(v) dv
//!      = lens_area(|w|; r1, r2) / (π r1² · π r2²) ,   0 ≤ |w| ≤ r1 + r2,
//! ```
//!
//! the normalized cross-correlation of the two disk indicators. It is
//! rotationally symmetric and monotonically non-increasing in `|w|` (flat
//! at `min(r1,r2)² / (r1² r2² π)` on `[0, |r1 − r2|]`, then strictly
//! decreasing), so Lemma 1 applies to each candidate *individually*;
//! however, with unequal radii different candidates have **different**
//! difference pdfs and Theorem 1's ranking-by-center-distance no longer
//! holds across candidates — see `unn-core::hetero` for the machinery
//! replacing it.

use crate::pdf::RadialPdf;
use crate::uniform::UniformDiskPdf;
use rand::RngCore;
use std::f64::consts::PI;
use unn_geom::circle::lens_area;
use unn_geom::point::Vec2;

/// Exact pdf of `V_1 − V_2` for independent uniform disks of radii `r1`
/// and `r2` (support radius `r1 + r2`).
#[derive(Debug, Clone)]
pub struct DiskDifferencePdf {
    r1: f64,
    r2: f64,
    peak: f64,
    s1: UniformDiskPdf,
    s2: UniformDiskPdf,
    /// Radial CDF on a uniform grid over `[0, r1 + r2]` for `mass_within`.
    cdf: Vec<f64>,
}

const CDF_GRID: usize = 2048;

impl DiskDifferencePdf {
    /// Creates the difference pdf for disk radii `r1`, `r2`.
    ///
    /// # Panics
    ///
    /// Panics when either radius is non-positive or not finite.
    pub fn new(r1: f64, r2: f64) -> Self {
        assert!(r1.is_finite() && r1 > 0.0, "invalid radius r1 = {r1}");
        assert!(r2.is_finite() && r2 > 0.0, "invalid radius r2 = {r2}");
        let norm = (PI * r1 * r1) * (PI * r2 * r2);
        let support = r1 + r2;
        let density = |s: f64| -> f64 {
            if s >= support {
                0.0
            } else {
                lens_area(s, r1, r2) / norm
            }
        };
        // Radial CDF by trapezoid accumulation of density(s)·2πs, then
        // normalized so the grid ends exactly at 1.
        let mut cdf = Vec::with_capacity(CDF_GRID + 1);
        cdf.push(0.0);
        let step = support / CDF_GRID as f64;
        let mut acc = 0.0;
        let mut prev = 0.0;
        for k in 1..=CDF_GRID {
            let s = k as f64 * step;
            let cur = density(s) * 2.0 * PI * s;
            acc += 0.5 * (prev + cur) * step;
            cdf.push(acc);
            prev = cur;
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        let rmin = r1.min(r2);
        DiskDifferencePdf {
            r1,
            r2,
            peak: (PI * rmin * rmin) / norm,
            s1: UniformDiskPdf::new(r1),
            s2: UniformDiskPdf::new(r2),
            cdf,
        }
    }

    /// The first disk radius.
    pub fn r1(&self) -> f64 {
        self.r1
    }

    /// The second disk radius.
    pub fn r2(&self) -> f64 {
        self.r2
    }
}

impl RadialPdf for DiskDifferencePdf {
    fn support_radius(&self) -> f64 {
        self.r1 + self.r2
    }

    fn density(&self, s: f64) -> f64 {
        if s < 0.0 || s >= self.r1 + self.r2 {
            0.0
        } else {
            lens_area(s, self.r1, self.r2) / ((PI * self.r1 * self.r1) * (PI * self.r2 * self.r2))
        }
    }

    fn density_bound(&self) -> f64 {
        self.peak
    }

    fn mass_within(&self, radius: f64) -> f64 {
        let support = self.r1 + self.r2;
        if radius <= 0.0 {
            return 0.0;
        }
        if radius >= support {
            return 1.0;
        }
        let x = radius / support * CDF_GRID as f64;
        let k = (x.floor() as usize).min(CDF_GRID - 1);
        let frac = x - k as f64;
        (self.cdf[k] * (1.0 - frac) + self.cdf[k + 1] * frac).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Vec2 {
        // Exact: the difference of independent uniform samples has
        // precisely this distribution.
        self.s1.sample(rng) - self.s2.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::total_mass;
    use crate::uniform_diff::UniformDifferencePdf;
    use rand::SeedableRng;

    #[test]
    fn reduces_to_equal_radius_difference_pdf() {
        let a = DiskDifferencePdf::new(1.2, 1.2);
        let b = UniformDifferencePdf::new(1.2);
        for s in [0.0, 0.4, 1.0, 1.7, 2.3, 2.4] {
            assert!(
                (a.density(s) - b.density(s)).abs() < 1e-12,
                "s={s}: {} vs {}",
                a.density(s),
                b.density(s)
            );
            assert!((a.mass_within(s) - b.mass_within(s)).abs() < 1e-6, "s={s}");
        }
        assert_eq!(a.support_radius(), b.support_radius());
    }

    #[test]
    fn total_mass_is_one() {
        for (r1, r2) in [(0.3, 1.0), (1.0, 1.0), (2.5, 0.5), (0.1, 3.0)] {
            let p = DiskDifferencePdf::new(r1, r2);
            assert!((total_mass(&p) - 1.0).abs() < 1e-6, "r1={r1} r2={r2}");
            assert!((p.mass_within(r1 + r2) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn flat_plateau_inside_radius_gap() {
        // For |s| ≤ |r1 − r2| the smaller disk is fully inside the larger:
        // density is constant at min² / (π r1² r2²).
        let p = DiskDifferencePdf::new(2.0, 0.5);
        let plateau = (0.5f64 * 0.5) / (PI * 2.0 * 2.0 * 0.5 * 0.5);
        for s in [0.0, 0.5, 1.0, 1.49] {
            assert!((p.density(s) - plateau).abs() < 1e-12, "s={s}");
        }
        // Beyond the gap it strictly decreases to zero at the support edge.
        assert!(p.density(1.6) < plateau);
        assert!(p.density(2.4) < p.density(1.6));
        assert_eq!(p.density(2.5), 0.0);
    }

    #[test]
    fn density_monotone_non_increasing() {
        for (r1, r2) in [(1.0, 0.4), (0.7, 2.0)] {
            let p = DiskDifferencePdf::new(r1, r2);
            let sup = r1 + r2;
            let mut prev = p.density(0.0);
            let mut s = sup / 400.0;
            while s < sup {
                let d = p.density(s);
                assert!(d <= prev + 1e-12, "r1={r1} r2={r2} s={s}");
                prev = d;
                s += sup / 400.0;
            }
        }
    }

    #[test]
    fn sampler_matches_cdf() {
        let p = DiskDifferencePdf::new(1.0, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let n = 40_000;
        for probe in [0.4, 0.9, 1.3] {
            let expected = p.mass_within(probe);
            let count = (0..n)
                .filter(|_| p.sample(&mut rng).norm() <= probe)
                .count();
            let frac = count as f64 / n as f64;
            assert!(
                (frac - expected).abs() < 0.015,
                "probe {probe}: frac {frac} vs cdf {expected}"
            );
        }
    }

    #[test]
    fn mass_within_monotone() {
        let p = DiskDifferencePdf::new(0.8, 1.7);
        let mut prev = 0.0;
        for k in 0..=100 {
            let s = k as f64 * 2.5 / 100.0;
            let m = p.mass_within(s);
            assert!(m + 1e-12 >= prev, "s={s}");
            prev = m;
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_radius() {
        let _ = DiskDifferencePdf::new(0.0, 1.0);
    }
}
