//! Gaussian location pdf truncated to a disk ("bounded Gaussian").
//!
//! Figure 3.c of the paper shows both uniform and bounded-Gaussian location
//! pdfs inside the uncertainty circle. The truncated Gaussian is
//! rotationally symmetric, so all results of §3 apply to it (Theorem 1).

use crate::pdf::RadialPdf;
use rand::Rng;
use std::f64::consts::PI;
use unn_geom::point::Vec2;

/// An isotropic 2D Gaussian with standard deviation `sigma`, truncated to
/// a disk of radius `radius` and renormalized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGaussianPdf {
    radius: f64,
    sigma: f64,
    /// Normalization constant: density(s) = norm · exp(−s²/(2σ²)).
    norm: f64,
    /// Total (untruncated) mass inside the disk: 1 − exp(−r²/(2σ²)).
    inside_mass: f64,
}

impl TruncatedGaussianPdf {
    /// Creates the pdf.
    ///
    /// # Panics
    ///
    /// Panics when `radius` or `sigma` is non-positive or not finite.
    pub fn new(radius: f64, sigma: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0 && sigma.is_finite() && sigma > 0.0,
            "truncated Gaussian requires positive radius and sigma (got r={radius}, σ={sigma})"
        );
        let inside_mass = 1.0 - (-radius * radius / (2.0 * sigma * sigma)).exp();
        let norm = 1.0 / (2.0 * PI * sigma * sigma * inside_mass);
        TruncatedGaussianPdf {
            radius,
            sigma,
            norm,
            inside_mass,
        }
    }

    /// The truncation radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The standard deviation of the underlying Gaussian.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl RadialPdf for TruncatedGaussianPdf {
    fn support_radius(&self) -> f64 {
        self.radius
    }

    fn density(&self, s: f64) -> f64 {
        if s <= self.radius {
            self.norm * (-s * s / (2.0 * self.sigma * self.sigma)).exp()
        } else {
            0.0
        }
    }

    fn density_bound(&self) -> f64 {
        self.norm
    }

    fn mass_within(&self, radius: f64) -> f64 {
        if radius <= 0.0 {
            return 0.0;
        }
        let rr = radius.min(self.radius);
        let raw = 1.0 - (-rr * rr / (2.0 * self.sigma * self.sigma)).exp();
        (raw / self.inside_mass).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> Vec2 {
        // Inverse transform on the radial CDF:
        //   F(s) = (1 − exp(−s²/2σ²)) / inside_mass  ⇒
        //   s = σ sqrt(−2 ln(1 − u · inside_mass)).
        let u: f64 = rng.random_range(0.0..1.0);
        let s = self.sigma * (-2.0 * (1.0 - u * self.inside_mass).ln()).sqrt();
        let s = s.min(self.radius);
        let theta: f64 = rng.random_range(0.0..(2.0 * PI));
        Vec2::new(s * theta.cos(), s * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::total_mass;
    use rand::SeedableRng;

    #[test]
    fn normalized() {
        for (r, s) in [(1.0, 0.3), (2.0, 1.0), (0.5, 5.0)] {
            let p = TruncatedGaussianPdf::new(r, s);
            assert!((total_mass(&p) - 1.0).abs() < 1e-8, "r={r} σ={s}");
        }
    }

    #[test]
    fn density_decreasing_and_truncated() {
        let p = TruncatedGaussianPdf::new(2.0, 0.8);
        assert!(p.density(0.0) > p.density(1.0));
        assert!(p.density(1.0) > p.density(2.0));
        assert!(p.density(2.0) > 0.0);
        assert_eq!(p.density(2.0001), 0.0);
        assert_eq!(p.density_bound(), p.density(0.0));
    }

    #[test]
    fn mass_within_closed_form_matches_numeric() {
        let p = TruncatedGaussianPdf::new(1.5, 0.6);
        for rr in [0.2, 0.5, 1.0, 1.5] {
            let numeric = crate::integrate::adaptive_simpson(
                &|s: f64| p.density(s) * 2.0 * PI * s,
                0.0,
                rr,
                1e-12,
                40,
            );
            assert!(
                (p.mass_within(rr) - numeric).abs() < 1e-8,
                "R={rr}: {} vs {numeric}",
                p.mass_within(rr)
            );
        }
    }

    #[test]
    fn sampler_matches_radial_cdf() {
        let p = TruncatedGaussianPdf::new(1.0, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 30_000;
        let r_half = 0.5;
        let expected = p.mass_within(r_half);
        let mut count = 0usize;
        for _ in 0..n {
            let v = p.sample(&mut rng);
            assert!(v.norm() <= 1.0 + 1e-9);
            if v.norm() <= r_half {
                count += 1;
            }
        }
        let frac = count as f64 / n as f64;
        assert!((frac - expected).abs() < 0.02, "frac {frac} vs {expected}");
    }

    #[test]
    fn wide_sigma_approaches_uniform() {
        // With σ >> r the truncated Gaussian is nearly flat.
        let p = TruncatedGaussianPdf::new(1.0, 100.0);
        let ratio = p.density(1.0) / p.density(0.0);
        assert!(ratio > 0.9999, "ratio {ratio}");
    }

    #[test]
    #[should_panic]
    fn invalid_sigma_panics() {
        let _ = TruncatedGaussianPdf::new(1.0, 0.0);
    }
}
