//! Numerical quadrature.
//!
//! The paper notes (§2.2) that "the actual evaluation of the integrals like
//! those in Equation (5) may often rely on numerical computations". This
//! module supplies the two quadratures used throughout the crate:
//! adaptive Simpson (for integrands with localized features, e.g. the
//! within-distance probability near support boundaries) and Gauss–Legendre
//! (for smooth angular integrals).

/// Adaptive Simpson integration of `f` over `[a, b]`.
///
/// `tol` is the absolute tolerance; recursion is capped at `max_depth`
/// levels (each level halves the panel), so the worst-case cost is bounded.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64, max_depth: u32) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    simpson_rec(f, a, b, fa, fm, fb, whole, tol, max_depth)
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_rec(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + simpson_rec(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

/// A Gauss–Legendre quadrature rule with `n` nodes on `[-1, 1]`.
///
/// Nodes and weights are generated with the classical Newton iteration on
/// the Legendre polynomial recurrence; accurate to near machine precision
/// for the orders used here (`n <= 128`).
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussLegendre {
    /// Builds the `n`-point rule.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Gauss-Legendre rule needs at least one node");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Initial guess (Chebyshev-like).
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut dp = 0.0;
            for _ in 0..100 {
                // Evaluate P_n(x) and P'_n(x) by recurrence.
                let mut p0 = 1.0;
                let mut p1 = x;
                if n == 1 {
                    p1 = x;
                }
                let mut pn = if n == 1 { p1 } else { 0.0 };
                if n >= 2 {
                    for k in 2..=n {
                        let pk = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                        p0 = p1;
                        p1 = pk;
                    }
                    pn = p1;
                } else {
                    p0 = 1.0;
                }
                dp = n as f64 * (x * pn - p0) / (x * x - 1.0);
                let dx = pn / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        if n % 2 == 1 {
            // Middle node of odd rules is exactly zero.
            nodes[n / 2] = 0.0;
        }
        GaussLegendre { nodes, weights }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the rule has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes on `[-1, 1]`, ascending.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// The weights matching [`GaussLegendre::nodes`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Returns the `k`-th node (on `[-1, 1]`) and its weight.
    pub fn node_weight(&self, k: usize) -> (f64, f64) {
        (self.nodes[k], self.weights[k])
    }

    /// Integrates `f` over `[a, b]`.
    pub fn integrate<F: Fn(f64) -> f64>(&self, f: F, a: f64, b: f64) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        let mut acc = 0.0;
        for (x, w) in self.nodes.iter().zip(&self.weights) {
            acc += w * f(mid + half * x);
        }
        acc * half
    }
}

/// Returns a process-wide shared Gauss–Legendre rule of order `n`.
///
/// Rule construction is deterministic, so a shared rule produces exactly
/// the same nodes and weights as a freshly built one — callers on hot
/// paths use this to avoid re-running the Newton iteration per call. The
/// small set of orders used by the crate is interned for the lifetime of
/// the process.
pub fn shared_rule(n: usize) -> &'static GaussLegendre {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static RULES: OnceLock<Mutex<HashMap<usize, &'static GaussLegendre>>> = OnceLock::new();
    let rules = RULES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = rules.lock().expect("shared rule registry poisoned");
    map.entry(n)
        .or_insert_with(|| Box::leak(Box::new(GaussLegendre::new(n))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact on cubics.
        let f = |x: f64| 3.0 * x * x * x - x + 2.0;
        let got = adaptive_simpson(&f, -1.0, 2.0, 1e-12, 30);
        // ∫ = 3/4 x^4 - x^2/2 + 2x over [-1,2] = (12 - 2 + 4) - (3/4 - 1/2 - 2)
        let expected = (0.75 * 16.0 - 2.0 + 4.0) - (0.75 - 0.5 - 2.0);
        assert!((got - expected).abs() < 1e-10);
    }

    #[test]
    fn simpson_transcendental() {
        let got = adaptive_simpson(&|x: f64| x.sin(), 0.0, PI, 1e-12, 40);
        assert!((got - 2.0).abs() < 1e-10, "{got}");
    }

    #[test]
    fn simpson_empty_interval() {
        assert_eq!(adaptive_simpson(&|x: f64| x, 1.0, 1.0, 1e-12, 10), 0.0);
    }

    #[test]
    fn simpson_handles_kink() {
        // |x| over [-1, 1] = 1
        let got = adaptive_simpson(&|x: f64| x.abs(), -1.0, 1.0, 1e-10, 40);
        assert!((got - 1.0).abs() < 1e-8, "{got}");
    }

    #[test]
    fn gauss_legendre_degree_exactness() {
        // n-point GL is exact for polynomials of degree 2n-1.
        let rule = GaussLegendre::new(5);
        let f = |x: f64| x.powi(9) + 3.0 * x.powi(4) - x + 1.0;
        // over [-1, 1]: odd terms vanish; ∫3x^4 = 6/5; ∫1 = 2
        let got = rule.integrate(f, -1.0, 1.0);
        assert!((got - (6.0 / 5.0 + 2.0)).abs() < 1e-12, "{got}");
    }

    #[test]
    fn gauss_legendre_scaled_interval() {
        let rule = GaussLegendre::new(32);
        let got = rule.integrate(|x: f64| x.exp(), 0.0, 1.0);
        assert!((got - (std::f64::consts::E - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_weights_sum_to_interval_length() {
        for n in [1, 2, 3, 7, 16, 33, 64] {
            let rule = GaussLegendre::new(n);
            let got = rule.integrate(|_| 1.0, -3.0, 5.0);
            assert!((got - 8.0).abs() < 1e-10, "n={n}: {got}");
        }
    }

    #[test]
    fn gauss_legendre_odd_rule_has_zero_node() {
        let rule = GaussLegendre::new(7);
        assert_eq!(rule.len(), 7);
        assert!(!rule.is_empty());
    }

    #[test]
    #[should_panic]
    fn gauss_legendre_zero_nodes_panics() {
        let _ = GaussLegendre::new(0);
    }
}
