//! # unn-prob
//!
//! Probability substrate for the `uncertain-nn` workspace — the Rust
//! reproduction of *"Continuous Probabilistic Nearest-Neighbor Queries for
//! Uncertain Trajectories"* (Trajcevski et al., EDBT 2009).
//!
//! Implements, from scratch:
//!
//! * [`pdf`] — the [`pdf::RadialPdf`] trait for rotationally symmetric
//!   location pdfs (the class Theorem 1 applies to) and the declarative
//!   [`pdf::PdfKind`];
//! * [`uniform`], [`gaussian`] — the paper's two location-pdf examples;
//! * [`cone`] — the closed-form convolution of two equal uniform disks
//!   (Eq. 7, Example 4);
//! * [`convolution`] — numeric radial convolution for everything else
//!   (Properties 1 & 2 of §3.1);
//! * [`integrate`] — adaptive Simpson and Gauss–Legendre quadrature;
//! * [`within_distance`] — `P^WD` (Eq. 3/4) and its density `pdf^WD`;
//! * [`nn_prob`] — the `P^NN` evaluator (Eq. 5) with the sorted-boundary
//!   decomposition of §2.2-III, plus a naive baseline;
//! * [`profile`] — [`profile::ProfiledPdf`], the dispatch-free `P^WD` /
//!   `pdf^WD` kernels (tabulated profiles + endpoint-regularized
//!   fixed-order quadrature) behind the batched row-maintenance path;
//! * [`monte_carlo`] — a simulation oracle;
//! * [`discretized`] — the §2.2-IV exclusive/joint decomposition under
//!   discretization;
//! * [`disk_diff`] — the exact difference pdf for **unequal** disk radii
//!   (substrate for the §7 heterogeneous-radii extension);
//! * [`quadruple`] — the §3.1 naive quadruple integration for the
//!   uncertain-query case: an independent oracle for the convolution
//!   identity and the baseline of the moving-convolution ablation.

#![warn(missing_docs)]

pub mod cone;
pub mod convolution;
pub mod discretized;
pub mod disk_diff;
pub mod gaussian;
pub mod integrate;
pub mod monte_carlo;
pub mod nn_prob;
pub mod pdf;
pub mod profile;
pub mod quadruple;
pub mod uniform;
pub mod uniform_diff;
pub mod within_distance;

pub use cone::ConePdf;
pub use disk_diff::DiskDifferencePdf;
pub use gaussian::TruncatedGaussianPdf;
pub use nn_prob::{nn_probabilities, NnCandidate, NnConfig};
pub use pdf::{PdfKind, RadialPdf};
pub use profile::{nn_probabilities_profiled, NnScratch, ProfiledPdf};
pub use uniform::UniformDiskPdf;
pub use uniform_diff::UniformDifferencePdf;
