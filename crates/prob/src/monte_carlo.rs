//! Monte Carlo estimation of NN probabilities.
//!
//! Used as an independent oracle against the analytic Eq. 5 evaluator and
//! for validating Theorem 1 (probability ranking == center-distance
//! ranking) on random configurations.

use crate::nn_prob::NnCandidate;
use rand::RngCore;
use unn_geom::point::Vec2;

/// Estimates `P^NN` for every candidate by direct simulation: in every
/// trial each candidate's location is sampled from its pdf (placed, by
/// rotational symmetry, with its center on the positive x-axis at the
/// candidate's center distance) and the closest location to the origin
/// wins the trial. Exact ties (probability zero for continuous pdfs)
/// split the trial evenly.
pub fn monte_carlo_nn_probabilities(
    cands: &[NnCandidate<'_>],
    trials: usize,
    rng: &mut dyn RngCore,
) -> Vec<f64> {
    let n = cands.len();
    if n == 0 {
        return vec![];
    }
    let mut wins = vec![0.0f64; n];
    let mut dists = vec![0.0f64; n];
    for _ in 0..trials {
        for (i, c) in cands.iter().enumerate() {
            let offset = c.pdf.sample(rng);
            let pos = Vec2::new(c.center_distance + offset.x, offset.y);
            dists[i] = pos.norm_sq();
        }
        let best = dists.iter().copied().fold(f64::INFINITY, f64::min);
        let winners: Vec<usize> = (0..n).filter(|&i| dists[i] == best).collect();
        let share = 1.0 / winners.len() as f64;
        for w in winners {
            wins[w] += share;
        }
    }
    wins.iter().map(|w| w / trials as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_prob::{nn_probabilities, NnConfig};
    use crate::uniform::UniformDiskPdf;
    use rand::SeedableRng;

    #[test]
    fn monte_carlo_matches_analytic() {
        let p = UniformDiskPdf::new(1.0);
        let cands = [
            NnCandidate {
                center_distance: 2.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 2.5,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 3.2,
                pdf: &p,
            },
        ];
        let analytic = nn_probabilities(&cands, NnConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        let mc = monte_carlo_nn_probabilities(&cands, 60_000, &mut rng);
        for (a, m) in analytic.iter().zip(&mc) {
            assert!((a - m).abs() < 0.01, "analytic {analytic:?} vs mc {mc:?}");
        }
    }

    #[test]
    fn monte_carlo_probabilities_sum_to_one() {
        let p = UniformDiskPdf::new(0.5);
        let cands = [
            NnCandidate {
                center_distance: 1.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 1.1,
                pdf: &p,
            },
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mc = monte_carlo_nn_probabilities(&cands, 10_000, &mut rng);
        let total: f64 = mc.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn empty_candidates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(monte_carlo_nn_probabilities(&[], 100, &mut rng).is_empty());
    }
}
