//! Nearest-neighbor probabilities `P^NN` (Eq. 5 of the paper).
//!
//! Given a crisp query point `Q` (after the convolution transform of §3.1
//! this covers the uncertain-query case too) and a set of uncertain
//! candidates, the probability that candidate `j` is the NN of `Q` is
//!
//! ```text
//! P^NN_j = ∫_0^∞ pdf^WD_j(R) · Π_{i≠j} (1 − P^WD_i(R)) dR .
//! ```
//!
//! §2.2-III observes that the integration can be restricted to the ring
//! `[R_min, R_max]` and split at the sorted `R_min_i` boundaries so that
//! factors that are identically one are skipped; [`nn_probabilities`]
//! implements exactly that scheme, while [`nn_probabilities_naive`] is the
//! unoptimized evaluator kept for the ablation benchmarks.

use crate::integrate::shared_rule;
use crate::pdf::RadialPdf;
use crate::within_distance::{distance_bounds, within_distance_auto, within_distance_density_auto};

/// One NN candidate: a rotationally symmetric pdf centered `center_distance`
/// away from the crisp query point.
#[derive(Debug)]
pub struct NnCandidate<'a> {
    /// Distance from the query point to the pdf center (expected location).
    pub center_distance: f64,
    /// The location pdf (for difference objects: the convolved pdf).
    pub pdf: &'a dyn RadialPdf,
}

/// Configuration for the Eq. 5 evaluator.
#[derive(Debug, Clone, Copy)]
pub struct NnConfig {
    /// Gauss–Legendre points per integration segment.
    pub points_per_segment: usize,
}

impl Default for NnConfig {
    fn default() -> Self {
        NnConfig {
            points_per_segment: 32,
        }
    }
}

/// Evaluates `P^NN` for every candidate using the sorted-boundary
/// decomposition of §2.2-III.
///
/// Candidates whose `R_min` exceeds the global `R_max` (the pruning rule of
/// Figure 4) receive probability exactly `0.0` without any integration.
///
/// For continuous pdfs the result is a probability distribution over
/// candidates: the values sum to one up to quadrature error (see the module
/// documentation of [`crate::discretized`] for the paper's discussion of
/// discretization-induced "joint" probabilities).
pub fn nn_probabilities(cands: &[NnCandidate<'_>], cfg: NnConfig) -> Vec<f64> {
    let n = cands.len();
    if n == 0 {
        return vec![];
    }
    if n == 1 {
        return vec![1.0];
    }
    let bounds: Vec<(f64, f64)> = cands
        .iter()
        .map(|c| distance_bounds(c.pdf, c.center_distance))
        .collect();
    // Global R_max: the farthest point of the *closest* disk bounds every
    // possible NN distance (§2.2-I).
    let global_rmax = bounds.iter().map(|b| b.1).fold(f64::INFINITY, f64::min);
    // Segment boundaries: the sorted R_min_i values (only those below
    // R_max matter) plus the bracket ends.
    let mut cuts: Vec<f64> = bounds
        .iter()
        .map(|b| b.0)
        .filter(|&rmin| rmin < global_rmax)
        .collect();
    cuts.push(global_rmax);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

    // Shared rule: identical nodes/weights to a freshly built one, without
    // re-running the Newton iteration on every call.
    let rule = shared_rule(cfg.points_per_segment);
    let mut probs = vec![0.0; n];
    // Scratch buffers reused across quadrature nodes.
    let mut pwd = vec![0.0; n];
    let mut dens = vec![0.0; n];
    let mut prefix = vec![0.0; n + 1];
    let mut suffix = vec![0.0; n + 1];

    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b - a <= 1e-15 {
            continue;
        }
        // Which candidates are "active" (R_min_i < b)? Inactive ones have
        // P^WD = 0 and pdf^WD = 0 throughout the segment: their survival
        // factor is 1 and they collect no probability here.
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        for k in 0..rule.len() {
            // Manual node iteration so per-node vectors are shared between
            // all candidates (Π computed once via prefix/suffix products).
            let (x, wgt) = rule.node_weight(k);
            let r = mid + half * x;
            for (i, c) in cands.iter().enumerate() {
                if bounds[i].0 >= r {
                    pwd[i] = 0.0;
                    dens[i] = 0.0;
                } else {
                    pwd[i] = within_distance_auto(c.pdf, c.center_distance, r);
                    dens[i] = within_distance_density_auto(c.pdf, c.center_distance, r);
                }
            }
            prefix[0] = 1.0;
            for i in 0..n {
                prefix[i + 1] = prefix[i] * (1.0 - pwd[i]);
            }
            suffix[n] = 1.0;
            for i in (0..n).rev() {
                suffix[i] = suffix[i + 1] * (1.0 - pwd[i]);
            }
            for i in 0..n {
                if dens[i] > 0.0 {
                    probs[i] += wgt * half * dens[i] * prefix[i] * suffix[i + 1];
                }
            }
        }
    }
    for p in &mut probs {
        *p = p.clamp(0.0, 1.0);
    }
    probs
}

/// The unoptimized Eq. 5 evaluator: a single uniform grid over
/// `[0, max R_max_i]`, no boundary decomposition, full product at every
/// node. Kept as the baseline for the `probability` ablation bench.
pub fn nn_probabilities_naive(cands: &[NnCandidate<'_>], grid_points: usize) -> Vec<f64> {
    let n = cands.len();
    if n == 0 {
        return vec![];
    }
    if n == 1 {
        return vec![1.0];
    }
    let bounds: Vec<(f64, f64)> = cands
        .iter()
        .map(|c| distance_bounds(c.pdf, c.center_distance))
        .collect();
    let hi = bounds.iter().map(|b| b.1).fold(0.0, f64::max);
    let m = grid_points.max(4);
    let step = hi / m as f64;
    let mut probs = vec![0.0; n];
    for j in 0..n {
        let mut acc = 0.0;
        for k in 0..m {
            // Midpoint rule.
            let r = (k as f64 + 0.5) * step;
            let d = within_distance_density_auto(cands[j].pdf, cands[j].center_distance, r);
            if d == 0.0 {
                continue;
            }
            let mut surv = 1.0;
            for (i, c) in cands.iter().enumerate() {
                if i != j {
                    surv *= 1.0 - within_distance_auto(c.pdf, c.center_distance, r);
                }
            }
            acc += d * surv * step;
        }
        probs[j] = acc.clamp(0.0, 1.0);
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::ConePdf;
    use crate::uniform::UniformDiskPdf;

    #[test]
    fn empty_and_singleton() {
        assert!(nn_probabilities(&[], NnConfig::default()).is_empty());
        let p = UniformDiskPdf::new(1.0);
        let c = [NnCandidate {
            center_distance: 5.0,
            pdf: &p,
        }];
        assert_eq!(nn_probabilities(&c, NnConfig::default()), vec![1.0]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let p = UniformDiskPdf::new(1.0);
        let cands = [
            NnCandidate {
                center_distance: 2.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 2.5,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 3.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 3.5,
                pdf: &p,
            },
        ];
        let probs = nn_probabilities(&cands, NnConfig::default());
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "total {total}, probs {probs:?}");
    }

    #[test]
    fn closer_candidate_has_higher_probability_lemma_1() {
        // Lemma 1: equal rotationally symmetric pdfs => closer center wins.
        let p = ConePdf::new(1.0);
        let cands = [
            NnCandidate {
                center_distance: 2.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 2.6,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 3.4,
                pdf: &p,
            },
        ];
        let probs = nn_probabilities(&cands, NnConfig::default());
        assert!(probs[0] > probs[1], "{probs:?}");
        assert!(probs[1] > probs[2], "{probs:?}");
    }

    #[test]
    fn pruned_candidate_gets_zero() {
        // R_min_4 > R_max_1 (Figure 4): far object has zero probability.
        let p = UniformDiskPdf::new(1.0);
        let cands = [
            NnCandidate {
                center_distance: 2.0,
                pdf: &p,
            }, // R_max = 3
            NnCandidate {
                center_distance: 10.0,
                pdf: &p,
            }, // R_min = 9 > 3
        ];
        let probs = nn_probabilities(&cands, NnConfig::default());
        assert!(probs[0] > 0.999, "{probs:?}");
        assert_eq!(probs[1], 0.0, "{probs:?}");
    }

    #[test]
    fn equidistant_candidates_split_evenly() {
        let p = UniformDiskPdf::new(1.0);
        let cands = [
            NnCandidate {
                center_distance: 3.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 3.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 3.0,
                pdf: &p,
            },
        ];
        let probs = nn_probabilities(&cands, NnConfig::default());
        for &p in &probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-3, "{probs:?}");
        }
    }

    #[test]
    fn naive_agrees_with_optimized() {
        let p = UniformDiskPdf::new(1.0);
        let q = ConePdf::new(0.7);
        let cands = [
            NnCandidate {
                center_distance: 2.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 2.4,
                pdf: &q,
            },
            NnCandidate {
                center_distance: 3.1,
                pdf: &p,
            },
        ];
        let fast = nn_probabilities(&cands, NnConfig::default());
        let naive = nn_probabilities_naive(&cands, 4000);
        for (f, n) in fast.iter().zip(&naive) {
            assert!((f - n).abs() < 5e-3, "fast {fast:?} vs naive {naive:?}");
        }
    }

    #[test]
    fn overlapping_query_configuration() {
        // Candidate centered at the query point itself (d = 0): it is very
        // likely (but not certain) to be the NN against a farther one.
        let p = UniformDiskPdf::new(1.0);
        let cands = [
            NnCandidate {
                center_distance: 0.0,
                pdf: &p,
            },
            NnCandidate {
                center_distance: 1.5,
                pdf: &p,
            },
        ];
        let probs = nn_probabilities(&cands, NnConfig::default());
        assert!(probs[0] > 0.8, "{probs:?}");
        assert!(probs[1] > 0.0, "{probs:?}");
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-4);
    }
}
