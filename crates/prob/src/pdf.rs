//! Rotationally symmetric location pdfs.
//!
//! §2.1/§3.1 of the paper: the location of an uncertain object at a time
//! instant is a 2D random variable supported on a disk around the expected
//! location. The paper's results (Theorem 1 in particular) hold for every
//! pdf that is *rotationally symmetric* around its center, which is
//! exactly what the [`RadialPdf`] trait models: the density depends only
//! on the distance `s` from the center.

use rand::Rng;
use std::fmt;
use unn_geom::point::Vec2;

/// A rotationally symmetric 2D probability density on a disk.
///
/// Implementations must satisfy:
/// * `density(s) == 0` for `s > support_radius()`;
/// * the total mass `∫_0^S density(s) · 2πs ds == 1`.
pub trait RadialPdf: fmt::Debug + Send + Sync {
    /// Radius of the support disk (density is zero beyond it).
    fn support_radius(&self) -> f64;

    /// The 2D density value at distance `s` from the center.
    fn density(&self, s: f64) -> f64;

    /// An upper bound on the density (used by rejection sampling).
    fn density_bound(&self) -> f64;

    /// Probability mass within distance `radius` of the center.
    ///
    /// The default implementation integrates the radial density; concrete
    /// pdfs override this with their closed forms.
    fn mass_within(&self, radius: f64) -> f64 {
        let s_max = radius.min(self.support_radius());
        if s_max <= 0.0 {
            return 0.0;
        }
        let v = crate::integrate::adaptive_simpson(
            &|s: f64| self.density(s) * 2.0 * std::f64::consts::PI * s,
            0.0,
            s_max,
            1e-10,
            40,
        );
        v.clamp(0.0, 1.0)
    }

    /// Draws a random offset from the center, distributed by this pdf.
    ///
    /// The default implementation is rejection sampling from the support
    /// disk; concrete pdfs override it with exact samplers.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Vec2 {
        let r = self.support_radius();
        let bound = self.density_bound();
        loop {
            let x = rng.random_range(-r..=r);
            let y = rng.random_range(-r..=r);
            let s = (x * x + y * y).sqrt();
            if s > r {
                continue;
            }
            let u: f64 = rng.random_range(0.0..bound.max(f64::MIN_POSITIVE));
            if u <= self.density(s) {
                return Vec2::new(x, y);
            }
        }
    }
}

/// Declarative description of a location pdf, as stored alongside an
/// uncertain trajectory (§2.1: the `pdf` component of `Tr^u`).
///
/// The paper's examples use the uniform pdf; bounded Gaussian is mentioned
/// as the other common choice (Figure 3.c). Both are rotationally
/// symmetric, so Theorem 1 applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PdfKind {
    /// Uniform over the uncertainty disk of the given radius (Eq. 2).
    Uniform {
        /// Uncertainty-disk radius `r`.
        radius: f64,
    },
    /// Gaussian with standard deviation `sigma`, truncated and
    /// renormalized to a disk of the given radius.
    TruncatedGaussian {
        /// Truncation (support) radius.
        radius: f64,
        /// Standard deviation of the underlying Gaussian.
        sigma: f64,
    },
}

impl PdfKind {
    /// The support radius of the described pdf.
    pub fn support_radius(&self) -> f64 {
        match *self {
            PdfKind::Uniform { radius } => radius,
            PdfKind::TruncatedGaussian { radius, .. } => radius,
        }
    }

    /// Materializes the description into a pdf object.
    pub fn build(&self) -> Box<dyn RadialPdf> {
        match *self {
            PdfKind::Uniform { radius } => Box::new(crate::uniform::UniformDiskPdf::new(radius)),
            PdfKind::TruncatedGaussian { radius, sigma } => {
                Box::new(crate::gaussian::TruncatedGaussianPdf::new(radius, sigma))
            }
        }
    }

    /// The pdf of the *difference* of two independent locations with this
    /// pdf and `other` (both centered): their convolution (Eq. 6 of §3.1).
    ///
    /// Uniform ∗ uniform with equal radii has an exact closed form — the
    /// disk autocorrelation of [`crate::uniform_diff`] (note: the paper's
    /// Eq. 7 states a *cone*, which is only an approximation of this
    /// shape; see that module's documentation). All other combinations
    /// fall back to numeric radial convolution.
    pub fn convolve_with(&self, other: &PdfKind) -> Box<dyn RadialPdf> {
        match (self, other) {
            (PdfKind::Uniform { radius: r1 }, PdfKind::Uniform { radius: r2 })
                if (r1 - r2).abs() < 1e-12 =>
            {
                Box::new(crate::uniform_diff::UniformDifferencePdf::new(*r1))
            }
            // Unequal uniform radii also have an exact closed form: the
            // normalized disk cross-correlation (§7 heterogeneous radii).
            (PdfKind::Uniform { radius: r1 }, PdfKind::Uniform { radius: r2 }) => {
                Box::new(crate::disk_diff::DiskDifferencePdf::new(*r1, *r2))
            }
            _ => Box::new(crate::convolution::convolve_radial(
                self.build().as_ref(),
                other.build().as_ref(),
                512,
            )),
        }
    }
}

/// Verifies that a pdf integrates to one (within `tol`); returns the mass.
/// Useful in tests and when registering custom pdfs.
pub fn total_mass(pdf: &dyn RadialPdf) -> f64 {
    pdf.mass_within(pdf.support_radius())
}

/// Estimates the mean of a pdf's sampled radius against the analytic
/// radial mean — a sanity helper for custom samplers (test support).
pub fn mean_sample_radius(pdf: &dyn RadialPdf, n: usize, rng: &mut dyn rand::RngCore) -> f64 {
    let mut acc = 0.0;
    for _ in 0..n {
        acc += pdf.sample(rng).norm();
    }
    acc / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pdf_kind_support_radius() {
        assert_eq!(PdfKind::Uniform { radius: 2.0 }.support_radius(), 2.0);
        assert_eq!(
            PdfKind::TruncatedGaussian {
                radius: 3.0,
                sigma: 1.0
            }
            .support_radius(),
            3.0
        );
    }

    #[test]
    fn build_produces_normalized_pdfs() {
        for kind in [
            PdfKind::Uniform { radius: 1.5 },
            PdfKind::TruncatedGaussian {
                radius: 1.5,
                sigma: 0.5,
            },
        ] {
            let pdf = kind.build();
            let mass = total_mass(pdf.as_ref());
            assert!((mass - 1.0).abs() < 1e-6, "{kind:?}: mass {mass}");
        }
    }

    #[test]
    fn convolve_uniform_pair_is_exact_difference_pdf() {
        let kind = PdfKind::Uniform { radius: 1.0 };
        let conv = kind.convolve_with(&kind);
        // Support doubles.
        assert!((conv.support_radius() - 2.0).abs() < 1e-9);
        // Center density of the exact convolution: 1 / (π r²).
        let expected = 1.0 / std::f64::consts::PI;
        assert!((conv.density(0.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn default_rejection_sampler_stays_in_support() {
        let pdf = PdfKind::Uniform { radius: 2.0 }.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let v = pdf.sample(&mut rng);
            assert!(v.norm() <= 2.0 + 1e-12);
        }
    }
}
