//! Profiled pdfs: dispatch-free `P^WD` / `pdf^WD` evaluation kernels.
//!
//! The generic [`crate::within_distance`] evaluators take a `&dyn RadialPdf`
//! and integrate the density with adaptive Simpson (tolerance `1e-11`) —
//! hundreds of virtual density calls per `P^WD` value. That is the right
//! tool for one-off queries over arbitrary pdfs, but row maintenance
//! evaluates Eq. 5 at *every* probe of *every* dirty column, and there the
//! per-call cost dominates the entire system (see the `probability_kernels`
//! bench for the ablation).
//!
//! [`ProfiledPdf`] profiles a pdf **once** — classifying uniform disks and
//! tabulating everything else on a dense radial grid (the same idiom as the
//! precomputed CDF inside [`crate::uniform_diff::UniformDifferencePdf`]) —
//! and then answers `P^WD(d, R)` and `pdf^WD(d, R)` with fixed-order
//! Gauss–Legendre sums over table lookups: no virtual dispatch, no
//! adaptive recursion, no per-call trigonometry beyond a single `acos` in
//! one boundary configuration.
//!
//! Two analytic rewrites make the fixed-order rules accurate:
//!
//! * `P^WD` (Eq. 3) splits into a full-circle part — a CDF lookup — and a
//!   partial-arc part `∫ f(s)·s·θ(s) ds` that is integrated **by parts**
//!   so the arc angle `θ = 2·acos(·)` never appears inside the loop:
//!   `∫ f s θ = θ(hi)·G(hi) + ∫ 2c′(s)/√(1−c²(s)) · G(s) ds` with
//!   `G(s) = (M(s) − M(lo)) / 2π` a CDF lookup.
//! * `pdf^WD` (Eq. 4's density) changes variables from the angle `φ` to the
//!   radial offset `s`: `pdf^WD(R) = (2/d)·∫ f(s)·s/√(1−q²(s)) ds`.
//!
//! Both integrands have inverse-square-root singularities exactly at the
//! interval endpoints, which the substitution `s = lo + (hi−lo)·sin²u`
//! removes analytically; the substituted node positions and weights are
//! process-wide constants (the private `endpoint_rule` tables), so the
//! inner loops are pure table-lerp + multiply-add + one `sqrt`.

use crate::integrate::shared_rule;
use crate::pdf::RadialPdf;
use crate::within_distance::{uniform_within_distance, uniform_within_distance_density};
use std::f64::consts::PI;

/// Radial resolution of the tabulated profile (number of grid intervals).
const GRID: usize = 2048;

/// Fixed Gauss–Legendre order for the endpoint-regularized integrals.
const ARC_ORDER: usize = 32;

/// A Gauss–Legendre rule pre-substituted with `s = lo + (hi−lo)·sin²u`:
/// `∫_lo^hi F(s) ds = Σ_j wgt_j · F(lo + (hi−lo)·frac_j) · (hi−lo)`.
///
/// The substitution turns inverse-square-root endpoint singularities into
/// analytic integrands, and its trigonometric factors depend only on the
/// rule order — they are interned once per process.
struct EndpointRule {
    frac: Vec<f64>,
    wgt: Vec<f64>,
}

fn endpoint_rule(n: usize) -> &'static EndpointRule {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static RULES: OnceLock<Mutex<HashMap<usize, &'static EndpointRule>>> = OnceLock::new();
    let rules = RULES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = rules.lock().expect("endpoint rule registry poisoned");
    map.entry(n).or_insert_with(|| {
        let gl = shared_rule(n);
        let mut frac = Vec::with_capacity(n);
        let mut wgt = Vec::with_capacity(n);
        for k in 0..gl.len() {
            let (x, w) = gl.node_weight(k);
            // Map [-1, 1] -> u in [0, π/2].
            let u = 0.25 * PI * (x + 1.0);
            frac.push(u.sin() * u.sin());
            wgt.push(0.25 * PI * w * (2.0 * u).sin());
        }
        Box::leak(Box::new(EndpointRule { frac, wgt }))
    })
}

#[derive(Debug)]
enum Shape {
    /// Uniform disk: `P^WD`/`pdf^WD` use the exact closed forms.
    Uniform { radius: f64 },
    /// Arbitrary radial pdf tabulated on a uniform grid over `[0, S]`:
    /// `dens[k] = f(k·S/GRID)` and `cdf[k] = M(k·S/GRID)` (normalized).
    Tabulated {
        dens: Box<[f64]>,
        cdf: Box<[f64]>,
        inv_step: f64,
    },
}

/// A radial pdf profiled for batched, dispatch-free `P^WD` evaluation.
///
/// Profiling is a *pure function* of the source pdf's density curve and
/// support: two equal pdfs (e.g. the same [`crate::pdf::PdfKind`]
/// convolution built twice) profile to bit-identical tables, so every
/// consumer that routes through a `ProfiledPdf` of the same kind computes
/// bit-identical probabilities — the invariant the incremental row
/// maintenance relies on when comparing maintained rows against fresh
/// evaluations.
#[derive(Debug)]
pub struct ProfiledPdf {
    support: f64,
    shape: Shape,
}

impl ProfiledPdf {
    /// Profiles `pdf`: classifies uniform disks (exact closed forms), and
    /// tabulates every other density on a fixed 2048-interval radial grid.
    pub fn of(pdf: &dyn RadialPdf) -> Self {
        let support = pdf.support_radius();
        assert!(
            support.is_finite() && support > 0.0,
            "profiled pdf needs a positive finite support, got {support}"
        );
        // Uniform probe: constant density equal to 1/(π S²) over the disk.
        let d0 = pdf.density(0.0);
        let dmid = pdf.density(0.5 * support);
        let uniform_level = 1.0 / (PI * support * support);
        if (d0 - dmid).abs() < 1e-15 && (d0 - uniform_level).abs() < 1e-12 {
            return ProfiledPdf {
                support,
                shape: Shape::Uniform { radius: support },
            };
        }
        let step = support / GRID as f64;
        let mut dens = Vec::with_capacity(GRID + 1);
        for k in 0..=GRID {
            dens.push(pdf.density(k as f64 * step).max(0.0));
        }
        // Trapezoid-accumulated radial CDF of f(s)·2πs, normalized so the
        // profile carries exactly unit mass (same idiom as the precomputed
        // CDF in `uniform_diff`).
        let mut cdf = Vec::with_capacity(GRID + 1);
        cdf.push(0.0);
        let mut acc = 0.0;
        for k in 1..=GRID {
            let s0 = (k - 1) as f64 * step;
            let s1 = k as f64 * step;
            let f0 = dens[k - 1] * 2.0 * PI * s0;
            let f1 = dens[k] * 2.0 * PI * s1;
            acc += 0.5 * (f0 + f1) * step;
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for v in &mut cdf {
            *v /= total;
        }
        ProfiledPdf {
            support,
            shape: Shape::Tabulated {
                dens: dens.into_boxed_slice(),
                cdf: cdf.into_boxed_slice(),
                inv_step: GRID as f64 / support,
            },
        }
    }

    /// Radius of the support disk.
    pub fn support_radius(&self) -> f64 {
        self.support
    }

    /// The density at radial offset `s` (table-lerp for tabulated shapes).
    pub fn density(&self, s: f64) -> f64 {
        if s < 0.0 || s >= self.support {
            return 0.0;
        }
        match &self.shape {
            Shape::Uniform { radius } => 1.0 / (PI * radius * radius),
            Shape::Tabulated { dens, inv_step, .. } => {
                let x = s * inv_step;
                let k = (x as usize).min(GRID - 1);
                let frac = x - k as f64;
                dens[k] + (dens[k + 1] - dens[k]) * frac
            }
        }
    }

    /// Probability mass within radial offset `r` of the center.
    pub fn mass_within(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        if r >= self.support {
            return 1.0;
        }
        match &self.shape {
            Shape::Uniform { radius } => (r * r) / (radius * radius),
            Shape::Tabulated { cdf, inv_step, .. } => {
                let x = r * inv_step;
                let k = (x as usize).min(GRID - 1);
                let frac = x - k as f64;
                (cdf[k] + (cdf[k + 1] - cdf[k]) * frac).clamp(0.0, 1.0)
            }
        }
    }

    /// `P^WD(d, rd)` — Eq. 3: the probability that an object whose
    /// (difference-)pdf is centered `d` away from the query point lies
    /// within distance `rd` of it.
    pub fn pwd(&self, d: f64, rd: f64) -> f64 {
        match &self.shape {
            Shape::Uniform { radius } => uniform_within_distance(d, *radius, rd),
            Shape::Tabulated { .. } => self.pwd_tabulated(d, rd),
        }
    }

    /// `pdf^WD(d, rd)` — the density of the within-distance probability in
    /// `rd` (the integrand weight of Eq. 5).
    pub fn pwd_density(&self, d: f64, rd: f64) -> f64 {
        match &self.shape {
            Shape::Uniform { radius } => uniform_within_distance_density(d, *radius, rd),
            Shape::Tabulated { .. } => self.pwd_density_tabulated(d, rd),
        }
    }

    /// Tabulated-shape `P^WD`: full-circle CDF lookup plus the partial-arc
    /// integral rewritten by parts (module docs) so the loop body is two
    /// table lerps, a `sqrt` and a handful of multiply-adds.
    fn pwd_tabulated(&self, d: f64, rd: f64) -> f64 {
        let s_max = self.support;
        if rd <= 0.0 || d - s_max >= rd {
            return 0.0;
        }
        if d + s_max <= rd {
            return 1.0;
        }
        if d == 0.0 {
            return self.mass_within(rd);
        }
        // Offsets s ≤ rd − d put the whole circle of radius s inside the
        // query disk: their arc angle is 2π and they contribute the plain
        // radial mass.
        let full_mass = if rd > d {
            self.mass_within(rd - d)
        } else {
            0.0
        };
        let mut acc = full_mass;
        let lo = (rd - d).abs();
        let hi = s_max.min(rd + d);
        if hi > lo {
            let len = hi - lo;
            // ∫_lo^hi f(s)·s·θ(s) ds by parts with G(s) = (M(s) − M(lo))/2π:
            //   = θ(hi)·G(hi) + ∫ 2c′(s)/√(1−c²(s)) · G(s) ds,
            // c(s) = (d² + s² − rd²)/(2ds), c′(s) = (s² − d² + rd²)/(2ds²).
            let m_lo = self.mass_within(lo);
            let inv_2pi = 1.0 / (2.0 * PI);
            if hi < rd + d {
                // Support truncates the arc: nonzero boundary angle at s_max.
                let c_hi = ((d * d + hi * hi - rd * rd) / (2.0 * d * hi)).clamp(-1.0, 1.0);
                let theta_hi = 2.0 * c_hi.acos();
                acc += theta_hi * (self.mass_within(hi) - m_lo) * inv_2pi;
            }
            let rule = endpoint_rule(ARC_ORDER);
            let mut sum = 0.0;
            for (frac, wgt) in rule.frac.iter().zip(&rule.wgt) {
                let s = lo + len * frac;
                let c = (d * d + s * s - rd * rd) / (2.0 * d * s);
                // (1−c)(1+c) instead of 1−c² to limit cancellation near ±1.
                let one_minus_c2 = ((1.0 - c) * (1.0 + c)).max(0.0);
                if one_minus_c2 <= 0.0 {
                    continue;
                }
                let cp = (s * s - d * d + rd * rd) / (2.0 * d * s * s);
                let g = (self.mass_within(s) - m_lo) * inv_2pi;
                sum += wgt * 2.0 * cp / one_minus_c2.sqrt() * g;
            }
            acc += sum * len;
        }
        acc.clamp(0.0, 1.0)
    }

    /// Tabulated-shape `pdf^WD` via the angle-to-offset change of variables
    /// `pdf^WD(R) = (2/d)·∫ f(s)·s/√(1−q²(s)) ds`, `q = (R²+d²−s²)/(2Rd)`.
    fn pwd_density_tabulated(&self, d: f64, rd: f64) -> f64 {
        let s_max = self.support;
        if rd <= 0.0 || (rd - d).abs() >= s_max {
            return 0.0;
        }
        if d == 0.0 {
            return self.density(rd) * 2.0 * PI * rd;
        }
        let lo = (rd - d).abs();
        let hi = s_max.min(rd + d);
        if hi <= lo {
            return 0.0;
        }
        let len = hi - lo;
        let rule = endpoint_rule(ARC_ORDER);
        let mut sum = 0.0;
        for (frac, wgt) in rule.frac.iter().zip(&rule.wgt) {
            let s = lo + len * frac;
            let q = (rd * rd + d * d - s * s) / (2.0 * rd * d);
            let one_minus_q2 = ((1.0 - q) * (1.0 + q)).max(0.0);
            if one_minus_q2 <= 0.0 {
                continue;
            }
            sum += wgt * self.density(s) * s / one_minus_q2.sqrt();
        }
        (2.0 / d * sum * len).max(0.0)
    }
}

/// Reusable scratch for [`nn_probabilities_profiled`] — lets a batch of
/// columns share one set of allocations.
#[derive(Debug, Default)]
pub struct NnScratch {
    bounds: Vec<(f64, f64)>,
    cuts: Vec<f64>,
    pwd: Vec<f64>,
    dens: Vec<f64>,
    prefix: Vec<f64>,
    suffix: Vec<f64>,
}

/// Eq. 5 over a profiled pdf: the same sorted-boundary decomposition as
/// [`crate::nn_prob::nn_probabilities`] (§2.2-III), with every candidate
/// sharing the one profiled difference pdf and all per-node state held in
/// flat scratch arrays — no virtual dispatch anywhere in the loops.
///
/// `dists` are the candidate center distances; the result (written into
/// `out`, cleared first) is index-aligned with them. `points_per_segment`
/// is the outer Gauss–Legendre order (the knob the adaptive ladder turns).
pub fn nn_probabilities_profiled(
    pdf: &ProfiledPdf,
    dists: &[f64],
    points_per_segment: usize,
    scratch: &mut NnScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let n = dists.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        out.push(1.0);
        return;
    }
    let s = pdf.support_radius();
    let bounds = &mut scratch.bounds;
    bounds.clear();
    bounds.extend(dists.iter().map(|&d| ((d - s).max(0.0), d + s)));
    let global_rmax = bounds.iter().map(|b| b.1).fold(f64::INFINITY, f64::min);
    let cuts = &mut scratch.cuts;
    cuts.clear();
    cuts.extend(
        bounds
            .iter()
            .map(|b| b.0)
            .filter(|&rmin| rmin < global_rmax),
    );
    cuts.push(global_rmax);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

    let rule = shared_rule(points_per_segment);
    out.resize(n, 0.0);
    scratch.pwd.clear();
    scratch.pwd.resize(n, 0.0);
    scratch.dens.clear();
    scratch.dens.resize(n, 0.0);
    scratch.prefix.clear();
    scratch.prefix.resize(n + 1, 0.0);
    scratch.suffix.clear();
    scratch.suffix.resize(n + 1, 0.0);
    let pwd = &mut scratch.pwd;
    let dens = &mut scratch.dens;
    let prefix = &mut scratch.prefix;
    let suffix = &mut scratch.suffix;

    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b - a <= 1e-15 {
            continue;
        }
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        for k in 0..rule.len() {
            let (x, wgt) = rule.node_weight(k);
            let r = mid + half * x;
            for (i, &d) in dists.iter().enumerate() {
                if bounds[i].0 >= r {
                    pwd[i] = 0.0;
                    dens[i] = 0.0;
                } else {
                    pwd[i] = pdf.pwd(d, r);
                    dens[i] = pdf.pwd_density(d, r);
                }
            }
            prefix[0] = 1.0;
            for i in 0..n {
                prefix[i + 1] = prefix[i] * (1.0 - pwd[i]);
            }
            suffix[n] = 1.0;
            for i in (0..n).rev() {
                suffix[i] = suffix[i + 1] * (1.0 - pwd[i]);
            }
            for i in 0..n {
                if dens[i] > 0.0 {
                    out[i] += wgt * half * dens[i] * prefix[i] * suffix[i + 1];
                }
            }
        }
    }
    for p in out.iter_mut() {
        *p = p.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_prob::{nn_probabilities, NnCandidate, NnConfig};
    use crate::pdf::PdfKind;
    use crate::uniform::UniformDiskPdf;
    use crate::uniform_diff::UniformDifferencePdf;
    use crate::within_distance::{within_distance, within_distance_density};

    fn gaussian_diff() -> Box<dyn RadialPdf> {
        let kind = PdfKind::TruncatedGaussian {
            radius: 1.0,
            sigma: 0.4,
        };
        kind.convolve_with(&kind)
    }

    #[test]
    fn uniform_disk_classifies_as_uniform_shape() {
        let pdf = UniformDiskPdf::new(1.5);
        let prof = ProfiledPdf::of(&pdf);
        assert!(matches!(prof.shape, Shape::Uniform { .. }));
        assert!((prof.mass_within(0.75) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn difference_pdf_tabulates() {
        let pdf = UniformDifferencePdf::new(1.0);
        let prof = ProfiledPdf::of(&pdf);
        assert!(matches!(prof.shape, Shape::Tabulated { .. }));
        // Table matches the source density and CDF closely.
        for s in [0.0, 0.3, 0.9, 1.4, 1.97] {
            assert!(
                (prof.density(s) - pdf.density(s)).abs() < 1e-6,
                "density at {s}"
            );
            assert!(
                (prof.mass_within(s) - pdf.mass_within(s)).abs() < 1e-4,
                "mass at {s}"
            );
        }
    }

    #[test]
    fn profiled_pwd_matches_generic_quadrature() {
        for pdf in [
            Box::new(UniformDifferencePdf::new(1.0)) as Box<dyn RadialPdf>,
            gaussian_diff(),
        ] {
            let prof = ProfiledPdf::of(pdf.as_ref());
            for d in [0.0, 0.4, 1.1, 2.3, 3.5] {
                for rd in [0.1, 0.7, 1.3, 2.0, 2.9, 4.1] {
                    let fast = prof.pwd(d, rd);
                    let slow = within_distance(pdf.as_ref(), d, rd);
                    assert!(
                        (fast - slow).abs() < 2e-5,
                        "{pdf:?} pwd(d={d}, rd={rd}): fast {fast} vs slow {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn profiled_density_matches_generic_quadrature() {
        for pdf in [
            Box::new(UniformDifferencePdf::new(1.0)) as Box<dyn RadialPdf>,
            gaussian_diff(),
        ] {
            let prof = ProfiledPdf::of(pdf.as_ref());
            for d in [0.0, 0.4, 1.1, 2.3] {
                for rd in [0.1, 0.7, 1.3, 2.0, 2.9] {
                    let fast = prof.pwd_density(d, rd);
                    let slow = within_distance_density(pdf.as_ref(), d, rd);
                    assert!(
                        (fast - slow).abs() < 2e-4,
                        "{pdf:?} pwd_density(d={d}, rd={rd}): fast {fast} vs slow {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn profiled_pwd_is_monotone_cdf_in_rd() {
        let prof = ProfiledPdf::of(&UniformDifferencePdf::new(1.0));
        let d = 1.2;
        let mut prev = 0.0;
        for k in 0..200 {
            let rd = k as f64 * 0.02;
            let v = prof.pwd(d, rd);
            assert!(v + 1e-9 >= prev, "pwd not monotone at rd={rd}");
            prev = v;
        }
        assert!((prev - 1.0).abs() < 1e-6, "pwd should saturate, got {prev}");
    }

    #[test]
    fn profiled_nn_matches_dynamic_evaluator() {
        let pdf = UniformDifferencePdf::new(1.0);
        let prof = ProfiledPdf::of(&pdf);
        let dists = [2.0, 2.5, 3.0, 3.5];
        let cands: Vec<NnCandidate<'_>> = dists
            .iter()
            .map(|&d| NnCandidate {
                center_distance: d,
                pdf: &pdf,
            })
            .collect();
        let slow = nn_probabilities(&cands, NnConfig::default());
        let mut scratch = NnScratch::default();
        let mut fast = Vec::new();
        nn_probabilities_profiled(&prof, &dists, 32, &mut scratch, &mut fast);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-4, "fast {fast:?} vs slow {slow:?}");
        }
        let total: f64 = fast.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "sum {total}");
    }

    #[test]
    fn profiled_nn_handles_trivial_columns() {
        let prof = ProfiledPdf::of(&UniformDifferencePdf::new(1.0));
        let mut scratch = NnScratch::default();
        let mut out = Vec::new();
        nn_probabilities_profiled(&prof, &[], 32, &mut scratch, &mut out);
        assert!(out.is_empty());
        nn_probabilities_profiled(&prof, &[4.2], 32, &mut scratch, &mut out);
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn profiling_is_deterministic() {
        // Two profiles of equal pdfs must produce bit-identical answers —
        // the invariant the incremental row maintenance relies on.
        let kind = PdfKind::Uniform { radius: 0.8 };
        let a = ProfiledPdf::of(kind.convolve_with(&kind).as_ref());
        let b = ProfiledPdf::of(kind.convolve_with(&kind).as_ref());
        for d in [0.1, 0.9, 1.7, 2.4] {
            for rd in [0.2, 0.8, 1.5, 2.2] {
                assert_eq!(a.pwd(d, rd).to_bits(), b.pwd(d, rd).to_bits());
                assert_eq!(
                    a.pwd_density(d, rd).to_bits(),
                    b.pwd_density(d, rd).to_bits()
                );
            }
        }
    }
}
