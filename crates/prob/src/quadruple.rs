//! The naive **quadruple integration** for the uncertain-query
//! within-distance probability (§3.1 of the paper) — the baseline that the
//! moving-convolution transformation replaces.
//!
//! With both the candidate `Tr_i` and the query `Tr_q` uncertain, the
//! probability that they are within distance `R_d` of each other is, in
//! the paper's words, obtained by finding "`D_i ∩ (D_q ⊕ R_d)`", then for
//! each point evaluating `P^WD` and "adding the uncountably-many such
//! results — which is, integrate over the area … with `dx_p` and `dy_p`
//! as the extra-variables of differentiation. This yields a quadruple
//! integration" (Example 3 / Figure 6).
//!
//! Conditioning on the query's location `v ∈ D_q` instead (the two forms
//! are the same by Fubini):
//!
//! ```text
//! P(‖V_i − V_q‖ ≤ R_d) = ∫_{D_q} pdf_q(v) · P^WD_i(‖c_i − v‖, R_d) dv ,
//! ```
//!
//! where the inner `P^WD` is itself a double integral (closed-form lens
//! area for the uniform pdf). This module implements that outer
//! integration with a polar product rule, giving an *independent oracle*
//! for the §3.1 convolution identity
//!
//! ```text
//! P(‖V_i − V_q‖ ≤ R_d) = P^WD(pdf_i ∘ pdf_{−q}; ‖c_i − c_q‖, R_d)
//! ```
//!
//! (validated in the tests for uniform, asymmetric-uniform, and truncated
//! Gaussian models, plus the paper's Example 3 configuration), and the
//! quantitative cost comparison behind §3.1's motivation (see the
//! `probability` bench).

use crate::integrate::GaussLegendre;
use crate::pdf::RadialPdf;
use crate::within_distance::within_distance_auto;
use std::f64::consts::PI;

/// `P(‖V_i − V_q‖ ≤ rd)` by direct integration over the query's support
/// disk — the §3.1 naive scheme.
///
/// * `pdf_i`, `pdf_q` — the two location pdfs (centered);
/// * `center_distance` — `‖c_i − c_q‖`;
/// * `rd` — the query distance `R_d`;
/// * `order` — Gauss–Legendre points per polar axis (the rule is a tensor
///   product, so the inner `P^WD` is evaluated `order²` times).
///
/// # Panics
///
/// Panics on a negative distance, a non-positive order, or a negative
/// `rd`.
pub fn within_distance_quadruple(
    pdf_i: &dyn RadialPdf,
    pdf_q: &dyn RadialPdf,
    center_distance: f64,
    rd: f64,
    order: usize,
) -> f64 {
    assert!(center_distance >= 0.0, "negative center distance");
    assert!(rd >= 0.0, "negative query distance");
    assert!(order > 0, "quadrature order must be positive");
    let rq = pdf_q.support_radius();
    let rule = GaussLegendre::new(order);
    // Polar integration over D_q: v = (s cos φ, s sin φ), area element
    // s ds dφ. By symmetry we may place c_q at the origin and c_i on the
    // positive x axis; the φ range halves to [0, π] with a factor 2.
    let mut acc = 0.0;
    for ks in 0..rule.len() {
        let (xs, ws) = rule.node_weight(ks);
        let s = 0.5 * rq * (xs + 1.0); // s ∈ [0, rq]
        let w_s = 0.5 * rq * ws;
        let dens = pdf_q.density(s);
        if dens == 0.0 {
            continue;
        }
        for kp in 0..rule.len() {
            let (xp, wp) = rule.node_weight(kp);
            let phi = 0.5 * PI * (xp + 1.0); // φ ∈ [0, π]
            let w_phi = 0.5 * PI * wp;
            // Distance from the sampled query location to c_i.
            let dx = center_distance - s * phi.cos();
            let dy = s * phi.sin();
            let d = (dx * dx + dy * dy).sqrt();
            let inner = within_distance_auto(pdf_i, d, rd);
            acc += 2.0 * dens * inner * s * w_s * w_phi;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// The convolution-route evaluation of the same probability: `P^WD` of
/// the convolved difference pdf at the center distance (§3.1's
/// transformation, one double integral instead of four).
pub fn within_distance_convolved(diff_pdf: &dyn RadialPdf, center_distance: f64, rd: f64) -> f64 {
    within_distance_auto(diff_pdf, center_distance, rd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk_diff::DiskDifferencePdf;
    use crate::pdf::PdfKind;
    use crate::uniform::UniformDiskPdf;
    use crate::uniform_diff::UniformDifferencePdf;

    #[test]
    fn quadruple_equals_convolution_for_uniform_disks() {
        // The §3.1 identity: the naive quadruple integration agrees with
        // P^WD of the convolved (autocorrelation) pdf.
        let r = 1.0;
        let pdf = UniformDiskPdf::new(r);
        let diff = UniformDifferencePdf::new(r);
        for (d, rd) in [(5.0, 4.0), (3.0, 2.5), (1.5, 1.0), (0.5, 2.0), (6.0, 4.0)] {
            let naive = within_distance_quadruple(&pdf, &pdf, d, rd, 48);
            let conv = within_distance_convolved(&diff, d, rd);
            assert!(
                (naive - conv).abs() < 2e-3,
                "d={d} rd={rd}: quadruple {naive} vs convolution {conv}"
            );
        }
    }

    #[test]
    fn quadruple_equals_convolution_for_unequal_radii() {
        let p1 = UniformDiskPdf::new(0.5);
        let p2 = UniformDiskPdf::new(1.5);
        let diff = DiskDifferencePdf::new(0.5, 1.5);
        for (d, rd) in [(4.0, 3.0), (2.0, 1.0), (1.0, 2.5)] {
            let naive = within_distance_quadruple(&p1, &p2, d, rd, 48);
            let conv = within_distance_convolved(&diff, d, rd);
            assert!(
                (naive - conv).abs() < 2e-3,
                "d={d} rd={rd}: quadruple {naive} vs convolution {conv}"
            );
        }
    }

    #[test]
    fn quadruple_equals_convolution_for_gaussians() {
        let kind = PdfKind::TruncatedGaussian {
            radius: 1.0,
            sigma: 0.4,
        };
        let pdf = kind.build();
        let diff = kind.convolve_with(&kind);
        for (d, rd) in [(4.0, 3.5), (2.5, 2.0)] {
            let naive = within_distance_quadruple(pdf.as_ref(), pdf.as_ref(), d, rd, 48);
            let conv = within_distance_convolved(diff.as_ref(), d, rd);
            assert!(
                (naive - conv).abs() < 5e-3,
                "d={d} rd={rd}: quadruple {naive} vs convolution {conv}"
            );
        }
    }

    #[test]
    fn paper_example_3_configuration() {
        // Example 3: r = 1, Eloc(Tr_q) = (2,2), Eloc(Tr_1) = (7,3),
        // Eloc(Tr_2) = (3,8); probability of being within distance 4.
        let pdf = UniformDiskPdf::new(1.0);
        let d1 = ((7.0f64 - 2.0).powi(2) + (3.0f64 - 2.0).powi(2)).sqrt(); // √26 ≈ 5.10
        let d2 = ((3.0f64 - 2.0).powi(2) + (8.0f64 - 2.0).powi(2)).sqrt(); // √37 ≈ 6.08
        let p1 = within_distance_quadruple(&pdf, &pdf, d1, 4.0, 48);
        let p2 = within_distance_quadruple(&pdf, &pdf, d2, 4.0, 48);
        // Tr_1 partially reachable, Tr_2 "obviously 0".
        assert!(p1 > 0.05 && p1 < 0.95, "p1 = {p1}");
        assert!(p2 < 1e-9, "p2 = {p2}");
        // Example 4's reformulation: the same value as the convolution
        // volume intersection (cone/autocorrelation vs cylinder).
        let diff = UniformDifferencePdf::new(1.0);
        let conv1 = within_distance_convolved(&diff, d1, 4.0);
        assert!((p1 - conv1).abs() < 2e-3, "{p1} vs {conv1}");
    }

    #[test]
    fn degenerate_cases() {
        let pdf = UniformDiskPdf::new(1.0);
        // rd = 0: zero probability (a circle has measure zero).
        assert_eq!(within_distance_quadruple(&pdf, &pdf, 3.0, 0.0, 32), 0.0);
        // Far beyond the joint support: certainty.
        let p = within_distance_quadruple(&pdf, &pdf, 1.0, 10.0, 32);
        assert!((p - 1.0).abs() < 1e-9, "{p}");
        // Disjoint beyond rd + supports: zero.
        let p0 = within_distance_quadruple(&pdf, &pdf, 20.0, 4.0, 32);
        assert!(p0 < 1e-12, "{p0}");
    }

    #[test]
    fn order_convergence() {
        // The quadrature converges as the order grows.
        let pdf = UniformDiskPdf::new(1.0);
        let diff = UniformDifferencePdf::new(1.0);
        let exact = within_distance_convolved(&diff, 4.0, 3.5);
        let mut prev_err = f64::INFINITY;
        for order in [8usize, 16, 32, 64] {
            let v = within_distance_quadruple(&pdf, &pdf, 4.0, 3.5, order);
            let err = (v - exact).abs();
            // Allow small non-monotonic wiggles near machine precision.
            assert!(
                err <= prev_err + 5e-3,
                "order {order}: err {err} (prev {prev_err})"
            );
            prev_err = err;
        }
        assert!(prev_err < 1e-3, "final error {prev_err}");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_order() {
        let pdf = UniformDiskPdf::new(1.0);
        let _ = within_distance_quadruple(&pdf, &pdf, 1.0, 1.0, 0);
    }
}
