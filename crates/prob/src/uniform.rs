//! The uniform location pdf on a disk (Eq. 2 of the paper).

use crate::pdf::RadialPdf;
use rand::Rng;
use std::f64::consts::PI;
use unn_geom::point::Vec2;

/// Uniform density `1 / (π r²)` over a disk of radius `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDiskPdf {
    radius: f64,
    density: f64,
}

impl UniformDiskPdf {
    /// Creates the uniform pdf on a disk of radius `radius`.
    ///
    /// # Panics
    ///
    /// Panics when the radius is non-positive or not finite.
    pub fn new(radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "uniform pdf requires a positive radius, got {radius}"
        );
        UniformDiskPdf {
            radius,
            density: 1.0 / (PI * radius * radius),
        }
    }

    /// The disk radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

impl RadialPdf for UniformDiskPdf {
    fn support_radius(&self) -> f64 {
        self.radius
    }

    fn density(&self, s: f64) -> f64 {
        if s <= self.radius {
            self.density
        } else {
            0.0
        }
    }

    fn density_bound(&self) -> f64 {
        self.density
    }

    fn mass_within(&self, radius: f64) -> f64 {
        if radius <= 0.0 {
            0.0
        } else if radius >= self.radius {
            1.0
        } else {
            (radius / self.radius).powi(2)
        }
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> Vec2 {
        // Inverse transform: radius ~ r·sqrt(U), angle uniform.
        let u: f64 = rng.random_range(0.0..1.0);
        let s = self.radius * u.sqrt();
        let theta: f64 = rng.random_range(0.0..(2.0 * PI));
        Vec2::new(s * theta.cos(), s * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::total_mass;
    use rand::SeedableRng;

    #[test]
    fn density_is_constant_inside_zero_outside() {
        let p = UniformDiskPdf::new(2.0);
        let d = 1.0 / (PI * 4.0);
        assert_eq!(p.density(0.0), d);
        assert_eq!(p.density(2.0), d);
        assert_eq!(p.density(2.0001), 0.0);
        assert_eq!(p.density_bound(), d);
    }

    #[test]
    fn mass_within_closed_form() {
        let p = UniformDiskPdf::new(2.0);
        assert_eq!(p.mass_within(0.0), 0.0);
        assert_eq!(p.mass_within(1.0), 0.25);
        assert_eq!(p.mass_within(2.0), 1.0);
        assert_eq!(p.mass_within(5.0), 1.0);
        assert!((total_mass(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_matches_radial_cdf() {
        let p = UniformDiskPdf::new(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut inside_half = 0usize;
        for _ in 0..n {
            let v = p.sample(&mut rng);
            assert!(v.norm() <= 1.0 + 1e-12);
            if v.norm() <= 0.5 {
                inside_half += 1;
            }
        }
        // P(|V| <= 0.5) = 0.25
        let frac = inside_half as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sampler_mean_radius() {
        // E[s] for uniform disk of radius r is 2r/3.
        let p = UniformDiskPdf::new(3.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mean = crate::pdf::mean_sample_radius(&p, 20_000, &mut rng);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn zero_radius_panics() {
        let _ = UniformDiskPdf::new(0.0);
    }
}
