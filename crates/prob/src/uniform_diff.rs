//! The *exact* pdf of the difference of two independent uniform-disk
//! locations with equal radius `r`.
//!
//! Example 4 / Eq. 7 of the paper state that the convolution of two
//! uniform disk pdfs ("cylinders") is a *cone* of height `3/(4πr²)` and
//! base radius `2r`. The cone is a valid rotationally symmetric pdf (it
//! integrates to one) **but it is not the exact convolution**: the true
//! convolution of two disk indicators is the disk *autocorrelation*
//!
//! ```text
//! f(s) = lens_area(s; r, r) / (π r²)²
//!      = [ 2r² acos(s/2r) − (s/2)·√(4r² − s²) ] / (π r²)² ,   0 ≤ s ≤ 2r,
//! ```
//!
//! with peak `1/(π r²)` at `s = 0` (4/3 of the cone's peak). Our numeric
//! convolution reproduces this shape, not the cone — see the tests in
//! [`crate::convolution`]. Everything the paper *uses* about the
//! convolution (rotational symmetry, support `2r`, monotone decay, hence
//! Lemma 1 / Theorem 1) holds for both shapes, so the discrepancy does not
//! affect any algorithmic result; it only matters when computing actual
//! probability values, for which this exact pdf is the default
//! ([`crate::pdf::PdfKind::convolve_with`]).

use crate::pdf::RadialPdf;
use crate::uniform::UniformDiskPdf;
use rand::RngCore;
use std::f64::consts::PI;
use unn_geom::circle::lens_area;
use unn_geom::point::Vec2;

/// Exact pdf of `V_i − V_q` for two independent uniform disks of radius
/// `r` (the location pdf of the difference trajectories `TR_iq`).
#[derive(Debug, Clone)]
pub struct UniformDifferencePdf {
    r: f64,
    peak: f64,
    sampler: UniformDiskPdf,
    /// Precomputed radial CDF on a uniform grid over `[0, 2r]` for fast
    /// `mass_within` lookups (the Eq. 5 evaluator calls it heavily).
    cdf: Vec<f64>,
}

const CDF_GRID: usize = 2048;

impl UniformDifferencePdf {
    /// Creates the exact difference pdf for original disk radius `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is non-positive or not finite.
    pub fn new(r: f64) -> Self {
        assert!(
            r.is_finite() && r > 0.0,
            "difference pdf requires positive r, got {r}"
        );
        let norm = (PI * r * r) * (PI * r * r);
        let density = |s: f64| -> f64 {
            if s >= 2.0 * r {
                0.0
            } else {
                lens_area(s, r, r) / norm
            }
        };
        // Radial CDF by trapezoid accumulation of density(s)·2πs.
        let mut cdf = Vec::with_capacity(CDF_GRID + 1);
        cdf.push(0.0);
        let step = 2.0 * r / CDF_GRID as f64;
        let mut acc = 0.0;
        let mut prev = 0.0; // density(0)·2π·0
        for k in 1..=CDF_GRID {
            let s = k as f64 * step;
            let cur = density(s) * 2.0 * PI * s;
            acc += 0.5 * (prev + cur) * step;
            cdf.push(acc);
            prev = cur;
        }
        // Normalize the grid so the CDF ends exactly at 1 (absorbs the
        // trapezoid error, ~1e-7 at this resolution).
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        UniformDifferencePdf {
            r,
            peak: 1.0 / (PI * r * r),
            sampler: UniformDiskPdf::new(r),
            cdf,
        }
    }

    /// The original uniform-disk radius `r` (support is `2r`).
    pub fn original_radius(&self) -> f64 {
        self.r
    }
}

impl RadialPdf for UniformDifferencePdf {
    fn support_radius(&self) -> f64 {
        2.0 * self.r
    }

    fn density(&self, s: f64) -> f64 {
        if s >= 2.0 * self.r || s < 0.0 {
            0.0
        } else {
            lens_area(s, self.r, self.r) / ((PI * self.r * self.r) * (PI * self.r * self.r))
        }
    }

    fn density_bound(&self) -> f64 {
        self.peak
    }

    fn mass_within(&self, radius: f64) -> f64 {
        if radius <= 0.0 {
            return 0.0;
        }
        if radius >= 2.0 * self.r {
            return 1.0;
        }
        let x = radius / (2.0 * self.r) * CDF_GRID as f64;
        let k = (x.floor() as usize).min(CDF_GRID - 1);
        let frac = x - k as f64;
        (self.cdf[k] * (1.0 - frac) + self.cdf[k + 1] * frac).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Vec2 {
        // Exact: the difference of two independent uniform samples has
        // precisely this distribution.
        self.sampler.sample(rng) - self.sampler.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::total_mass;
    use rand::SeedableRng;

    #[test]
    fn peak_is_inverse_disk_area() {
        let p = UniformDifferencePdf::new(1.0);
        assert!((p.density(0.0) - 1.0 / PI).abs() < 1e-12);
        assert_eq!(p.density(2.0), 0.0);
        assert_eq!(p.support_radius(), 2.0);
    }

    #[test]
    fn total_mass_is_one() {
        for r in [0.3, 1.0, 2.5] {
            let p = UniformDifferencePdf::new(r);
            assert!((total_mass(&p) - 1.0).abs() < 1e-6, "r={r}");
            assert!((p.mass_within(2.0 * r) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampler_matches_cdf() {
        let p = UniformDifferencePdf::new(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 40_000;
        for probe in [0.5, 1.0, 1.5] {
            let expected = p.mass_within(probe);
            let count = (0..n)
                .filter(|_| {
                    // fresh sample each iteration
                    p.sample(&mut rng).norm() <= probe
                })
                .count();
            let frac = count as f64 / n as f64;
            assert!(
                (frac - expected).abs() < 0.015,
                "probe {probe}: frac {frac} vs cdf {expected}"
            );
        }
    }

    #[test]
    fn differs_from_paper_cone() {
        // Document the Eq. 7 discrepancy: the exact peak is 4/3 of the
        // cone's peak.
        let exact = UniformDifferencePdf::new(1.0);
        let cone = crate::cone::ConePdf::new(1.0);
        let ratio = exact.density(0.0) / cone.density(0.0);
        assert!((ratio - 4.0 / 3.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn density_monotone_decreasing() {
        let p = UniformDifferencePdf::new(1.3);
        let mut prev = p.density(0.0);
        let mut s = 0.01;
        while s < 2.6 {
            let d = p.density(s);
            assert!(d <= prev + 1e-12, "s={s}");
            prev = d;
            s += 0.01;
        }
    }
}
