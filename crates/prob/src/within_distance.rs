//! Within-distance probabilities `P^WD` (Eq. 3/4 of the paper).
//!
//! `P^WD_{i,Q}(R_d)` is the probability that the (uncertain) location of
//! object `i` lies within distance `R_d` of the crisp point `Q`. After the
//! convolution transformation of §3.1, *both* the crisp-query case of §2.2
//! and the uncertain-query case reduce to this computation with `Q` at the
//! origin and the appropriate (possibly convolved) pdf.
//!
//! For the uniform pdf the probability is the lens area over the disk area
//! — Eq. 4 of the paper. (As printed, Eq. 4's first term carries a typo:
//! `1/(R_d² π)` should read `R_d²/(r² π)`; the lens-area formulation used
//! here is the standard, dimensionally consistent form, and is validated
//! against numeric integration in the tests.)

use crate::integrate::{adaptive_simpson, GaussLegendre};
use crate::pdf::RadialPdf;
use crate::uniform::UniformDiskPdf;
use std::f64::consts::PI;
use unn_geom::circle::lens_area;

/// `P^WD` for the uniform pdf: closed form via the lens area (Eq. 4).
///
/// * `d` — distance from `Q` to the expected location (disk center);
/// * `r` — uncertainty-disk radius;
/// * `rd` — the query distance `R_d`.
///
/// Handles `Q` inside the uncertainty zone (the "appropriate
/// modifications" footnote of §2.2) for free: the lens area is valid for
/// any configuration.
pub fn uniform_within_distance(d: f64, r: f64, rd: f64) -> f64 {
    assert!(
        d >= 0.0 && r > 0.0 && rd >= 0.0,
        "invalid arguments d={d} r={r} rd={rd}"
    );
    lens_area(d, rd, r) / (PI * r * r)
}

/// Fraction of the circle of radius `s` centered at distance `d` from `Q`
/// that lies within distance `rd` of `Q`, as an angle in `[0, 2π]`.
fn arc_angle_inside(s: f64, d: f64, rd: f64) -> f64 {
    if s + d <= rd {
        return 2.0 * PI; // entire circle inside the query disk
    }
    if (d - s).abs() >= rd {
        // Entire circle outside: both when it is too far (d - s >= rd) and
        // when it surrounds the query disk entirely (s - d >= rd).
        return 0.0;
    }
    if d == 0.0 {
        // Concentric: inside iff s <= rd, handled above; otherwise outside.
        return 0.0;
    }
    let c = ((d * d + s * s - rd * rd) / (2.0 * d * s)).clamp(-1.0, 1.0);
    2.0 * c.acos()
}

/// Generic `P^WD(R_d)` for any rotationally symmetric pdf whose center is
/// at distance `d` from the crisp query point:
///
/// ```text
/// P^WD(R_d) = ∫_0^S  g(s) · s · θ(s; d, R_d)  ds
/// ```
///
/// where `θ` is the angular measure of the circle of radius `s` (around
/// the pdf center) that falls inside the query disk.
pub fn within_distance(pdf: &dyn RadialPdf, d: f64, rd: f64) -> f64 {
    assert!(d >= 0.0 && rd >= 0.0, "invalid arguments d={d} rd={rd}");
    let s_max = pdf.support_radius();
    if rd == 0.0 || d - s_max >= rd {
        return 0.0;
    }
    if d + s_max <= rd {
        return 1.0;
    }
    if d == 0.0 {
        // Concentric: the query disk covers exactly the central mass.
        return pdf.mass_within(rd);
    }
    // The integrand is non-zero only for s < d + rd, and switches from the
    // full-circle regime (θ = 2π) to the partial-arc regime at
    // s = |rd − d|. Splitting the panels there keeps adaptive Simpson from
    // missing narrow features and from stalling on the kink.
    let hi = s_max.min(d + rd);
    let kink = (rd - d).abs();
    let mut cuts = vec![0.0, hi];
    if kink > 0.0 && kink < hi {
        cuts.push(kink);
    }
    cuts.sort_by(f64::total_cmp);
    let f = |s: f64| pdf.density(s) * s * arc_angle_inside(s, d, rd);
    let mut v = 0.0;
    for w in cuts.windows(2) {
        v += adaptive_simpson(&f, w[0], w[1], 1e-11, 32);
    }
    v.clamp(0.0, 1.0)
}

/// The density `pdf^WD(R_d) = d/dR_d P^WD(R_d)`: the (1D) density of the
/// random distance between the uncertain location and `Q`.
///
/// Computed as the line integral of the 2D pdf along the circle of radius
/// `R_d` centered at `Q`:
///
/// ```text
/// pdf^WD(R) = R · 2 ∫_0^π  f(√(R² + d² − 2Rd·cosφ)) dφ
/// ```
pub fn within_distance_density(pdf: &dyn RadialPdf, d: f64, rd: f64) -> f64 {
    assert!(d >= 0.0 && rd >= 0.0, "invalid arguments d={d} rd={rd}");
    if rd == 0.0 {
        return 0.0;
    }
    let s_max = pdf.support_radius();
    // The circle of radius rd around Q only meets the support when
    // |rd - d| <= s_max.
    if (rd - d).abs() >= s_max {
        return 0.0;
    }
    if d == 0.0 {
        // Concentric: the circle stays at constant radial distance rd.
        return pdf.density(rd) * 2.0 * PI * rd;
    }
    // The integrand vanishes for angles where the circle point leaves the
    // support disk: s(φ) = √(R² + d² − 2Rd cosφ) is increasing in φ, so
    // restrict to [0, φ_max] with s(φ_max) = s_max. This keeps the
    // Gauss–Legendre rule on a smooth integrand even for pdfs with a
    // density jump at the support boundary (uniform, truncated Gaussian).
    let cos_phi_max = (rd * rd + d * d - s_max * s_max) / (2.0 * rd * d);
    let phi_max = if rd + d <= s_max {
        PI
    } else {
        cos_phi_max.clamp(-1.0, 1.0).acos()
    };
    let rule = GaussLegendre::new(64);
    let v = rule.integrate(
        |phi: f64| {
            let s2 = rd * rd + d * d - 2.0 * rd * d * phi.cos();
            pdf.density(s2.max(0.0).sqrt())
        },
        0.0,
        phi_max,
    );
    (rd * 2.0 * v).max(0.0)
}

/// `pdf^WD` for the uniform pdf in closed form: the derivative of the
/// lens area with respect to `R_d` is the arc length of the query circle
/// inside the uncertainty disk, so
///
/// ```text
/// pdf^WD(R) = 2 R α / (π r²) ,
///   α = acos((d² + R² − r²) / (2 d R))   (the half-angle at Q),
/// ```
///
/// with the degenerate cases handled explicitly.
pub fn uniform_within_distance_density(d: f64, r: f64, rd: f64) -> f64 {
    assert!(
        d >= 0.0 && r > 0.0 && rd >= 0.0,
        "invalid arguments d={d} r={r} rd={rd}"
    );
    if rd == 0.0 || (rd - d).abs() >= r {
        return 0.0;
    }
    let alpha = if rd + d <= r {
        PI // the whole query circle lies inside the uncertainty disk
    } else if d == 0.0 {
        if rd < r {
            PI
        } else {
            0.0
        }
    } else {
        ((d * d + rd * rd - r * r) / (2.0 * d * rd))
            .clamp(-1.0, 1.0)
            .acos()
    };
    2.0 * rd * alpha / (PI * r * r)
}

/// Detects a uniform disk pdf by probing the density profile (cheap: two
/// probes suffice because `RadialPdf` densities are radial).
fn is_uniform(pdf: &dyn RadialPdf) -> bool {
    let s = pdf.support_radius();
    let d0 = pdf.density(0.0);
    (pdf.density(0.5 * s) - d0).abs() < 1e-15 && (d0 - 1.0 / (PI * s * s)).abs() < 1e-12
}

/// `P^WD` dispatch that takes the uniform closed-form shortcut when
/// possible.
pub fn within_distance_auto(pdf: &dyn RadialPdf, d: f64, rd: f64) -> f64 {
    if is_uniform(pdf) {
        uniform_within_distance(d, pdf.support_radius(), rd)
    } else {
        within_distance(pdf, d, rd)
    }
}

/// `pdf^WD` dispatch that takes the uniform closed-form shortcut when
/// possible.
pub fn within_distance_density_auto(pdf: &dyn RadialPdf, d: f64, rd: f64) -> f64 {
    if is_uniform(pdf) {
        uniform_within_distance_density(d, pdf.support_radius(), rd)
    } else {
        within_distance_density(pdf, d, rd)
    }
}

/// The effective integration bounds of §2.2-III for one candidate:
/// `R_min = max(0, d − S)` and `R_max = d + S` (distance from `Q` to the
/// nearest / farthest point of the support disk).
pub fn distance_bounds(pdf: &dyn RadialPdf, d: f64) -> (f64, f64) {
    let s = pdf.support_radius();
    ((d - s).max(0.0), d + s)
}

/// Convenience: Eq. 4 for a uniform disk, exposed as a struct method too.
impl UniformDiskPdf {
    /// `P^WD(R_d)` for this uniform disk centered `d` away from `Q`.
    pub fn within_distance(&self, d: f64, rd: f64) -> f64 {
        uniform_within_distance(d, self.radius(), rd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::ConePdf;
    use crate::gaussian::TruncatedGaussianPdf;

    #[test]
    fn uniform_within_distance_regimes() {
        // Paper Eq. 4: 0 below d - r, 1 above d + r, lens ratio between.
        let (d, r) = (5.0, 1.0);
        assert_eq!(uniform_within_distance(d, r, 3.9), 0.0);
        assert_eq!(uniform_within_distance(d, r, 6.1), 1.0);
        let mid = uniform_within_distance(d, r, 5.0);
        assert!(mid > 0.4 && mid < 0.6, "half-covered disk: {mid}");
    }

    #[test]
    fn uniform_within_distance_monotone_in_rd() {
        let (d, r) = (3.0, 1.5);
        let mut prev = 0.0;
        let mut rd = 0.0;
        while rd <= 6.0 {
            let p = uniform_within_distance(d, r, rd);
            assert!(p + 1e-12 >= prev, "monotonicity at rd={rd}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
            rd += 0.05;
        }
    }

    #[test]
    fn generic_matches_uniform_closed_form() {
        let pdf = UniformDiskPdf::new(1.0);
        for d in [0.0, 0.5, 1.0, 2.0, 4.0] {
            for rd in [0.2, 0.8, 1.5, 3.0, 5.5] {
                let exact = uniform_within_distance(d, 1.0, rd);
                let generic = within_distance(&pdf, d, rd);
                assert!(
                    (exact - generic).abs() < 1e-6,
                    "d={d} rd={rd}: exact {exact} vs generic {generic}"
                );
            }
        }
    }

    #[test]
    fn query_inside_uncertainty_zone() {
        // The "appropriate modifications" case: Q inside the disk (d < r).
        let pdf = UniformDiskPdf::new(2.0);
        let d = 0.5;
        // Small rd: the query disk is entirely inside the support,
        // P = area ratio = rd² / r².
        let rd = 0.3;
        let expected = rd * rd / 4.0;
        assert!((uniform_within_distance(d, 2.0, rd) - expected).abs() < 1e-12);
        assert!((within_distance(&pdf, d, rd) - expected).abs() < 1e-7);
    }

    #[test]
    fn density_is_derivative_of_probability() {
        for pdf in [
            Box::new(UniformDiskPdf::new(1.0)) as Box<dyn RadialPdf>,
            Box::new(ConePdf::new(0.8)),
            Box::new(TruncatedGaussianPdf::new(1.2, 0.5)),
        ] {
            let d = 2.0;
            let h = 1e-5;
            for rd in [1.2, 1.7, 2.3, 2.9] {
                let grad = (within_distance(pdf.as_ref(), d, rd + h)
                    - within_distance(pdf.as_ref(), d, rd - h))
                    / (2.0 * h);
                let dens = within_distance_density(pdf.as_ref(), d, rd);
                assert!(
                    (grad - dens).abs() < 1e-3 * (1.0 + dens),
                    "{pdf:?} rd={rd}: fd {grad} vs analytic {dens}"
                );
            }
        }
    }

    #[test]
    fn density_integrates_to_one_over_bounds() {
        let pdf = ConePdf::new(1.0);
        let d = 3.0;
        let (rmin, rmax) = distance_bounds(&pdf, d);
        assert_eq!(rmin, 1.0);
        assert_eq!(rmax, 5.0);
        let total = adaptive_simpson(
            &|rd: f64| within_distance_density(&pdf, d, rd),
            rmin,
            rmax,
            1e-9,
            32,
        );
        assert!((total - 1.0).abs() < 1e-5, "total {total}");
    }

    #[test]
    fn density_zero_outside_bounds() {
        let pdf = UniformDiskPdf::new(1.0);
        assert_eq!(within_distance_density(&pdf, 5.0, 3.0), 0.0);
        assert_eq!(within_distance_density(&pdf, 5.0, 7.0), 0.0);
        assert!(within_distance_density(&pdf, 5.0, 5.0) > 0.0);
    }

    #[test]
    fn auto_dispatch_agrees_with_generic() {
        let uni = UniformDiskPdf::new(1.0);
        let cone = ConePdf::new(1.0);
        for (d, rd) in [(2.0, 1.5), (0.5, 1.0), (4.0, 4.5)] {
            assert!(
                (within_distance_auto(&uni, d, rd) - within_distance(&uni, d, rd)).abs() < 1e-6
            );
            assert!(
                (within_distance_auto(&cone, d, rd) - within_distance(&cone, d, rd)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn distance_bounds_clamp_at_zero() {
        let pdf = UniformDiskPdf::new(2.0);
        let (rmin, rmax) = distance_bounds(&pdf, 1.0);
        assert_eq!(rmin, 0.0); // Q inside the disk
        assert_eq!(rmax, 3.0);
    }
}
