//! Property-based tests for the probability substrate.

use proptest::prelude::*;
use unn_prob::nn_prob::{nn_probabilities, NnCandidate, NnConfig};
use unn_prob::pdf::RadialPdf;
use unn_prob::uniform::UniformDiskPdf;
use unn_prob::uniform_diff::UniformDifferencePdf;
use unn_prob::within_distance::{
    uniform_within_distance, within_distance_auto, within_distance_density_auto,
};
use unn_prob::TruncatedGaussianPdf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_within_distance_is_a_cdf(
        d in 0.0..10.0f64,
        r in 0.05..3.0f64,
    ) {
        // Monotone from 0 to 1 as rd grows.
        let mut prev = 0.0;
        for k in 0..=60 {
            let rd = k as f64 * 0.25;
            let p = uniform_within_distance(d, r, rd);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p + 1e-9 >= prev, "rd={rd}: {p} < {prev}");
            prev = p;
        }
        prop_assert!(uniform_within_distance(d, r, d + r + 0.01) > 1.0 - 1e-9);
    }

    #[test]
    fn within_distance_zero_below_rmin_one_above_rmax(
        d in 0.0..8.0f64,
        r in 0.1..2.0f64,
    ) {
        let pdf = UniformDiskPdf::new(r);
        let rmin = (d - r).max(0.0);
        let rmax = d + r;
        if rmin > 0.05 {
            prop_assert_eq!(within_distance_auto(&pdf, d, rmin * 0.9), 0.0);
        }
        prop_assert!(within_distance_auto(&pdf, d, rmax * 1.01 + 1e-9) > 1.0 - 1e-9);
    }

    #[test]
    fn density_nonnegative_and_zero_outside_bounds(
        d in 0.0..8.0f64,
        r in 0.1..2.0f64,
        rd in 0.0..12.0f64,
    ) {
        let pdf = UniformDiskPdf::new(r);
        let v = within_distance_density_auto(&pdf, d, rd);
        prop_assert!(v >= 0.0);
        if (rd - d).abs() >= r {
            prop_assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn nn_probabilities_form_distribution(
        dists in prop::collection::vec(0.5..6.0f64, 2..6),
        r in 0.2..1.0f64,
    ) {
        let pdf = UniformDifferencePdf::new(r);
        let cands: Vec<NnCandidate> = dists
            .iter()
            .map(|&d| NnCandidate { center_distance: d, pdf: &pdf })
            .collect();
        let probs = nn_probabilities(&cands, NnConfig::default());
        let total: f64 = probs.iter().sum();
        prop_assert!(
            (total - 1.0).abs() < 2e-3,
            "Σ = {total} for {dists:?} (r={r})"
        );
        for &p in &probs {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn theorem_1_ranking_on_random_configurations(
        raw in prop::collection::vec(0.5..6.0f64, 2..6),
        r in 0.2..1.0f64,
    ) {
        // Sort and space out the distances to avoid numerical ties.
        let mut dists = raw;
        dists.sort_by(f64::total_cmp);
        let mut ok = true;
        for w in dists.windows(2) {
            if w[1] - w[0] < 0.02 {
                ok = false;
            }
        }
        prop_assume!(ok);
        let pdf = UniformDifferencePdf::new(r);
        let cands: Vec<NnCandidate> = dists
            .iter()
            .map(|&d| NnCandidate { center_distance: d, pdf: &pdf })
            .collect();
        let probs = nn_probabilities(&cands, NnConfig::default());
        for w in probs.windows(2) {
            prop_assert!(w[0] + 1e-9 >= w[1], "{probs:?} for {dists:?}");
        }
    }

    #[test]
    fn gaussian_mass_within_is_monotone(
        r in 0.2..2.0f64,
        sigma in 0.05..1.5f64,
    ) {
        let pdf = TruncatedGaussianPdf::new(r, sigma);
        let mut prev = 0.0;
        for k in 1..=20 {
            let radius = r * k as f64 / 20.0;
            let m = pdf.mass_within(radius);
            prop_assert!(m + 1e-12 >= prev);
            prop_assert!((0.0..=1.0).contains(&m));
            prev = m;
        }
        prop_assert!((pdf.mass_within(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_difference_cdf_properties(r in 0.1..2.0f64) {
        let pdf = UniformDifferencePdf::new(r);
        // Support is 2r; density decreasing; CDF monotone to 1.
        prop_assert!((pdf.support_radius() - 2.0 * r).abs() < 1e-12);
        let mut prev_mass = 0.0;
        let mut prev_density = f64::INFINITY;
        for k in 0..=20 {
            let s = 2.0 * r * k as f64 / 20.0;
            let dens = pdf.density(s);
            prop_assert!(dens <= prev_density + 1e-12);
            prev_density = dens;
            let m = pdf.mass_within(s);
            prop_assert!(m + 1e-12 >= prev_mass);
            prev_mass = m;
        }
        prop_assert!((pdf.mass_within(2.0 * r) - 1.0).abs() < 1e-9);
    }
}
