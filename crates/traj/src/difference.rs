//! Difference trajectories `TR_iq = Tr_i − Tr_q` (§3.2 of the paper).
//!
//! The key transformation: instead of tracking two uncertain objects, view
//! their vector difference as a single object whose distance from the
//! origin equals the distance between the two expected locations. On every
//! *synchronized* segment (between consecutive sample times of either
//! trajectory) the difference moves linearly, so its distance from the
//! origin is a hyperbola piece.

use crate::distance::{DistanceFunction, DistancePiece};
use crate::trajectory::{Oid, Trajectory};
use std::fmt;
use unn_geom::hyperbola::Hyperbola;
use unn_geom::interval::TimeInterval;

/// Error constructing a difference trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DifferenceError {
    /// The query window is not contained in a trajectory's time domain.
    WindowOutsideDomain {
        /// The trajectory whose domain is too small.
        oid: Oid,
    },
    /// The query window is degenerate (zero length).
    DegenerateWindow,
}

impl fmt::Display for DifferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifferenceError::WindowOutsideDomain { oid } => {
                write!(f, "query window extends outside the domain of {oid}")
            }
            DifferenceError::DegenerateWindow => write!(f, "query window has zero length"),
        }
    }
}

impl std::error::Error for DifferenceError {}

/// Builds the distance function `d_iq(t)` of the difference trajectory
/// `TR_iq = Tr_i − Tr_q` over `window`.
///
/// The segmentation is the union of both trajectories' sample times inside
/// the window (synchronized re-segmentation); on each elementary segment
/// the relative motion is linear and the distance is one hyperbola piece.
pub fn difference_distance(
    query: &Trajectory,
    other: &Trajectory,
    window: &TimeInterval,
) -> Result<DistanceFunction, DifferenceError> {
    if window.is_degenerate() {
        return Err(DifferenceError::DegenerateWindow);
    }
    for tr in [query, other] {
        if !tr.span().contains_interval(window) {
            return Err(DifferenceError::WindowOutsideDomain { oid: tr.oid() });
        }
    }
    // Elementary breakpoints: window ends plus interior sample times of
    // both trajectories.
    let mut cuts = vec![window.start(), window.end()];
    for tr in [query, other] {
        for t in tr.breakpoints_in(window) {
            if t > window.start() && t < window.end() {
                cuts.push(t);
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut pieces = Vec::with_capacity(cuts.len() - 1);
    for w in cuts.windows(2) {
        let span = TimeInterval::new(w[0], w[1]);
        if span.is_degenerate() {
            continue;
        }
        let mid = span.midpoint();
        // Velocities are constant on the elementary segment; sample them at
        // its midpoint to avoid boundary ambiguity.
        let vq = query
            .velocity_at(mid)
            .expect("window checked against domain");
        let vi = other
            .velocity_at(mid)
            .expect("window checked against domain");
        let pq = query.position_at(span.start()).expect("window checked");
        let pi = other.position_at(span.start()).expect("window checked");
        let rel_p0 = pi - pq;
        let rel_v = vi - vq;
        pieces.push(DistancePiece {
            span,
            hyperbola: Hyperbola::from_relative_motion(rel_p0, rel_v, span.start()),
        });
    }
    DistanceFunction::new(other.oid(), pieces).map_err(|_| DifferenceError::DegenerateWindow)
}

/// Builds the distance functions of all trajectories in `others` relative
/// to `query`, skipping any entry with the query's own `oid`.
pub fn difference_distances(
    query: &Trajectory,
    others: &[Trajectory],
    window: &TimeInterval,
) -> Result<Vec<DistanceFunction>, DifferenceError> {
    difference_distances_refs(query, others.iter(), window)
}

/// Like [`difference_distances`], but over borrowed trajectories — the
/// entry point the query pipeline uses so candidate sets can be built
/// straight from a shared snapshot without cloning any trajectory.
pub fn difference_distances_refs<'a, I>(
    query: &Trajectory,
    others: I,
    window: &TimeInterval,
) -> Result<Vec<DistanceFunction>, DifferenceError>
where
    I: IntoIterator<Item = &'a Trajectory>,
{
    let iter = others.into_iter();
    let mut out = Vec::with_capacity(iter.size_hint().0);
    for tr in iter {
        if tr.oid() == query.oid() {
            continue;
        }
        out.push(difference_distance(query, tr, window)?);
    }
    Ok(out)
}

/// Parallel variant of [`difference_distances_refs`]: the per-candidate
/// hyperbola-piece construction is embarrassingly parallel, so candidates
/// are mapped through [`crate::par::par_map`] (small inputs and
/// single-core hosts fall back to the sequential path). The output order
/// matches the input order exactly, so answers are bit-identical to the
/// sequential construction.
pub fn difference_distances_par(
    query: &Trajectory,
    others: &[&Trajectory],
    window: &TimeInterval,
) -> Result<Vec<DistanceFunction>, DifferenceError> {
    let cands: Vec<&Trajectory> = others
        .iter()
        .copied()
        .filter(|t| t.oid() != query.oid())
        .collect();
    crate::par::par_map(&cands, 64, |tr| difference_distance(query, tr, window))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight(oid: u64, x0: f64, y0: f64, vx: f64, vy: f64, t_end: f64) -> Trajectory {
        Trajectory::from_triples(
            Oid(oid),
            &[(x0, y0, 0.0), (x0 + vx * t_end, y0 + vy * t_end, t_end)],
        )
        .unwrap()
    }

    #[test]
    fn single_segment_difference_matches_geometry() {
        // Query moves +x from origin; other is static at (0, 3).
        let q = straight(0, 0.0, 0.0, 1.0, 0.0, 10.0);
        let o = straight(1, 0.0, 3.0, 0.0, 0.0, 10.0);
        let w = TimeInterval::new(0.0, 10.0);
        let f = difference_distance(&q, &o, &w).unwrap();
        assert_eq!(f.owner(), Oid(1));
        assert_eq!(f.pieces().len(), 1);
        // Distance at t: |(−t, 3)| = sqrt(t² + 9).
        for t in [0.0, 1.0, 4.0, 10.0] {
            let expected = (t * t + 9.0_f64).sqrt();
            assert!((f.eval(t).unwrap() - expected).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn multi_segment_resegmentation() {
        // Other changes direction at t=5; query at t=4: expect 3 pieces
        // within [0, 10] (cuts at 4 and 5).
        let q = Trajectory::from_triples(
            Oid(0),
            &[(0.0, 0.0, 0.0), (4.0, 0.0, 4.0), (4.0, 6.0, 10.0)],
        )
        .unwrap();
        let o = Trajectory::from_triples(
            Oid(1),
            &[(10.0, 0.0, 0.0), (5.0, 0.0, 5.0), (5.0, 5.0, 10.0)],
        )
        .unwrap();
        let w = TimeInterval::new(0.0, 10.0);
        let f = difference_distance(&q, &o, &w).unwrap();
        assert_eq!(f.pieces().len(), 3);
        assert_eq!(f.breakpoints(), vec![4.0, 5.0]);
        // Cross-check against direct distances on a dense grid.
        for k in 0..=100 {
            let t = k as f64 * 0.1;
            let expected = q
                .position_at(t)
                .unwrap()
                .distance(o.position_at(t).unwrap());
            assert!(
                (f.eval(t).unwrap() - expected).abs() < 1e-9,
                "t={t}: {} vs {}",
                f.eval(t).unwrap(),
                expected
            );
        }
    }

    #[test]
    fn window_restriction_applies() {
        let q = straight(0, 0.0, 0.0, 1.0, 0.0, 10.0);
        let o = straight(1, 5.0, 0.0, -1.0, 0.0, 10.0);
        let w = TimeInterval::new(2.0, 8.0);
        let f = difference_distance(&q, &o, &w).unwrap();
        assert_eq!(f.span(), w);
    }

    #[test]
    fn errors_for_bad_windows() {
        let q = straight(0, 0.0, 0.0, 1.0, 0.0, 10.0);
        let o = straight(1, 5.0, 0.0, -1.0, 0.0, 5.0);
        assert_eq!(
            difference_distance(&q, &o, &TimeInterval::new(0.0, 10.0)),
            Err(DifferenceError::WindowOutsideDomain { oid: Oid(1) })
        );
        assert_eq!(
            difference_distance(&q, &o, &TimeInterval::new(3.0, 3.0)),
            Err(DifferenceError::DegenerateWindow)
        );
    }

    #[test]
    fn batch_skips_query_itself() {
        let q = straight(0, 0.0, 0.0, 1.0, 0.0, 10.0);
        let o1 = straight(1, 5.0, 0.0, -1.0, 0.0, 10.0);
        let o2 = straight(2, 0.0, 5.0, 0.0, -1.0, 10.0);
        let all = vec![q.clone(), o1, o2];
        let w = TimeInterval::new(0.0, 10.0);
        let fs = difference_distances(&q, &all, &w).unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].owner(), Oid(1));
        assert_eq!(fs[1].owner(), Oid(2));
    }

    #[test]
    fn closest_approach_matches_vertex() {
        // Head-on: q at origin moving +x at 1; o at (10,0) moving −x at 1.
        // Relative position (10 − 2t, 0): meet at t = 5.
        let q = straight(0, 0.0, 0.0, 1.0, 0.0, 10.0);
        let o = straight(1, 10.0, 0.0, -1.0, 0.0, 10.0);
        let f = difference_distance(&q, &o, &TimeInterval::new(0.0, 10.0)).unwrap();
        let (tmin, dmin) = f.min_over_window();
        assert!((tmin - 5.0).abs() < 1e-9);
        assert!(dmin < 1e-9);
    }
}
