//! Piecewise-hyperbola distance functions of difference trajectories
//! (§3.2 of the paper).
//!
//! For a query trajectory `Tr_q` and a candidate `Tr_i`, the *difference
//! trajectory* `TR_iq = Tr_i − Tr_q` moves piecewise linearly, and its
//! distance from the origin — equal to the distance between the two
//! expected locations — is `d_iq(t) = √(A t² + B t + C)` on every segment:
//! a hyperbola. A [`DistanceFunction`] is the full piecewise function over
//! the query window, one hyperbola piece per synchronized segment.

use crate::trajectory::Oid;
use std::fmt;
use unn_geom::hyperbola::Hyperbola;
use unn_geom::interval::TimeInterval;

/// One hyperbola piece of a distance function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistancePiece {
    /// Validity window of this piece.
    pub span: TimeInterval,
    /// The hyperbola on that window (in global time).
    pub hyperbola: Hyperbola,
}

/// The distance-from-origin function of one difference trajectory over a
/// query window: contiguous hyperbola pieces covering the window.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceFunction {
    owner: Oid,
    pieces: Vec<DistancePiece>,
}

/// Error constructing a [`DistanceFunction`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistanceFunctionError {
    /// No pieces supplied.
    Empty,
    /// Pieces do not tile the window contiguously.
    NonContiguous {
        /// Index of the offending piece.
        at: usize,
    },
}

impl fmt::Display for DistanceFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceFunctionError::Empty => write!(f, "distance function has no pieces"),
            DistanceFunctionError::NonContiguous { at } => {
                write!(
                    f,
                    "distance-function pieces are not contiguous at index {at}"
                )
            }
        }
    }
}

impl std::error::Error for DistanceFunctionError {}

impl DistanceFunction {
    /// Builds a distance function from contiguous pieces.
    pub fn new(owner: Oid, pieces: Vec<DistancePiece>) -> Result<Self, DistanceFunctionError> {
        if pieces.is_empty() {
            return Err(DistanceFunctionError::Empty);
        }
        for (i, w) in pieces.windows(2).enumerate() {
            if (w[0].span.end() - w[1].span.start()).abs() > 1e-9 {
                return Err(DistanceFunctionError::NonContiguous { at: i + 1 });
            }
        }
        Ok(DistanceFunction { owner, pieces })
    }

    /// A single-piece distance function (the paper's running assumption in
    /// the complexity analysis).
    pub fn single(owner: Oid, span: TimeInterval, hyperbola: Hyperbola) -> Self {
        DistanceFunction {
            owner,
            pieces: vec![DistancePiece { span, hyperbola }],
        }
    }

    /// The owning object's identifier.
    pub fn owner(&self) -> Oid {
        self.owner
    }

    /// The hyperbola pieces, in time order.
    pub fn pieces(&self) -> &[DistancePiece] {
        &self.pieces
    }

    /// The covered window.
    pub fn span(&self) -> TimeInterval {
        TimeInterval::new(
            self.pieces.first().unwrap().span.start(),
            self.pieces.last().unwrap().span.end(),
        )
    }

    /// The piece active at instant `t` (the last piece whose span contains
    /// `t` when `t` is a breakpoint).
    pub fn piece_at(&self, t: f64) -> Option<&DistancePiece> {
        if !self.span().contains(t) {
            return None;
        }
        let idx = self
            .pieces
            .partition_point(|p| p.span.start() <= t)
            .clamp(1, self.pieces.len());
        Some(&self.pieces[idx - 1])
    }

    /// Distance at instant `t` (`None` outside the window).
    pub fn eval(&self, t: f64) -> Option<f64> {
        self.piece_at(t).map(|p| p.hyperbola.eval(t))
    }

    /// Distance at instant `t`, clamped into the window.
    pub fn eval_clamped(&self, t: f64) -> f64 {
        let t = self.span().clamp(t);
        self.piece_at(t)
            .map(|p| p.hyperbola.eval(t))
            .unwrap_or(f64::INFINITY)
    }

    /// Global minimum distance over the window, with the instant where it
    /// is attained.
    pub fn min_over_window(&self) -> (f64, f64) {
        let mut best = (self.pieces[0].span.start(), f64::INFINITY);
        for p in &self.pieces {
            let (t, d) = p.hyperbola.min_on(&p.span);
            if d < best.1 {
                best = (t, d);
            }
        }
        best
    }

    /// Global maximum distance over the window.
    pub fn max_over_window(&self) -> (f64, f64) {
        let mut best = (self.pieces[0].span.start(), f64::NEG_INFINITY);
        for p in &self.pieces {
            let (t, d) = p.hyperbola.max_on(&p.span);
            if d > best.1 {
                best = (t, d);
            }
        }
        best
    }

    /// The interior breakpoints (piece boundaries).
    pub fn breakpoints(&self) -> Vec<f64> {
        self.pieces.windows(2).map(|w| w[1].span.start()).collect()
    }

    /// Restricts the function to `window`, dropping/trimming pieces.
    /// Returns `None` when the intersection is empty or degenerate.
    pub fn restrict(&self, window: &TimeInterval) -> Option<DistanceFunction> {
        let mut pieces = Vec::new();
        for p in &self.pieces {
            if let Some(iv) = p.span.intersection(window) {
                if !iv.is_degenerate() {
                    pieces.push(DistancePiece {
                        span: iv,
                        hyperbola: p.hyperbola,
                    });
                }
            }
        }
        if pieces.is_empty() {
            None
        } else {
            Some(DistanceFunction {
                owner: self.owner,
                pieces,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_geom::point::Vec2;

    fn h(p0: (f64, f64), v: (f64, f64), t0: f64) -> Hyperbola {
        Hyperbola::from_relative_motion(Vec2::new(p0.0, p0.1), Vec2::new(v.0, v.1), t0)
    }

    fn two_piece() -> DistanceFunction {
        // Piece 1: at (1,0) moving +x on [0,5]; piece 2 continues from
        // (6,0) moving -x on [5,10].
        DistanceFunction::new(
            Oid(7),
            vec![
                DistancePiece {
                    span: TimeInterval::new(0.0, 5.0),
                    hyperbola: h((1.0, 0.0), (1.0, 0.0), 0.0),
                },
                DistancePiece {
                    span: TimeInterval::new(5.0, 10.0),
                    hyperbola: h((6.0, 0.0), (-1.0, 0.0), 5.0),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_contiguity() {
        let res = DistanceFunction::new(
            Oid(1),
            vec![
                DistancePiece {
                    span: TimeInterval::new(0.0, 1.0),
                    hyperbola: h((0.0, 1.0), (0.0, 0.0), 0.0),
                },
                DistancePiece {
                    span: TimeInterval::new(2.0, 3.0),
                    hyperbola: h((0.0, 1.0), (0.0, 0.0), 0.0),
                },
            ],
        );
        assert_eq!(
            res.unwrap_err(),
            DistanceFunctionError::NonContiguous { at: 1 }
        );
        assert_eq!(
            DistanceFunction::new(Oid(1), vec![]).unwrap_err(),
            DistanceFunctionError::Empty
        );
    }

    #[test]
    fn eval_across_pieces() {
        let f = two_piece();
        assert_eq!(f.eval(0.0), Some(1.0));
        assert_eq!(f.eval(4.0), Some(5.0));
        assert_eq!(f.eval(5.0), Some(6.0)); // continuous at the breakpoint
        assert_eq!(f.eval(10.0), Some(1.0));
        assert_eq!(f.eval(10.5), None);
        assert_eq!(f.eval_clamped(12.0), 1.0);
    }

    #[test]
    fn min_max_over_window() {
        let f = two_piece();
        let (tmin, dmin) = f.min_over_window();
        assert_eq!(tmin, 0.0);
        assert_eq!(dmin, 1.0);
        let (tmax, dmax) = f.max_over_window();
        assert_eq!(tmax, 5.0);
        assert_eq!(dmax, 6.0);
    }

    #[test]
    fn breakpoints_and_span() {
        let f = two_piece();
        assert_eq!(f.breakpoints(), vec![5.0]);
        assert_eq!(f.span(), TimeInterval::new(0.0, 10.0));
    }

    #[test]
    fn restrict_trims_pieces() {
        let f = two_piece();
        let g = f.restrict(&TimeInterval::new(3.0, 7.0)).unwrap();
        assert_eq!(g.pieces().len(), 2);
        assert_eq!(g.span(), TimeInterval::new(3.0, 7.0));
        assert_eq!(g.eval(3.0), Some(4.0));
        assert!(f.restrict(&TimeInterval::new(20.0, 30.0)).is_none());
        // Degenerate restriction yields nothing.
        assert!(f.restrict(&TimeInterval::new(10.0, 10.0)).is_none());
    }
}
