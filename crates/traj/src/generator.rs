//! Synthetic workload generator (§5 of the paper).
//!
//! "The moving objects were generated using a modified version of the
//! random waypoint model, and each object starts at a randomly selected
//! position in the region of interest. Subsequently, the object picks a
//! random direction and moves at a speed randomly distributed between
//! 15mph and 60mph. For simplicity, we assumed that all the objects change
//! their velocity vectors synchronously. The duration of the motion is
//! fixed to 60min", over "a geographic area of size 40 × 40 miles²."
//!
//! Distances are miles, times are minutes; speeds are converted from mph.

use crate::trajectory::{Oid, Trajectory, TrajectorySample};
use crate::uncertain::UncertainTrajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unn_geom::point::{Point2, Vec2};

/// Parameters of the random waypoint workload. Defaults match §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Width of the region in miles.
    pub region_width: f64,
    /// Height of the region in miles.
    pub region_height: f64,
    /// Minimum speed in miles per hour.
    pub min_speed_mph: f64,
    /// Maximum speed in miles per hour.
    pub max_speed_mph: f64,
    /// Total motion duration in minutes.
    pub duration_minutes: f64,
    /// Synchronous velocity-change period in minutes (all objects turn at
    /// the same epochs, per the paper's simplification).
    pub epoch_minutes: f64,
    /// Number of moving objects to generate.
    pub num_objects: usize,
    /// Random seed (the workload is fully reproducible).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            region_width: 40.0,
            region_height: 40.0,
            min_speed_mph: 15.0,
            max_speed_mph: 60.0,
            duration_minutes: 60.0,
            epoch_minutes: 10.0,
            num_objects: 1000,
            seed: 0xEDB7_2009,
        }
    }
}

impl WorkloadConfig {
    /// Convenience: same defaults with a different population and seed.
    pub fn with_objects(num_objects: usize, seed: u64) -> Self {
        WorkloadConfig {
            num_objects,
            seed,
            ..WorkloadConfig::default()
        }
    }
}

/// Generates the trajectory population described by `cfg`.
///
/// Every trajectory starts at a uniform random position; at each
/// synchronous epoch boundary it draws a direction uniformly and a speed
/// uniformly in `[min_speed, max_speed]`, rejecting draws that would leave
/// the region by the end of the epoch (the "modified" part of the random
/// waypoint model — legs stay linear, objects stay in bounds).
pub fn generate(cfg: &WorkloadConfig) -> Vec<Trajectory> {
    assert!(cfg.num_objects > 0, "num_objects must be positive");
    assert!(
        cfg.region_width > 0.0 && cfg.region_height > 0.0,
        "region must have positive area"
    );
    assert!(
        cfg.min_speed_mph > 0.0 && cfg.max_speed_mph >= cfg.min_speed_mph,
        "invalid speed range"
    );
    assert!(
        cfg.duration_minutes > 0.0 && cfg.epoch_minutes > 0.0,
        "invalid durations"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Epoch boundaries (shared by all objects: synchronous changes).
    let mut epochs = vec![0.0];
    let mut t = cfg.epoch_minutes;
    while t < cfg.duration_minutes - 1e-9 {
        epochs.push(t);
        t += cfg.epoch_minutes;
    }
    epochs.push(cfg.duration_minutes);

    (0..cfg.num_objects)
        .map(|i| {
            let mut pos = Point2::new(
                rng.random_range(0.0..cfg.region_width),
                rng.random_range(0.0..cfg.region_height),
            );
            let mut samples = Vec::with_capacity(epochs.len());
            samples.push(TrajectorySample {
                position: pos,
                time: epochs[0],
            });
            for w in epochs.windows(2) {
                let dt = w[1] - w[0];
                let next = next_leg_endpoint(&mut rng, cfg, pos, dt);
                samples.push(TrajectorySample {
                    position: next,
                    time: w[1],
                });
                pos = next;
            }
            Trajectory::new(Oid(i as u64), samples).expect("generator produces valid samples")
        })
        .collect()
}

/// Generates the same population wrapped in the uniform-pdf uncertainty
/// model with disk radius `radius` (miles).
pub fn generate_uncertain(cfg: &WorkloadConfig, radius: f64) -> Vec<UncertainTrajectory> {
    generate(cfg)
        .into_iter()
        .map(|tr| {
            UncertainTrajectory::with_uniform_pdf(tr, radius).expect("valid uncertainty radius")
        })
        .collect()
}

fn next_leg_endpoint(
    rng: &mut StdRng,
    cfg: &WorkloadConfig,
    pos: Point2,
    dt_minutes: f64,
) -> Point2 {
    for _ in 0..128 {
        let dir: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let mph: f64 = rng.random_range(cfg.min_speed_mph..=cfg.max_speed_mph);
        let miles_per_min = mph / 60.0;
        let step = Vec2::new(dir.cos(), dir.sin()) * (miles_per_min * dt_minutes);
        let cand = pos + step;
        if (0.0..=cfg.region_width).contains(&cand.x) && (0.0..=cfg.region_height).contains(&cand.y)
        {
            return cand;
        }
    }
    // Extremely unlikely fallback (tiny region / long epoch): head toward
    // the center at minimum speed, clamped into the region.
    let center = Point2::new(0.5 * cfg.region_width, 0.5 * cfg.region_height);
    let toward = (center - pos).normalized().unwrap_or(Vec2::new(1.0, 0.0));
    let step = toward * (cfg.min_speed_mph / 60.0 * dt_minutes);
    let cand = pos + step;
    Point2::new(
        cand.x.clamp(0.0, cfg.region_width),
        cand.y.clamp(0.0, cfg.region_height),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_population() {
        let cfg = WorkloadConfig::with_objects(25, 1);
        let trs = generate(&cfg);
        assert_eq!(trs.len(), 25);
        for (i, tr) in trs.iter().enumerate() {
            assert_eq!(tr.oid(), Oid(i as u64));
            // 60 min / 10 min epochs -> 6 legs, 7 samples.
            assert_eq!(tr.segment_count(), 6);
            assert_eq!(tr.span().start(), 0.0);
            assert_eq!(tr.span().end(), 60.0);
        }
    }

    #[test]
    fn objects_stay_in_region() {
        let cfg = WorkloadConfig::with_objects(50, 7);
        for tr in generate(&cfg) {
            for s in tr.samples() {
                assert!((0.0..=40.0).contains(&s.position.x), "{:?}", s.position);
                assert!((0.0..=40.0).contains(&s.position.y), "{:?}", s.position);
            }
        }
    }

    #[test]
    fn speeds_respect_configured_range() {
        let cfg = WorkloadConfig::with_objects(50, 99);
        let lo = cfg.min_speed_mph / 60.0;
        let hi = cfg.max_speed_mph / 60.0;
        for tr in generate(&cfg) {
            for seg in tr.segments() {
                let v = seg.speed();
                assert!(
                    v >= lo - 1e-9 && v <= hi + 1e-9,
                    "speed {v} outside [{lo}, {hi}] miles/min"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&WorkloadConfig::with_objects(10, 42));
        let b = generate(&WorkloadConfig::with_objects(10, 42));
        assert_eq!(a, b);
        let c = generate(&WorkloadConfig::with_objects(10, 43));
        assert_ne!(a, c);
    }

    #[test]
    fn synchronous_epochs_are_shared() {
        let cfg = WorkloadConfig::with_objects(5, 3);
        let trs = generate(&cfg);
        let times: Vec<Vec<f64>> = trs
            .iter()
            .map(|t| t.samples().iter().map(|s| s.time).collect())
            .collect();
        for w in times.windows(2) {
            assert_eq!(w[0], w[1], "all objects share the same epochs");
        }
    }

    #[test]
    fn uncertain_wrapper_applies_radius() {
        let cfg = WorkloadConfig::with_objects(3, 5);
        let trs = generate_uncertain(&cfg, 0.5);
        for tr in &trs {
            assert_eq!(tr.radius(), 0.5);
        }
    }

    #[test]
    fn non_divisible_epoch_still_covers_duration() {
        let cfg = WorkloadConfig {
            duration_minutes: 25.0,
            epoch_minutes: 10.0,
            ..WorkloadConfig::with_objects(2, 11)
        };
        let trs = generate(&cfg);
        for tr in &trs {
            assert_eq!(tr.span().end(), 25.0);
            // epochs 0,10,20,25 -> 3 segments
            assert_eq!(tr.segment_count(), 3);
        }
    }
}
