//! # unn-traj
//!
//! Trajectory substrate for the `uncertain-nn` workspace — the Rust
//! reproduction of *"Continuous Probabilistic Nearest-Neighbor Queries for
//! Uncertain Trajectories"* (Trajcevski et al., EDBT 2009).
//!
//! * [`trajectory`] — validated `(x, y, t)` polylines with linear
//!   interpolation (§2.1, Eq. 1);
//! * [`uncertain`] — trajectories with uncertainty disks and location pdfs;
//! * [`difference`] — the §3.2 transformation to difference trajectories
//!   `TR_iq = Tr_i − Tr_q` with synchronized re-segmentation;
//! * [`distance`] — piecewise-hyperbola distance functions `d_iq(t)`;
//! * [`generator`] — the §5 random-waypoint workload (40×40 mi²,
//!   15–60 mph, 60 min, synchronous velocity changes), fully seeded.

#![warn(missing_docs)]

pub mod difference;
pub mod distance;
pub mod generator;
pub mod par;
pub mod trajectory;
pub mod uncertain;

pub use difference::{
    difference_distance, difference_distances, difference_distances_par, difference_distances_refs,
};
pub use distance::{DistanceFunction, DistancePiece};
pub use generator::{generate, generate_uncertain, WorkloadConfig};
pub use trajectory::{Oid, Segment, Trajectory, TrajectoryError, TrajectorySample};
pub use uncertain::{common_radius, UncertainTrajectory};
