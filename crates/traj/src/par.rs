//! A minimal scoped-thread parallel map shared by the pipeline's
//! embarrassingly parallel construction steps (per-candidate difference
//! trajectories, per-perspective reverse envelopes).

use std::num::NonZeroUsize;

/// Maps `f` over `items`, chunking across scoped threads when the host
/// has more than one core **and** the input is at least `min_parallel`
/// long (small inputs and single-core hosts run sequentially). Output
/// order always matches input order exactly, so results are
/// bit-identical to the sequential map.
///
/// # Panics
///
/// Propagates a panic from `f` (the worker thread's panic aborts the
/// scope join).
pub fn par_map<T, R, F>(items: &[T], min_parallel: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    if threads <= 1 || items.len() < min_parallel {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let par = par_map(&items, 0, |x| x * 3 + 1);
        assert_eq!(seq, par);
        // Below the parallel threshold the sequential path is taken.
        let small = par_map(&items[..5], 64, |x| x + 1);
        assert_eq!(small, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fallible_maps_collect_cleanly() {
        let items: Vec<i64> = (0..200).collect();
        let ok: Result<Vec<i64>, String> = par_map(&items, 0, |x| Ok::<i64, String>(x * 2))
            .into_iter()
            .collect();
        assert_eq!(ok.unwrap()[199], 398);
        let err: Result<Vec<i64>, String> = par_map(&items, 0, |x| {
            if *x == 77 {
                Err("boom".to_string())
            } else {
                Ok(*x)
            }
        })
        .into_iter()
        .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }
}
