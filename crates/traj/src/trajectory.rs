//! Trajectories: polylines in (2D space) × time (§2.1 of the paper).
//!
//! A trajectory is a function `Time → R²` represented as a sequence of 3D
//! points `(x, y, t)` with non-decreasing time, interpolated linearly in
//! between — the object moves along straight segments at constant speed
//! (Eq. 1).

use std::fmt;
use unn_geom::interval::TimeInterval;
use unn_geom::point::{Point2, Vec2};

/// Unique identifier of a moving object (`oid` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tr{}", self.0)
    }
}

/// A single trajectory vertex: location at a time instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySample {
    /// Location at the instant.
    pub position: Point2,
    /// The instant.
    pub time: f64,
}

impl TrajectorySample {
    /// Creates a sample.
    pub fn new(x: f64, y: f64, t: f64) -> Self {
        TrajectorySample {
            position: Point2::new(x, y),
            time: t,
        }
    }
}

/// Errors raised when constructing a [`Trajectory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryError {
    /// A trajectory needs at least two samples to define motion.
    TooFewSamples,
    /// Sample times must be strictly increasing.
    NonMonotonicTime,
    /// A coordinate or time was NaN/∞.
    NonFiniteValue,
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::TooFewSamples => {
                write!(f, "trajectory needs at least two samples")
            }
            TrajectoryError::NonMonotonicTime => {
                write!(f, "trajectory sample times must be strictly increasing")
            }
            TrajectoryError::NonFiniteValue => {
                write!(f, "trajectory contains a non-finite coordinate or time")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// One straight-line, constant-speed leg of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Sample opening the leg.
    pub start: TrajectorySample,
    /// Sample closing the leg.
    pub end: TrajectorySample,
}

impl Segment {
    /// Constant velocity along the leg.
    pub fn velocity(&self) -> Vec2 {
        let dt = self.end.time - self.start.time;
        (self.end.position - self.start.position) / dt
    }

    /// Constant speed along the leg (Eq. 1 of the paper).
    pub fn speed(&self) -> f64 {
        self.velocity().norm()
    }

    /// Time span of the leg.
    pub fn span(&self) -> TimeInterval {
        TimeInterval::new(self.start.time, self.end.time)
    }

    /// Position at `t ∈ span` by linear interpolation.
    pub fn position_at(&self, t: f64) -> Point2 {
        let dt = self.end.time - self.start.time;
        let s = (t - self.start.time) / dt;
        self.start.position.lerp(self.end.position, s)
    }
}

/// A validated trajectory: `oid` plus at least two samples with strictly
/// increasing times.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    oid: Oid,
    samples: Vec<TrajectorySample>,
}

impl Trajectory {
    /// Builds a trajectory, validating the sample sequence.
    pub fn new(oid: Oid, samples: Vec<TrajectorySample>) -> Result<Self, TrajectoryError> {
        if samples.len() < 2 {
            return Err(TrajectoryError::TooFewSamples);
        }
        for s in &samples {
            if !s.position.is_finite() || !s.time.is_finite() {
                return Err(TrajectoryError::NonFiniteValue);
            }
        }
        for w in samples.windows(2) {
            if w[1].time <= w[0].time {
                return Err(TrajectoryError::NonMonotonicTime);
            }
        }
        Ok(Trajectory { oid, samples })
    }

    /// Convenience constructor from `(x, y, t)` triples.
    pub fn from_triples(oid: Oid, triples: &[(f64, f64, f64)]) -> Result<Self, TrajectoryError> {
        Trajectory::new(
            oid,
            triples
                .iter()
                .map(|&(x, y, t)| TrajectorySample::new(x, y, t))
                .collect(),
        )
    }

    /// The object identifier.
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// The validated samples, in time order.
    pub fn samples(&self) -> &[TrajectorySample] {
        &self.samples
    }

    /// The trajectory's time domain.
    pub fn span(&self) -> TimeInterval {
        TimeInterval::new(
            self.samples.first().unwrap().time,
            self.samples.last().unwrap().time,
        )
    }

    /// Iterates over the straight-line legs.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.samples.windows(2).map(|w| Segment {
            start: w[0],
            end: w[1],
        })
    }

    /// Number of legs.
    pub fn segment_count(&self) -> usize {
        self.samples.len() - 1
    }

    /// Expected location at `t`, or `None` outside the time domain.
    pub fn position_at(&self, t: f64) -> Option<Point2> {
        if !self.span().contains(t) {
            return None;
        }
        Some(self.position_clamped(t))
    }

    /// Expected location at `t`, clamping `t` into the time domain.
    pub fn position_clamped(&self, t: f64) -> Point2 {
        let t = self.span().clamp(t);
        // Binary search for the segment containing t.
        let idx = self
            .samples
            .partition_point(|s| s.time <= t)
            .clamp(1, self.samples.len() - 1);
        let seg = Segment {
            start: self.samples[idx - 1],
            end: self.samples[idx],
        };
        seg.position_at(t)
    }

    /// Velocity at `t` (constant per leg; the right-continuous choice is
    /// made at sample instants), or `None` outside the domain.
    pub fn velocity_at(&self, t: f64) -> Option<Vec2> {
        if !self.span().contains(t) {
            return None;
        }
        let idx = self
            .samples
            .partition_point(|s| s.time <= t)
            .clamp(1, self.samples.len() - 1);
        Some(
            Segment {
                start: self.samples[idx - 1],
                end: self.samples[idx],
            }
            .velocity(),
        )
    }

    /// The sample instants (breakpoints of the piecewise-linear motion)
    /// that fall inside `iv`, in order.
    pub fn breakpoints_in(&self, iv: &TimeInterval) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| s.time)
            .filter(|t| iv.contains(*t))
            .collect()
    }

    /// Total length of the travelled path.
    pub fn path_length(&self) -> f64 {
        self.segments()
            .map(|s| s.start.position.distance(s.end.position))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_triples(
            Oid(1),
            &[(0.0, 0.0, 0.0), (10.0, 0.0, 10.0), (10.0, 5.0, 15.0)],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert_eq!(
            Trajectory::from_triples(Oid(1), &[(0.0, 0.0, 0.0)]),
            Err(TrajectoryError::TooFewSamples)
        );
        assert_eq!(
            Trajectory::from_triples(Oid(1), &[(0.0, 0.0, 5.0), (1.0, 1.0, 5.0)]),
            Err(TrajectoryError::NonMonotonicTime)
        );
        assert_eq!(
            Trajectory::from_triples(Oid(1), &[(0.0, 0.0, 1.0), (1.0, 1.0, 0.0)]),
            Err(TrajectoryError::NonMonotonicTime)
        );
        assert_eq!(
            Trajectory::from_triples(Oid(1), &[(f64::NAN, 0.0, 0.0), (1.0, 1.0, 1.0)]),
            Err(TrajectoryError::NonFiniteValue)
        );
    }

    #[test]
    fn interpolation_inside_segments() {
        let t = traj();
        assert_eq!(t.position_at(0.0), Some(Point2::new(0.0, 0.0)));
        assert_eq!(t.position_at(5.0), Some(Point2::new(5.0, 0.0)));
        assert_eq!(t.position_at(10.0), Some(Point2::new(10.0, 0.0)));
        assert_eq!(t.position_at(12.5), Some(Point2::new(10.0, 2.5)));
        assert_eq!(t.position_at(15.0), Some(Point2::new(10.0, 5.0)));
        assert_eq!(t.position_at(15.1), None);
        assert_eq!(t.position_at(-0.1), None);
        assert_eq!(t.position_clamped(100.0), Point2::new(10.0, 5.0));
    }

    #[test]
    fn speeds_follow_eq_1() {
        let t = traj();
        let segs: Vec<Segment> = t.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].speed(), 1.0); // 10 units in 10 time units
        assert_eq!(segs[1].speed(), 1.0); // 5 units in 5 time units
        assert_eq!(segs[0].velocity(), Vec2::new(1.0, 0.0));
        assert_eq!(segs[1].velocity(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn velocity_at_instants_is_right_continuous() {
        let t = traj();
        assert_eq!(t.velocity_at(10.0), Some(Vec2::new(0.0, 1.0)));
        assert_eq!(t.velocity_at(9.99), Some(Vec2::new(1.0, 0.0)));
        assert_eq!(t.velocity_at(16.0), None);
    }

    #[test]
    fn breakpoints_and_span() {
        let t = traj();
        assert_eq!(t.span(), TimeInterval::new(0.0, 15.0));
        assert_eq!(t.breakpoints_in(&TimeInterval::new(1.0, 14.0)), vec![10.0]);
        assert_eq!(
            t.breakpoints_in(&TimeInterval::new(0.0, 15.0)),
            vec![0.0, 10.0, 15.0]
        );
    }

    #[test]
    fn path_length() {
        assert_eq!(traj().path_length(), 15.0);
    }

    #[test]
    fn oid_display() {
        assert_eq!(Oid(42).to_string(), "Tr42");
    }
}
