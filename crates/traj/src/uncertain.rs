//! Uncertain trajectories (§2.1): a trajectory plus an uncertainty disk
//! radius and a location pdf.

use crate::trajectory::{Oid, Trajectory};
use std::fmt;
use unn_geom::disk::Disk;
use unn_geom::point::Point2;
use unn_prob::pdf::PdfKind;

/// An uncertain trajectory `Tr^u = {oid, r, pdf, (x₁,y₁,t₁), ...}`.
///
/// At every instant `t` in its span the object lies inside the
/// *uncertainty disk* `D(t)` of radius `r` around the expected location,
/// distributed by `pdf` (assumed rotationally symmetric; see
/// [`unn_prob::pdf::RadialPdf`]).
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainTrajectory {
    trajectory: Trajectory,
    radius: f64,
    pdf: PdfKind,
}

/// Error constructing an [`UncertainTrajectory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UncertainError {
    /// The uncertainty radius must be positive and finite.
    InvalidRadius(f64),
    /// The pdf's support must match the uncertainty radius.
    PdfSupportMismatch {
        /// The uncertainty radius.
        radius: f64,
        /// The pdf's support radius.
        support: f64,
    },
}

impl fmt::Display for UncertainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UncertainError::InvalidRadius(r) => {
                write!(f, "invalid uncertainty radius {r}")
            }
            UncertainError::PdfSupportMismatch { radius, support } => write!(
                f,
                "pdf support radius {support} does not match uncertainty radius {radius}"
            ),
        }
    }
}

impl std::error::Error for UncertainError {}

impl UncertainTrajectory {
    /// Wraps a trajectory with an uncertainty model.
    pub fn new(trajectory: Trajectory, radius: f64, pdf: PdfKind) -> Result<Self, UncertainError> {
        if !(radius.is_finite() && radius > 0.0) {
            return Err(UncertainError::InvalidRadius(radius));
        }
        let support = pdf.support_radius();
        if (support - radius).abs() > 1e-9 * radius.max(1.0) {
            return Err(UncertainError::PdfSupportMismatch { radius, support });
        }
        Ok(UncertainTrajectory {
            trajectory,
            radius,
            pdf,
        })
    }

    /// Shorthand: uniform location pdf over the uncertainty disk (the
    /// paper's running example, Eq. 2).
    pub fn with_uniform_pdf(trajectory: Trajectory, radius: f64) -> Result<Self, UncertainError> {
        UncertainTrajectory::new(trajectory, radius, PdfKind::Uniform { radius })
    }

    /// The underlying (expected-location) trajectory.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// The object identifier.
    pub fn oid(&self) -> Oid {
        self.trajectory.oid()
    }

    /// The uncertainty-disk radius `r`.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The location pdf descriptor.
    pub fn pdf(&self) -> PdfKind {
        self.pdf
    }

    /// The uncertainty disk `D(t)` at instant `t`, or `None` outside the
    /// trajectory's span.
    pub fn disk_at(&self, t: f64) -> Option<Disk> {
        self.trajectory
            .position_at(t)
            .map(|c| Disk::new(c, self.radius))
    }

    /// Expected location at `t` (the disk center), or `None` outside the
    /// span.
    pub fn expected_location(&self, t: f64) -> Option<Point2> {
        self.trajectory.position_at(t)
    }
}

/// Checks that a set of uncertain trajectories share the same uncertainty
/// radius and pdf — the standing assumption of the paper ("we assume the
/// parameters r and pdf are the same for the trajectories in a given
/// set"). Returns the common radius.
pub fn common_radius(trs: &[UncertainTrajectory]) -> Result<f64, UncertainError> {
    let mut radius = None;
    for tr in trs {
        match radius {
            None => radius = Some(tr.radius()),
            Some(r) => {
                if (tr.radius() - r).abs() > 1e-12 * r.max(1.0) {
                    return Err(UncertainError::PdfSupportMismatch {
                        radius: r,
                        support: tr.radius(),
                    });
                }
            }
        }
    }
    Ok(radius.unwrap_or(0.0))
}

/// Checks that a set of uncertain trajectories share one location pdf
/// (the same standing assumption as [`common_radius`], for the pdf
/// component). Returns the common [`PdfKind`], or the first mismatching
/// pair's radii wrapped in [`UncertainError::PdfSupportMismatch`].
pub fn common_pdf_kind(trs: &[UncertainTrajectory]) -> Result<Option<PdfKind>, UncertainError> {
    let mut kind: Option<PdfKind> = None;
    for tr in trs {
        match kind {
            None => kind = Some(tr.pdf()),
            Some(k) => {
                if tr.pdf() != k {
                    return Err(UncertainError::PdfSupportMismatch {
                        radius: k.support_radius(),
                        support: tr.pdf().support_radius(),
                    });
                }
            }
        }
    }
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Trajectory;

    fn traj(oid: u64) -> Trajectory {
        Trajectory::from_triples(Oid(oid), &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let u = UncertainTrajectory::with_uniform_pdf(traj(3), 0.5).unwrap();
        assert_eq!(u.oid(), Oid(3));
        assert_eq!(u.radius(), 0.5);
        assert_eq!(u.pdf(), PdfKind::Uniform { radius: 0.5 });
    }

    #[test]
    fn rejects_invalid_radius() {
        assert!(matches!(
            UncertainTrajectory::with_uniform_pdf(traj(1), 0.0),
            Err(UncertainError::InvalidRadius(_))
        ));
        assert!(matches!(
            UncertainTrajectory::with_uniform_pdf(traj(1), f64::NAN),
            Err(UncertainError::InvalidRadius(_))
        ));
    }

    #[test]
    fn rejects_pdf_support_mismatch() {
        let res = UncertainTrajectory::new(traj(1), 0.5, PdfKind::Uniform { radius: 0.7 });
        assert!(matches!(
            res,
            Err(UncertainError::PdfSupportMismatch { .. })
        ));
    }

    #[test]
    fn disk_at_follows_expected_location() {
        let u = UncertainTrajectory::with_uniform_pdf(traj(1), 0.25).unwrap();
        let d = u.disk_at(0.5).unwrap();
        assert_eq!(d.center, Point2::new(0.5, 0.5));
        assert_eq!(d.radius, 0.25);
        assert!(u.disk_at(2.0).is_none());
    }

    #[test]
    fn common_radius_checks_uniformity() {
        let a = UncertainTrajectory::with_uniform_pdf(traj(1), 0.5).unwrap();
        let b = UncertainTrajectory::with_uniform_pdf(traj(2), 0.5).unwrap();
        assert_eq!(common_radius(&[a.clone(), b]).unwrap(), 0.5);
        let c = UncertainTrajectory::with_uniform_pdf(traj(3), 0.6).unwrap();
        assert!(common_radius(&[a, c]).is_err());
        assert_eq!(common_radius(&[]).unwrap(), 0.0);
    }

    #[test]
    fn common_pdf_kind_checks_uniformity() {
        let a = UncertainTrajectory::with_uniform_pdf(traj(1), 0.5).unwrap();
        let b = UncertainTrajectory::with_uniform_pdf(traj(2), 0.5).unwrap();
        assert_eq!(
            common_pdf_kind(&[a.clone(), b]).unwrap(),
            Some(PdfKind::Uniform { radius: 0.5 })
        );
        let g = UncertainTrajectory::new(
            traj(3),
            0.5,
            PdfKind::TruncatedGaussian {
                radius: 0.5,
                sigma: 0.2,
            },
        )
        .unwrap();
        assert!(common_pdf_kind(&[a.clone(), g.clone()]).is_err());
        assert_eq!(
            common_pdf_kind(std::slice::from_ref(&g)).unwrap(),
            Some(PdfKind::TruncatedGaussian {
                radius: 0.5,
                sigma: 0.2
            })
        );
        assert_eq!(common_pdf_kind(&[]).unwrap(), None);
    }
}
