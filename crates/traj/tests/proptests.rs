//! Property-based tests for the trajectory substrate.

use proptest::prelude::*;
use unn_geom::interval::TimeInterval;
use unn_traj::difference::difference_distance;
use unn_traj::generator::{generate, WorkloadConfig};
use unn_traj::trajectory::{Oid, Trajectory};

fn arb_polyline(oid: u64) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 2..6).prop_map(move |wps| {
        let samples: Vec<(f64, f64, f64)> = wps
            .into_iter()
            .enumerate()
            .map(|(k, (x, y))| (x, y, k as f64 * 5.0))
            .collect();
        Trajectory::from_triples(Oid(oid), &samples).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_stays_on_segments(tr in arb_polyline(1), s in 0.0..1.0f64) {
        let span = tr.span();
        let t = span.start() + s * span.len();
        let p = tr.position_at(t).unwrap();
        // The point lies within the bounding box of its segment's
        // endpoints.
        let samples = tr.samples();
        let idx = samples.partition_point(|sm| sm.time <= t).clamp(1, samples.len() - 1);
        let (a, b) = (samples[idx - 1].position, samples[idx].position);
        prop_assert!(p.x >= a.x.min(b.x) - 1e-9 && p.x <= a.x.max(b.x) + 1e-9);
        prop_assert!(p.y >= a.y.min(b.y) - 1e-9 && p.y <= a.y.max(b.y) + 1e-9);
    }

    #[test]
    fn difference_distance_equals_pointwise_distance(
        a in arb_polyline(1),
        b in arb_polyline(2),
        s in 0.01..0.99f64,
    ) {
        // Use the overlap of both spans (identical construction: [0, 5(k-1)]).
        let end = a.span().end().min(b.span().end());
        prop_assume!(end > 0.0);
        let w = TimeInterval::new(0.0, end);
        let f = difference_distance(&a, &b, &w).unwrap();
        let t = s * end;
        let expected = a.position_at(t).unwrap().distance(b.position_at(t).unwrap());
        let got = f.eval(t).unwrap();
        prop_assert!(
            (got - expected).abs() < 1e-7 * (1.0 + expected),
            "t={t}: {got} vs {expected}"
        );
    }

    #[test]
    fn difference_is_antisymmetric_in_value(
        a in arb_polyline(1),
        b in arb_polyline(2),
        s in 0.01..0.99f64,
    ) {
        let end = a.span().end().min(b.span().end());
        prop_assume!(end > 0.0);
        let w = TimeInterval::new(0.0, end);
        let fab = difference_distance(&a, &b, &w).unwrap();
        let fba = difference_distance(&b, &a, &w).unwrap();
        let t = s * end;
        prop_assert!((fab.eval(t).unwrap() - fba.eval(t).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn workload_objects_stay_in_bounds_and_on_schedule(
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let cfg = WorkloadConfig::with_objects(n, seed);
        let trs = generate(&cfg);
        prop_assert_eq!(trs.len(), n);
        for tr in &trs {
            prop_assert_eq!(tr.span().start(), 0.0);
            prop_assert_eq!(tr.span().end(), 60.0);
            for sm in tr.samples() {
                prop_assert!((0.0..=40.0).contains(&sm.position.x));
                prop_assert!((0.0..=40.0).contains(&sm.position.y));
            }
            for seg in tr.segments() {
                let v = seg.speed() * 60.0; // mph
                prop_assert!((15.0 - 1e-6..=60.0 + 1e-6).contains(&v), "speed {v} mph");
            }
        }
    }

    #[test]
    fn min_over_window_is_global_minimum(
        a in arb_polyline(1),
        b in arb_polyline(2),
    ) {
        let end = a.span().end().min(b.span().end());
        prop_assume!(end > 0.0);
        let w = TimeInterval::new(0.0, end);
        let f = difference_distance(&a, &b, &w).unwrap();
        let (_, dmin) = f.min_over_window();
        for k in 0..=200 {
            let t = end * k as f64 / 200.0;
            prop_assert!(f.eval(t).unwrap() + 1e-9 >= dmin);
        }
    }
}
