//! Air-corridor deconfliction: uncertain trajectories with *Gaussian*
//! location pdfs and the full query-language surface.
//!
//! A regional control center tracks aircraft flying fixed flight plans
//! through a corridor. Position uncertainty is a truncated Gaussian
//! (Figure 3.c of the paper shows exactly this option) — Theorem 1 holds
//! for every rotationally symmetric pdf, so the same envelope machinery
//! answers the queries. The controller interrogates the MOD in the §4
//! query language.
//!
//! Run with: `cargo run --release --example air_corridor`

use uncertain_nn::prelude::*;

type Waypoints = Vec<(u64, Vec<(f64, f64, f64)>)>;

fn main() {
    let server = ModServer::new();
    let radius = 1.0; // miles of lateral uncertainty
    let pdf = PdfKind::TruncatedGaussian { radius, sigma: 0.4 };

    // Flight plans: (oid, waypoints). The monitored flight is Tr0.
    let plans: Waypoints = vec![
        (0, vec![(0.0, 20.0, 0.0), (60.0, 20.0, 30.0)]), // west → east
        (1, vec![(0.0, 24.0, 0.0), (60.0, 18.0, 30.0)]), // converging
        (2, vec![(30.0, 0.0, 0.0), (30.0, 45.0, 30.0)]), // crossing at mid-corridor
        (3, vec![(60.0, 25.0, 0.0), (0.0, 25.0, 30.0)]), // opposite direction
        (4, vec![(10.0, 60.0, 0.0), (50.0, 55.0, 30.0)]), // distant northern route
        (
            5,
            vec![(0.0, 21.5, 0.0), (25.0, 21.5, 15.0), (60.0, 16.0, 30.0)],
        ), // wing change
    ];
    for (oid, pts) in plans {
        let tr = Trajectory::from_triples(Oid(oid), &pts).expect("valid plan");
        server
            .register(UncertainTrajectory::new(tr, radius, pdf).expect("valid model"))
            .expect("unique flight id");
    }

    println!("Air corridor: 6 flights, Gaussian uncertainty (r = {radius} mi, σ = 0.4 mi)\n");

    let statements = [
        // Which flights can ever be closest to Tr0?
        "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 30] AND PROB_NN(*, Tr0, TIME) > 0",
        // Is the converging flight a possible nearest neighbor throughout?
        "SELECT Tr1 FROM MOD WHERE FORALL TIME IN [0, 30] AND PROB_NN(Tr1, Tr0, TIME) > 0",
        // Does the crossing flight matter at least a quarter of the window?
        "SELECT Tr2 FROM MOD WHERE ATLEAST 25 % OF TIME IN [0, 30] AND PROB_NN(Tr2, Tr0, TIME) > 0",
        // Fixed-time check at the crossing instant.
        "SELECT Tr2 FROM MOD WHERE AT 15 TIME IN [0, 30] AND PROB_NN(Tr2, Tr0, TIME) > 0",
        // Who is in the top-2 ranks at least 40% of the time?
        "SELECT * FROM MOD WHERE ATLEAST 0.4 OF TIME IN [0, 30] AND PROB_NN(*, Tr0, TIME, RANK 2) > 0",
        // The distant northern route should be prunable.
        "SELECT Tr4 FROM MOD WHERE EXISTS TIME IN [0, 30] AND PROB_NN(Tr4, Tr0, TIME) > 0",
        // §7 threshold extension: who exceeds 60% NN probability at least
        // a third of the window?
        "SELECT * FROM MOD WHERE ATLEAST 0.33 OF TIME IN [0, 30] AND PROB_NN(*, Tr0, TIME) > 0.6",
    ];

    for stmt in statements {
        println!("> {stmt}");
        match server.execute(stmt) {
            Ok(QueryOutput::Boolean(b)) => println!("  {b}\n"),
            Ok(QueryOutput::Objects(objs)) => {
                if objs.is_empty() {
                    println!("  (none)\n");
                } else {
                    for (oid, frac) in objs {
                        println!("  {oid}: {:.0}% of the window", frac * 100.0);
                    }
                    println!();
                }
            }
            Ok(other) => println!("  {other:?}\n"),
            Err(e) => println!("  error: {e}\n"),
        }
    }

    // The dual view: print the deconfliction DAG for the window.
    let tree = server
        .ipac_tree(Oid(0), TimeInterval::new(0.0, 30.0), 2)
        .expect("tree builds");
    println!(
        "IPAC-NN tree (2 levels) in graphviz dot:\n{}",
        tree.to_dot()
    );
}
