//! Crash recovery, end to end with a real `kill -9`: the example
//! re-spawns itself as a child that churns a WAL-backed store with a
//! deterministic mutation stream, SIGKILLs it mid-churn, recovers the
//! store from the directory the corpse left behind, and proves the
//! recovered answers — snapshot, one-shot query, and a re-registered
//! standing query — **bit-identical** to an uninterrupted run replayed
//! to the same epoch.
//!
//! This doubles as the CI durability smoke: it exercises journaling →
//! segment rotation → automatic checkpoints → hard kill → torn-tail
//! truncation → snapshot-plus-replay recovery → resumed journaling.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use std::io::BufRead;
use std::process::{Command, Stdio};
use uncertain_nn::modb::{open_store, FsyncPolicy, WalOptions};
use uncertain_nn::prelude::*;

fn straight(oid: u64, x: f64, y: f64) -> UncertainTrajectory {
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(x, y, 0.0), (x + 20.0, y + 5.0, 60.0)]).unwrap(),
        0.5,
    )
    .unwrap()
}

/// The churn stream: step `e` (1-based) performs exactly one commit,
/// chosen as a pure function of `e` and the store state — so replaying
/// steps `1..=n` against a fresh store reproduces any crashed run that
/// recovered to epoch `n`, bit for bit.
fn mutate(store: &ModStore, step: u64) {
    let h = step.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let oid = Oid(h % 6);
    if step % 37 == 0 {
        store.clear();
    } else if step % 5 == 0 && store.get(oid).is_some() {
        store.remove(oid).expect("present object removes");
    } else {
        let x = ((h >> 8) % 4000) as f64 / 100.0 - 20.0;
        let y = ((h >> 24) % 4000) as f64 / 100.0 - 20.0;
        store.update(straight(oid.0, x, y));
    }
}

/// Small segments and a tight checkpoint cadence so even a short run
/// rotates, prunes, and snapshots before the kill lands.
fn wal_options() -> WalOptions {
    WalOptions {
        fsync: FsyncPolicy::Os,
        segment_bytes: 4096,
        checkpoint_every: 8,
    }
}

/// Child mode: churn the WAL-backed store forever (the parent SIGKILLs
/// us mid-commit), reporting each epoch on stdout.
fn run_child(dir: &str) -> ! {
    let (store, _wal, _) = open_store(dir.as_ref(), wal_options()).expect("child opens wal");
    loop {
        let step = store.epoch() + 1;
        mutate(&store, step);
        println!("epoch {}", store.epoch());
    }
}

const KILL_AFTER_EPOCH: u64 = 60;
const ONE_SHOT: &str =
    "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0";
const STANDING: &str = "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                        AND PROB_NN(*, Tr0, TIME) > 0 AS near0";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("child") {
        run_child(args.get(2).expect("child mode needs the wal dir"));
    }

    let dir = std::env::temp_dir().join(format!("unn_crash_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Spawn the churner and let it pass the kill threshold.
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("child")
        .arg(&dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("child spawns");
    let reader = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    for line in reader.lines() {
        let line = line.expect("child line");
        let epoch: u64 = line
            .strip_prefix("epoch ")
            .and_then(|e| e.parse().ok())
            .expect("child reports epochs");
        if epoch >= KILL_AFTER_EPOCH {
            // SIGKILL: no destructors, no flush — whatever bytes made
            // it into the page cache are the recovery input.
            child.kill().expect("kill -9 lands");
            break;
        }
    }
    let status = child.wait().expect("child reaped");
    println!("killed churner mid-commit ({status})");

    // Recover from the corpse's directory.
    let (recovered, wal, report) = open_store(&dir, wal_options()).expect("recovers");
    println!(
        "recovered: checkpoint epoch {} ({} objects) + {} records ({} ops) -> epoch {}",
        report.snapshot_epoch,
        report.snapshot_objects,
        report.replayed_records,
        report.replayed_ops,
        report.recovered_epoch
    );
    if let Some(t) = &report.torn_tail {
        println!(
            "torn tail truncated at byte {} of {}: {}",
            t.offset,
            t.segment.display(),
            t.reason
        );
    }
    assert!(
        report.recovered_epoch >= KILL_AFTER_EPOCH,
        "kill landed after epoch {KILL_AFTER_EPOCH}"
    );

    // The uninterrupted reference: replay the same deterministic
    // stream to the recovered epoch.
    let reference = ModStore::new();
    for step in 1..=report.recovered_epoch {
        mutate(&reference, step);
    }
    assert_eq!(recovered.epoch(), reference.epoch());
    assert_eq!(recovered.snapshot().to_vec(), reference.snapshot().to_vec());
    println!(
        "store state bit-identical to the uninterrupted run ({} objects @epoch {})",
        recovered.len(),
        recovered.epoch()
    );

    // Answers match too: one-shot, and a standing query re-registered
    // after the crash (registrations are in-memory; clients resubscribe
    // on reconnect) maintained across one more identical commit.
    let lhs = ModServer::with_store(recovered);
    let rhs = ModServer::with_store(reference);
    assert_eq!(
        lhs.execute(ONE_SHOT).expect("recovered answers"),
        rhs.execute(ONE_SHOT).expect("reference answers")
    );
    lhs.execute(STANDING).expect("recovered resubscribes");
    rhs.execute(STANDING).expect("reference subscribes");
    let next = lhs.store().epoch() + 1;
    mutate(lhs.store(), next);
    mutate(rhs.store(), next);
    assert_eq!(
        lhs.subscription_output("near0")
            .expect("recovered standing answer"),
        rhs.subscription_output("near0")
            .expect("reference standing answer")
    );
    println!("one-shot and maintained standing-query answers bit-identical");

    // And the post-recovery commit was journaled — the chain continues.
    assert_eq!(wal.status().last_epoch, next);
    println!("journaling resumed at epoch {next}; crash recovery holds");

    let _ = std::fs::remove_dir_all(&dir);
}
