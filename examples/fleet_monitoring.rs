//! Fleet monitoring: the paper's motivating scenario (§2.1 cites FedEx/UPS
//! fleets with server-side full-trajectory motion plans).
//!
//! A dispatcher tracks a fleet over a 40×40-mile metro area for one hour.
//! GPS/route uncertainty is modelled with 0.5-mile uncertainty disks. The
//! dispatcher asks, for a chosen truck:
//!
//! * who can possibly be its nearest neighbor during the shift (UQ31),
//! * which escorts are *always* possible nearest neighbors (UQ32),
//! * which units are possible NNs at least 30% of the shift (UQ33),
//! * and how strong the top candidates' probabilities actually are
//!   (IPAC-NN descriptors).
//!
//! Run with: `cargo run --release --example fleet_monitoring`

use uncertain_nn::core::ipac::annotate_probabilities;
use uncertain_nn::prelude::*;

fn main() {
    // One hour of fleet motion in the paper's workload model.
    let cfg = WorkloadConfig {
        num_objects: 300,
        seed: 42,
        ..WorkloadConfig::default()
    };
    let radius = 0.5;
    let fleet = generate_uncertain(&cfg, radius);

    let server = ModServer::new();
    server.register_all(fleet).expect("fresh ids");

    let truck = Oid(17);
    let shift = TimeInterval::new(0.0, 60.0);

    let (engine, stats) = server.engine(truck, shift).expect("engine builds");
    println!(
        "Fleet of {} vehicles; dispatch focus: {truck}",
        server.store().len()
    );
    println!(
        "Envelope preprocessing: {} candidates -> {} possible NNs after pruning \
         ({:.1}% pruned), {} envelope pieces, {:?}",
        stats.candidates,
        stats.kept,
        100.0 * (1.0 - stats.kept as f64 / stats.candidates as f64),
        stats.envelope_pieces,
        stats.preprocess,
    );

    // Crisp continuous NN timeline.
    println!("\nNearest-vehicle timeline (crisp semantics):");
    for (oid, iv) in engine.continuous_nn_answer() {
        println!(
            "  {oid:>6} during [{:5.1}, {:5.1}] min",
            iv.start(),
            iv.end()
        );
    }

    // UQ31: everything with non-zero probability sometime.
    let possible = engine.uq31_all();
    println!(
        "\nUQ31 — vehicles with non-zero NN probability at some point: {}",
        possible.len()
    );

    // UQ32: throughout the shift.
    let always = engine.uq32_all();
    println!("UQ32 — vehicles possible at *every* instant: {always:?}");

    // UQ33 with X = 30%.
    let mut steady: Vec<(Oid, f64)> = engine.uq33_all(0.30);
    steady.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("UQ33 — possible NNs for ≥ 30% of the shift:");
    for (oid, frac) in steady.iter().take(8) {
        println!("  {oid:>6}: {:.0}% of the shift", frac * 100.0);
    }

    // Rank-2 coverage (Category 4): backup candidates.
    let mut backups = engine.uq43_all(2, 0.30);
    backups.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("UQ43 — within the top-2 ranks for ≥ 30% of the shift:");
    for (oid, frac) in backups.iter().take(8) {
        println!("  {oid:>6}: {:.0}%", frac * 100.0);
    }

    // Probability strength of the top of the tree.
    let mut tree = engine.ipac_tree(2);
    annotate_probabilities(&mut tree, engine.functions(), radius, 3);
    println!("\nIPAC-NN level-1 nodes with sampled P^NN:");
    for node in &tree.roots {
        let avg = if node.descriptor.prob_samples.is_empty() {
            f64::NAN
        } else {
            node.descriptor
                .prob_samples
                .iter()
                .map(|(_, p)| p)
                .sum::<f64>()
                / node.descriptor.prob_samples.len() as f64
        };
        println!(
            "  {:>6} [{:5.1}, {:5.1}] min  d ∈ [{:.2}, {:.2}] mi   avg P^NN ≈ {:.3}",
            node.owner.to_string(),
            node.span.start(),
            node.span.end(),
            node.descriptor.min_distance,
            node.descriptor.max_distance,
            avg
        );
    }
}
