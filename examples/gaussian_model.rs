//! Beyond the uniform disk: the truncated-Gaussian location model.
//!
//! §3.1 of the paper stresses that its results hold for *every*
//! rotationally symmetric location pdf, with the bounded Gaussian as the
//! canonical second example (Figure 3.c). This example runs the full
//! pipeline under that model:
//!
//! * registration with `PdfKind::TruncatedGaussian`;
//! * continuous answers and ranking — **identical** to the uniform model
//!   (Theorem 1 depends only on rotational symmetry, and the `4r` band
//!   depends only on the support radius);
//! * probability *values* — different: the concentrated Gaussian sharpens
//!   the leader's `P^NN`, which shows up in threshold-query answers.
//!
//! Run with: `cargo run --release --example gaussian_model`

use uncertain_nn::prelude::*;

fn main() {
    let cfg = WorkloadConfig {
        num_objects: 120,
        seed: 31,
        ..WorkloadConfig::default()
    };
    let radius = 0.5;
    let trajectories = generate(&cfg);

    // Two servers over the same motion: uniform vs truncated Gaussian.
    let uniform = ModServer::new();
    let gaussian = ModServer::new();
    for tr in &trajectories {
        uniform
            .register(UncertainTrajectory::with_uniform_pdf(tr.clone(), radius).unwrap())
            .unwrap();
        gaussian
            .register(
                UncertainTrajectory::new(
                    tr.clone(),
                    radius,
                    PdfKind::TruncatedGaussian {
                        radius,
                        sigma: radius / 3.0,
                    },
                )
                .unwrap(),
            )
            .unwrap();
    }
    let window = TimeInterval::new(0.0, 60.0);

    // The ranking machinery is pdf-shape-blind (Theorem 1): identical
    // crisp answers and identical possible-NN sets.
    let a_uniform = uniform.continuous_nn(Oid(0), window).unwrap();
    let a_gauss = gaussian.continuous_nn(Oid(0), window).unwrap();
    assert_eq!(a_uniform.sequence, a_gauss.sequence);
    println!(
        "continuous NN answer: {} entries — identical under both models \
         (Theorem 1 uses only rotational symmetry)",
        a_uniform.sequence.len()
    );

    // Probability values differ: the same threshold statement can answer
    // differently.
    let stmt = "SELECT * FROM MOD WHERE ATLEAST 0.05 OF TIME IN [0, 60] \
                AND PROB_NN(*, Tr0, TIME) > 0.5";
    let count = |out: QueryOutput| match out {
        QueryOutput::Objects(rows) => rows.len(),
        other => unreachable!("star query, got {other:?}"),
    };
    let n_uniform = count(uniform.execute(stmt).unwrap());
    let n_gauss = count(gaussian.execute(stmt).unwrap());
    println!("\n{stmt}");
    println!("  uniform model:  {n_uniform} qualifying objects");
    println!("  gaussian model: {n_gauss} qualifying objects");
    println!(
        "  (the concentrated Gaussian puts more mass at the expected \
         location, so dominant\n   objects clear high thresholds more \
         easily: gaussian ≥ uniform is typical)"
    );

    // Instantaneous view of the same effect.
    let t = 30.0;
    let snap = uniform.instantaneous_nn(Oid(0), t).unwrap();
    if let Some((leader, p_uni)) = snap.top() {
        // Recompute the leader's probability under the Gaussian model via
        // the generalized evaluator.
        let trs: Vec<Trajectory> = trajectories.clone();
        let q = trs.iter().find(|tr| tr.oid() == Oid(0)).unwrap();
        let fs = difference_distances(q, &trs, &window).unwrap();
        let engine = QueryEngine::new(Oid(0), fs, radius);
        let kind = PdfKind::TruncatedGaussian {
            radius,
            sigma: radius / 3.0,
        };
        let diff = kind.convolve_with(&kind);
        let p_gauss =
            uncertain_nn::core::threshold::probability_at_with(&engine, diff.as_ref(), leader, t)
                .unwrap_or(0.0);
        println!(
            "\nleader at t = {t}: {leader} — P^NN {p_uni:.3} (uniform) vs \
             {p_gauss:.3} (gaussian)"
        );
    }
}
