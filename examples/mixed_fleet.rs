//! Heterogeneous uncertainty radii: a mixed-quality tracking fleet.
//!
//! §7 of the paper closes with "allow for different uncertainty zones of
//! the object locations (i.e., circles with different radii)". This
//! example runs that extension end to end: half the fleet reports over
//! precise GPS (0.1-mile disks), half over coarse cell-tower fixes
//! (1.5-mile disks). With unequal radii:
//!
//! * the homogeneous server path refuses the MOD (`MixedRadii`),
//! * the hetero engine prunes with **per-object** bands
//!   `d_i − (r_i + r_q) ≤ min_j (d_j + r_j + r_q)` built on shifted
//!   envelopes,
//! * Theorem 1 no longer applies: the probability ranking can differ from
//!   the center-distance ranking, so rankings are computed with exact
//!   per-pair difference pdfs.
//!
//! Run with: `cargo run --release --example mixed_fleet`

use uncertain_nn::prelude::*;

fn main() {
    let cfg = WorkloadConfig {
        num_objects: 150,
        seed: 77,
        ..WorkloadConfig::default()
    };
    let trajectories = generate(&cfg);

    let server = ModServer::new();
    for (k, tr) in trajectories.into_iter().enumerate() {
        // Even ids: GPS quality. Odd ids: cell-tower quality.
        let r = if k % 2 == 0 { 0.1 } else { 1.5 };
        server
            .register(UncertainTrajectory::with_uniform_pdf(tr, r).unwrap())
            .expect("fresh ids");
    }

    let focus = Oid(0); // a GPS-quality vehicle
    let shift = TimeInterval::new(0.0, 60.0);

    // The paper's homogeneous machinery refuses mixed radii...
    match server.engine(focus, shift) {
        Err(e) => println!("homogeneous path: {e} (as expected)"),
        Ok(_) => unreachable!("mixed radii must be rejected"),
    }

    // ...the §7 extension handles them.
    let engine = server
        .hetero_engine(focus, shift)
        .expect("hetero engine builds");
    let stats = engine.stats();
    println!(
        "hetero engine: {} candidates, {} possible somewhere ({:.1}% pruned)",
        stats.total,
        stats.kept,
        100.0 * (1.0 - stats.kept_fraction())
    );

    // Possibility sets, GPS vs cell-tower.
    let mut possible = engine.all_possible();
    possible.sort_by(|a, b| b.1.total_len().total_cmp(&a.1.total_len()));
    println!("\nMost persistent possible NNs:");
    for (oid, iv) in possible.iter().take(8) {
        let r = if oid.0 % 2 == 0 { 0.1 } else { 1.5 };
        println!(
            "  {oid:>6} (r = {r:3.1} mi): possible {:5.1} of 60 min",
            iv.total_len()
        );
    }
    let coarse = possible.iter().filter(|(o, _)| o.0 % 2 == 1).count();
    println!(
        "  {} of {} survivors are coarse-tracked — big disks stay possible longer",
        coarse,
        possible.len()
    );

    // Instant ranking by exact probability (Theorem 1 does not apply).
    let t = 30.0;
    let ranking = engine.ranking_at(t).expect("instant inside the shift");
    println!("\nP^NN ranking at t = {t} min:");
    for (oid, p) in ranking.iter().take(5) {
        let d = engine
            .candidates()
            .iter()
            .find(|c| c.f.owner() == *oid)
            .and_then(|c| c.f.eval(t))
            .unwrap();
        let r = if oid.0 % 2 == 0 { 0.1 } else { 1.5 };
        println!("  {oid:>6}: P^NN = {p:.3}   center distance {d:6.2} mi, r = {r}");
    }

    // Detect a Theorem-1 inversion: probability order differing from
    // center-distance order among the top candidates.
    let mut by_distance: Vec<(Oid, f64)> = ranking
        .iter()
        .map(|(oid, _)| {
            let d = engine
                .candidates()
                .iter()
                .find(|c| c.f.owner() == *oid)
                .and_then(|c| c.f.eval(t))
                .unwrap();
            (*oid, d)
        })
        .collect();
    by_distance.sort_by(|a, b| a.1.total_cmp(&b.1));
    let prob_order: Vec<Oid> = ranking.iter().map(|(o, _)| *o).collect();
    let dist_order: Vec<Oid> = by_distance.iter().map(|(o, _)| *o).collect();
    if prob_order != dist_order {
        println!(
            "\nTheorem-1 inversion witnessed: probability order {:?} vs \
             distance order {:?}",
            &prob_order[..prob_order.len().min(4)],
            &dist_order[..dist_order.len().min(4)]
        );
    } else {
        println!("\nNo inversion at this instant (orders coincide here).");
    }

    // Per-object queries, hetero Category-1 style, on the two most
    // persistent survivors.
    for oid in possible.iter().take(2).map(|(o, _)| *o) {
        if let (Some(frac), Some(always)) = (engine.fraction(oid), engine.always(oid)) {
            println!(
                "{oid}: possible {:.0}% of the shift{}",
                frac.max(0.0) * 100.0,
                if always { ", at every instant" } else { "" }
            );
        }
    }
}
