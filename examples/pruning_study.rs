//! A miniature of the paper's Figure 13: how the `4r`-band pruning power
//! varies with the uncertainty radius (the full reproduction lives in
//! `crates/bench/src/bin/fig13.rs`).
//!
//! Run with: `cargo run --release --example pruning_study`

use uncertain_nn::prelude::*;

fn main() {
    let cfg = WorkloadConfig {
        num_objects: 500,
        seed: 7,
        ..WorkloadConfig::default()
    };
    let trajectories = generate(&cfg);
    let window = TimeInterval::new(0.0, 60.0);
    let query = &trajectories[0];
    let fs = difference_distances(query, &trajectories, &window).expect("same window");
    let envelope = lower_envelope(&fs);

    println!(
        "Pruning power vs uncertainty radius ({} objects):\n",
        cfg.num_objects
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "radius", "kept", "pruned", "kept %"
    );
    for radius in [0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0] {
        let (kept, stats) = prune_by_band(&fs, &envelope, radius);
        println!(
            "{:>10.2} {:>12} {:>12} {:>9.1}%",
            radius,
            kept.len(),
            stats.total - stats.kept,
            100.0 * stats.kept_fraction()
        );
    }

    println!(
        "\nReading: at r = 0.5 mi the envelope prunes ~90% of the objects \
         (paper, Figure 13); larger uncertainty keeps more candidates \
         because the 4r band is wider."
    );
}
