//! Push delivery over the network service layer, end to end on a
//! loopback socket: a `NetServer` fronts the MOD, one client registers
//! a standing query, another streams GPS updates, and the subscriber's
//! answer stays current by **folding pushed deltas** — no polling.
//!
//! This doubles as the CI loopback smoke: it exercises bind → handshake
//! → statements → mutations → pushed events → clean shutdown, and
//! asserts the folded answer equals the server's maintained one
//! bit-for-bit.
//!
//! ```text
//! cargo run --release --example push_subscriptions
//! ```

use std::sync::Arc;
use std::time::Duration;
use uncertain_nn::modb::net::{NetClient, NetServer, WireOutput};
use uncertain_nn::prelude::*;

fn straight(oid: u64, y: f64) -> UncertainTrajectory {
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (30.0, y, 60.0)]).unwrap(),
        0.5,
    )
    .unwrap()
}

fn main() {
    // A small MOD behind a network server on an ephemeral loopback port.
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0), // the query object
            straight(1, 1.0),
            straight(2, 3.0),
            straight(3, 40.0), // far outside every band
        ])
        .unwrap();
    let server = Arc::new(server);
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind loopback");
    let addr = net.local_addr();
    println!("NetServer listening on {addr}");

    // The subscriber registers a standing query over its connection;
    // from now on the server pushes every answer delta to this socket.
    let mut subscriber = NetClient::connect(addr).expect("subscriber connects");
    let out = subscriber
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr0, TIME) > 0 AS near0",
        )
        .expect("registers");
    let WireOutput::Registered(info) = out else {
        panic!("expected Registered, got {out:?}");
    };
    println!(
        "subscribed '{}' with {} objects qualifying",
        info.name, info.entries
    );
    let (mut folded, mut folded_epoch) = subscriber
        .subscription_answer("near0")
        .expect("base answer");

    // A second connection plays the fleet: objects entering and leaving
    // the query's neighborhood. Only *answer-changing* commits push a
    // delta — a far object, or a correction that leaves every
    // qualification interval untouched, is absorbed silently.
    let mut writer = NetClient::connect(addr).expect("writer connects");
    writer.insert(straight(7, 0.4)).expect("Tr7 appears nearby");
    writer
        .insert(straight(9, 50_000.0))
        .expect("far Tr9 appears");
    writer.remove(Oid(7)).expect("Tr7 leaves");
    writer.insert(straight(8, 0.5)).expect("Tr8 appears nearby");
    println!("writer committed 4 mutations (one provably out of reach)");

    // The subscriber folds pushed deltas as they arrive. The far Tr9
    // insertion pushes nothing — the skip proof absorbed it — so three
    // deltas fully describe the answer's evolution.
    let mut received = 0;
    while let Some(ev) = subscriber
        .next_event(Some(Duration::from_secs(5)))
        .expect("event stream healthy")
    {
        received += 1;
        println!(
            "pushed delta @epoch {}: {} changed objects{}",
            ev.delta.epoch(),
            ev.delta.touched(),
            if ev.lagged { " [lagged]" } else { "" }
        );
        if ev.delta.epoch() > folded_epoch {
            folded = folded.apply(&ev.delta);
            folded_epoch = ev.delta.epoch();
        }
        // Three answer-changing commits → three deltas.
        if received == 3 {
            break;
        }
    }
    assert_eq!(received, 3, "expected exactly three pushed deltas");

    // The folded answer equals the server's maintained one bit-for-bit.
    let (maintained, _) = server
        .subscription_answer_with_epoch("near0")
        .expect("maintained answer");
    assert_eq!(folded, maintained, "folded pushed deltas diverged");
    println!(
        "folded answer matches the maintained one: {} objects qualify",
        folded.len()
    );

    // Clean teardown: clients say Bye, the server joins every thread.
    writer.close().expect("writer closes cleanly");
    subscriber.close().expect("subscriber closes cleanly");
    net.shutdown();
    println!("clean shutdown — loopback smoke passed");
}
