//! Quickstart: build a small MOD, ask for the continuous probabilistic
//! nearest neighbor of one object, and inspect the IPAC-NN tree.
//!
//! Run with: `cargo run --release --example quickstart`

use uncertain_nn::core::ipac::annotate_probabilities;
use uncertain_nn::prelude::*;

type Waypoints = Vec<(u64, Vec<(f64, f64, f64)>)>;

fn main() {
    // ------------------------------------------------------------------
    // 1. Register a handful of uncertain trajectories (radius 0.5 miles,
    //    uniform location pdf — the paper's running example).
    // ------------------------------------------------------------------
    let server = ModServer::new();
    let radius = 0.5;
    let objects: Waypoints = vec![
        // The querying object drives east along y = 0.
        (0, vec![(0.0, 0.0, 0.0), (20.0, 0.0, 20.0)]),
        // Tr1 shadows it one mile north.
        (1, vec![(0.0, 1.0, 0.0), (20.0, 1.0, 20.0)]),
        // Tr2 crosses the route around t = 10.
        (2, vec![(10.0, -8.0, 0.0), (10.0, 12.0, 20.0)]),
        // Tr3 approaches from the east late in the window.
        (3, vec![(30.0, 2.0, 0.0), (12.0, 2.0, 20.0)]),
        // Tr4 is far away throughout (will be pruned).
        (4, vec![(0.0, 35.0, 0.0), (20.0, 35.0, 20.0)]),
    ];
    for (oid, pts) in objects {
        let tr = Trajectory::from_triples(Oid(oid), &pts).expect("valid trajectory");
        server
            .register(UncertainTrajectory::with_uniform_pdf(tr, radius).expect("valid radius"))
            .expect("unique oid");
    }

    let window = TimeInterval::new(0.0, 20.0);

    // ------------------------------------------------------------------
    // 2. The continuous (crisp) NN answer: time parameterized, as in §1.
    // ------------------------------------------------------------------
    let answer = server
        .continuous_nn(Oid(0), window)
        .expect("query succeeds");
    println!("Continuous NN of Tr0 over {window}:");
    for (oid, iv) in &answer.sequence {
        println!("  {oid} is the nearest neighbor during {iv}");
    }
    println!(
        "\n({} candidates, {} kept after 4r-band pruning, envelope has {} pieces)\n",
        answer.stats.candidates, answer.stats.kept, answer.stats.envelope_pieces
    );

    // ------------------------------------------------------------------
    // 3. The probabilistic refinement: the IPAC-NN tree with sampled
    //    P^NN descriptors.
    // ------------------------------------------------------------------
    let (engine, _) = server.engine(Oid(0), window).expect("engine builds");
    let mut tree = engine.ipac_tree(3);
    annotate_probabilities(&mut tree, engine.functions(), radius, 3);
    println!("IPAC-NN tree (3 levels, descriptors carry avg P^NN):");
    print!("{}", tree.render());

    // ------------------------------------------------------------------
    // 4. The same semantics through the §4 query language.
    // ------------------------------------------------------------------
    let statements = [
        "SELECT Tr1 FROM MOD WHERE FORALL TIME IN [0, 20] AND PROB_NN(Tr1, Tr0, TIME) > 0",
        "SELECT Tr2 FROM MOD WHERE EXISTS TIME IN [0, 20] AND PROB_NN(Tr2, Tr0, TIME) > 0",
        "SELECT Tr4 FROM MOD WHERE EXISTS TIME IN [0, 20] AND PROB_NN(Tr4, Tr0, TIME) > 0",
        "SELECT * FROM MOD WHERE ATLEAST 25 % OF TIME IN [0, 20] AND PROB_NN(*, Tr0, TIME) > 0",
        "SELECT Tr2 FROM MOD WHERE EXISTS TIME IN [0, 20] AND PROB_NN(Tr2, Tr0, TIME, RANK 2) > 0",
    ];
    println!("\nQuery language:");
    for stmt in statements {
        match server.execute(stmt).expect("statement executes") {
            QueryOutput::Boolean(b) => println!("  {stmt}\n    -> {b}"),
            QueryOutput::Objects(objs) => {
                let rendered: Vec<String> = objs
                    .iter()
                    .map(|(oid, frac)| format!("{oid} ({:.0}% of the window)", frac * 100.0))
                    .collect();
                println!("  {stmt}\n    -> [{}]", rendered.join(", "));
            }
            other => println!("  {stmt}\n    -> {other:?}"),
        }
    }
}
