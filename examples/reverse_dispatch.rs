//! Reverse nearest-neighbor dispatch: "whose nearest ambulance am I?"
//!
//! §7 of the paper lists *reverse* NN queries as a future-work variant.
//! The operational question is dual to the forward one: instead of asking
//! who is nearest to the ambulance, the dispatcher asks **which incidents
//! would be served by this ambulance** — the vehicles/objects that have
//! the ambulance as a possible nearest neighbor. Removing that ambulance
//! from service affects exactly those objects.
//!
//! The example builds the paper's random-waypoint workload, runs the
//! reverse engine directly and through the `PROB_RNN` statement of the
//! query language, and contrasts the probabilistic reverse answer with the
//! crisp (expected-location) one.
//!
//! Run with: `cargo run --release --example reverse_dispatch`

use uncertain_nn::prelude::*;

fn main() {
    let cfg = WorkloadConfig {
        num_objects: 200,
        seed: 1234,
        ..WorkloadConfig::default()
    };
    let radius = 0.5;
    let server = ModServer::new();
    server
        .register_all(generate_uncertain(&cfg, radius))
        .expect("fresh ids");

    let ambulance = Oid(0);
    let shift = TimeInterval::new(0.0, 60.0);

    println!(
        "MOD of {} objects; reverse focus: {ambulance} (r = {radius} mi)",
        server.store().len()
    );

    // Full reverse engine: one perspective envelope per object.
    let rev = server
        .reverse_engine(ambulance, shift)
        .expect("engine builds");
    let mut probabilistic = rev.rnn_all();
    probabilistic.sort_by(|a, b| {
        b.1.total_len()
            .total_cmp(&a.1.total_len())
            .then_with(|| a.0.cmp(&b.0))
    });
    println!(
        "\nProbabilistic RNN — objects that may have {ambulance} as their NN: {}",
        probabilistic.len()
    );
    for (oid, iv) in probabilistic.iter().take(10) {
        println!(
            "  {oid:>6}: possible for {:5.1} of 60 min ({:4.1}%)",
            iv.total_len(),
            100.0 * iv.total_len() / shift.len()
        );
    }

    // The crisp subset: objects whose expected-location NN *is* the
    // ambulance at some point.
    let crisp = rev.crisp_rnn_all();
    println!(
        "\nCrisp RNN (expected locations only): {} objects — always a subset",
        crisp.len()
    );
    for (oid, iv) in crisp.iter().take(10) {
        println!("  {oid:>6}: nearest for {:5.1} min", iv.total_len());
    }
    assert!(crisp.len() <= probabilistic.len());

    // The same retrieval through the query language.
    let stmt = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_RNN(*, Tr0, TIME) > 0";
    match server.execute(stmt).expect("statement runs") {
        QueryOutput::Objects(objs) => {
            println!("\n{stmt}\n  -> {} objects", objs.len());
            assert_eq!(objs.len(), probabilistic.len());
        }
        other => panic!("expected Objects, got {other:?}"),
    }

    // Per-object drill-down: how exposed is a specific incident?
    for oid in probabilistic.iter().take(3).map(|(o, _)| *o) {
        let frac = rev.rnn_fraction(oid).unwrap();
        let always = rev.rnn_always(oid).unwrap();
        println!(
            "\n{oid}: {ambulance} is a possible NN {:.0}% of the shift{}",
            frac * 100.0,
            if always { " (at every instant!)" } else { "" }
        );
    }

    // Asymmetry demonstration: the forward NN of the ambulance need not
    // have the ambulance as its own possible NN and vice versa.
    let forward = server
        .continuous_nn(ambulance, shift)
        .expect("forward answer");
    let forward_first = forward.sequence[0].0;
    let is_reverse = probabilistic.iter().any(|(o, _)| *o == forward_first);
    println!(
        "\nForward NN at shift start: {forward_first}; is it also a reverse \
         neighbor? {is_reverse} (the two relations differ in general)"
    );
}
