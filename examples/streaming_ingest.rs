//! Streaming ingest: the delta-epoch layer under a live update feed.
//!
//! The paper assumes a mostly-static MOD; this example shows what the
//! store does instead when GPS updates stream in continuously. Each
//! update is one `remove` + `insert` of the same vehicle (a revised
//! motion plan). The store logs the ops in its delta log, and the next
//! `snapshot()` *patches* the previous snapshot and its grid/R-tree
//! indexes in `O(|delta| · log N)` instead of rebuilding them — while
//! every query keeps answering exactly as a cold rebuild would. Cached
//! query engines whose `4r` band is provably out of the update's reach
//! are carried across the mutation without rebuilding either.
//!
//! Run with: `cargo run --release --example streaming_ingest`

use uncertain_nn::modb::index::SegmentIndex;
use uncertain_nn::prelude::*;

/// A vehicle of the remote depot fleet: ~5000 miles from the metro area,
/// far outside every metro engine's `4r` band.
fn depot_vehicle(oid: u64, offset: f64) -> UncertainTrajectory {
    let y = 5_000.0 + (oid % 100) as f64;
    let tr = Trajectory::from_triples(
        Oid(oid),
        &[(offset, y, 0.0), (offset + 30.0, y + 3.0, 60.0)],
    )
    .expect("valid track");
    UncertainTrajectory::with_uniform_pdf(tr, 0.5).expect("valid radius")
}

fn main() {
    let radius = 0.5;
    // The metro fleet of the paper's §5 workload, plus a remote depot
    // fleet whose vehicles will be streaming position corrections.
    let server = ModServer::new();
    server
        .register_all(generate_uncertain(
            &WorkloadConfig::with_objects(600, 9),
            radius,
        ))
        .expect("fresh ids");
    server
        .register_all((600..700).map(|oid| depot_vehicle(oid, 0.0)))
        .expect("fresh ids");

    let window = TimeInterval::new(0.0, 60.0);
    let focus = Oid(0);

    // Warm the pipeline: snapshot, segment indexes, one cached engine.
    let snap = server.store().snapshot();
    println!(
        "initial build: {} objects, grid {}x{}, r-tree height {}",
        snap.len(),
        snap.grid().dims().0,
        snap.grid().dims().1,
        snap.rtree().height()
    );
    let before = server
        .continuous_nn(focus, window)
        .expect("query runs")
        .sequence;

    // A stream of 50 GPS corrections to depot vehicles. Each one bumps
    // the store epoch — but the snapshot refresh only patches the
    // previous snapshot's indexes, and the focus vehicle's cached engine
    // is *carried* across every mutation because each correction is
    // provably beyond its envelope + 4r reach.
    for k in 0..50u64 {
        let victim = 600 + (k % 100);
        server.store().remove(Oid(victim)).expect("present");
        server
            .register(depot_vehicle(victim, 0.1 * (k + 1) as f64))
            .expect("re-registered");
        // Every refresh patches the previous snapshot: no index rebuild.
        let snap = server.store().snapshot();
        let _ = (snap.grid().entry_count(), snap.rtree().entry_count());
        // The focus query keeps running against the fresh epoch, with
        // answers identical to a cold rebuild (asserted property-style in
        // tests/delta_consistency.rs; spot-checked here).
        let ans = server.continuous_nn(focus, window).expect("query runs");
        assert_eq!(
            ans.sequence, before,
            "depot churn must not change metro answers"
        );
    }

    let d = server.store().delta_stats();
    println!(
        "after 50 updates: epoch {}, {} delta-applied refreshes, {} full rebuilds",
        d.epoch, d.snapshots_delta_applied, d.snapshots_rebuilt
    );
    let c = server.cache_stats();
    println!(
        "engine cache: {} hits ({} carried across deltas), {} misses",
        c.hits, c.carried, c.misses
    );
    assert!(c.carried > 0, "the carry fast-path should have fired");
    println!("continuous NN answer unchanged through the whole stream ✓");
}
