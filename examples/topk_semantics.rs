//! Top-k semantics: crisp trajectories vs uncertain trajectories.
//!
//! §7 of the paper proposes to "compare the semantics of traditional
//! Top-k NN queries for crisp trajectories with that for uncertain
//! trajectories". This example materializes both answers on the paper's
//! workload:
//!
//! * the **crisp** continuous k-NN answer — a partition of the window into
//!   cells with the ordered k nearest objects by expected locations
//!   (`continuous_knn`, built from ranked envelopes);
//! * the **uncertain** Top-k at sampled instants — the ranking by exact
//!   `P^NN` (Eq. 5 over the convolved difference pdfs).
//!
//! Theorem 1 predicts the two agree whenever all objects share one
//! rotationally symmetric pdf — and the measured agreement is ≈ 100%.
//! With heterogeneous radii the prediction fails, which is where the
//! `mixed_fleet` example picks up.
//!
//! Run with: `cargo run --release --example topk_semantics`

use uncertain_nn::core::topk::semantics_agreement;
use uncertain_nn::prelude::*;

fn main() {
    let cfg = WorkloadConfig {
        num_objects: 250,
        seed: 2009,
        ..WorkloadConfig::default()
    };
    let radius = 0.5;
    let trajectories = generate(&cfg);
    let window = TimeInterval::new(0.0, 60.0);
    let k = 3;

    let query = trajectories
        .iter()
        .find(|t| t.oid() == Oid(0))
        .expect("workload contains Tr0");
    let fs = difference_distances(query, &trajectories, &window).expect("window valid");

    // Crisp continuous k-NN: the full time-parameterized answer.
    let crisp = continuous_knn(&fs, k);
    println!(
        "Crisp continuous {k}-NN of Tr0: {} cells over {} minutes",
        crisp.cells().len(),
        window.len()
    );
    for cell in crisp.cells().iter().take(6) {
        let names: Vec<String> = cell.ranked.iter().map(|o| o.to_string()).collect();
        println!(
            "  [{:5.1}, {:5.1}] min: {}",
            cell.span.start(),
            cell.span.end(),
            names.join(" < ")
        );
    }
    if crisp.cells().len() > 6 {
        println!("  ... {} more cells", crisp.cells().len() - 6);
    }

    // Uncertain Top-k at a probe instant.
    let engine = QueryEngine::new(Oid(0), fs, radius);
    let t = 30.0;
    let probabilistic = probabilistic_topk_at(&engine, t, k);
    println!("\nUncertain Top-{k} at t = {t} min (by exact P^NN):");
    for (oid, p) in &probabilistic {
        println!("  {oid:>6}: P^NN = {p:.3}");
    }
    println!(
        "Crisp Top-{k} at t = {t} min:      {:?}",
        crisp.knn_at(t).unwrap()
    );

    // Quantified agreement across the window (Theorem 1 in action).
    let agreement = semantics_agreement(&engine, &crisp, k, 600);
    println!(
        "\nAgreement of the two semantics over 600 probes: {:.1}% \
         (Theorem 1: equal-radius ranking by P^NN == ranking by distance)",
        agreement * 100.0
    );
    assert!(agreement > 0.95, "Theorem 1 violated: {agreement}");

    // Membership stability: how long does each object stay in the top k?
    let mut tenure: Vec<(Oid, f64)> = crisp
        .cells()
        .iter()
        .flat_map(|c| c.ranked.iter().map(move |o| (*o, c.span.len())))
        .fold(
            std::collections::BTreeMap::<Oid, f64>::new(),
            |mut m, (o, l)| {
                *m.entry(o).or_insert(0.0) += l;
                m
            },
        )
        .into_iter()
        .collect();
    tenure.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nLongest Top-{k} tenures:");
    for (oid, mins) in tenure.iter().take(5) {
        println!("  {oid:>6}: {mins:5.1} min in the top {k}");
    }
}
