//! `unn-cli` — an interactive / scriptable shell over the MOD server.
//!
//! Reads commands from stdin (one per line), so it works both as a REPL
//! and in pipelines:
//!
//! ```text
//! printf 'gen 200 42 0.5\nnn Tr0 0 60\n' | cargo run --release --bin unn-cli
//! ```
//!
//! ## Serve and connected modes
//!
//! `unn-cli serve <addr> [--gen <n> <seed> <radius>] [--wal <dir>
//! [--fsync <policy>]]` binds a `NetServer` on `addr` (port 0 picks an
//! ephemeral port, printed on startup) over a fresh MOD — optionally
//! pre-populated with the §5 workload — and serves until stdin closes
//! or reads `quit`. With `--wal`, the store is first **recovered** from
//! the directory's checkpoint image + write-ahead log (the recovery
//! report is printed) and every subsequent commit is journaled there,
//! so a `kill -9` loses at most the unsynced fsync window.
//!
//! `unn-cli follow <addr> [deltas] [ms]` attaches a read replica: it
//! bootstraps a local mirror over the `FOLLOW` wire exchange, applies
//! up to `deltas` streamed commits (waiting at most `ms` for each), and
//! prints the mirrored epoch as it advances.
//!
//! `unn-cli connect <addr>` speaks the framed wire protocol to a running
//! `NetServer` instead of embedding a local server. The command set
//! shrinks to what the protocol carries — `sql`, `sub add/drop/list/
//! answer`, `obj put/del`, `watch` — and `watch` **blocks on the
//! socket**: subscription deltas registered over the connection are
//! pushed by the server as they land, so watching costs zero polling
//! and wakes with commit latency. A `lagged` event (the server squashed
//! deltas under backpressure) triggers an automatic resync from the
//! full answer.
//!
//! Commands (local mode):
//!
//! ```text
//! gen <n> <seed> <radius>     generate the §5 random-waypoint workload
//! load <path>                 load a MOD snapshot (persist format)
//! save <path>                 save the current MOD
//! list                        population summary
//! obj put <Tr> <x0> <y0> <x1> <y1> [r]  register a straight-line object
//! obj move <Tr> <dx> <dy>     shift an object (single-commit replace)
//! obj del <Tr>                unregister an object
//! nn <TrQ> <tb> <te>          crisp continuous NN timeline (§1)
//! snapshot <TrQ> <t>          instantaneous P^NN ranking at t (§2.2)
//! knn <TrQ> <k> <tb> <te>     continuous k-NN cells (§7 Top-k)
//! rnn <TrQ> <tb> <te>         probabilistic reverse-NN answer (§7)
//! ipac <TrQ> <tb> <te> <d>    render the IPAC-NN tree to depth d
//! stats <TrQ> <tb> <te>       envelope size and pruning statistics
//! policy <kind> [epochs]      set the prefilter (exhaustive|scan|grid|rtree)
//! cache                       engine-cache hit/miss/carry counters
//! store delta-stats           delta-epoch machinery counters
//! store rebuild-fraction <f>  set the delta-vs-rebuild threshold
//! store delta-capacity <n>    cap the delta log (forces rebuilds past it)
//! store feed-bound <n>        cap per-subscription change feeds (squash past it)
//! store row-samples <n>       probe density of future row subscriptions
//! store row-tolerance <f>     adaptive refinement tolerance (0 = full density)
//! store maintenance-batch <n> coalesce n commits per maintenance round
//! store metrics [p] [--watch <s> [n]]  telemetry registry (Prometheus text)
//! store telemetry <metrics|trace> <on|off>  flip the telemetry switches
//! store trace <epoch>         replay one commit's pipeline trace events
//! sql <statement>             execute a query-language statement
//! sub add <name> <SELECT …>   register a standing query
//! sub drop <name>             unregister a standing query
//! sub list                    list standing queries
//! sub stats                   per-subscription maintenance counters
//! sub poll <name>             drain a standing query's change feed
//! watch <name> [polls] [ms]   drain a standing query (default 1 poll; more
//!                             polls demo the feed cadence — the REPL is
//!                             single-threaded, so nothing mutates mid-watch)
//! help                        this text
//! quit                        exit
//! ```
//!
//! `sub …` is shorthand for the query-language verbs `REGISTER
//! CONTINUOUS … AS name` / `UNREGISTER name` / `SHOW SUBSCRIPTIONS`,
//! which `sql` accepts too. `gen` and `load` replace the whole server,
//! dropping registered subscriptions.

use std::io::{self, BufRead, Write};
use std::path::Path;
use std::time::Duration;
use uncertain_nn::core::probrows::ProbRowSet;
use uncertain_nn::modb::net::{Follower, NetClient, WireOutput};
use uncertain_nn::modb::subscription::{SubAnswer, SubDelta, SubscriptionError};
use uncertain_nn::modb::telemetry::{self, MetricsSnapshot, TraceEvent, TraceStage};
use uncertain_nn::modb::{
    open_store, persist, FsyncPolicy, RecoveryReport, ServerError, SubscriptionInfo, WalOptions,
};
use uncertain_nn::prelude::*;

const HELP: &str = "\
commands:
  gen <n> <seed> <radius>     generate the random-waypoint workload
  load <path>                 load a MOD snapshot
  save <path>                 save the current MOD
  list                        population summary
  obj put <Tr> <x0> <y0> <x1> <y1> [r]  register a straight-line object
  obj move <Tr> <dx> <dy>     shift an object (single-commit replace)
  obj del <Tr>                unregister an object
  nn <TrQ> <tb> <te>          crisp continuous NN timeline
  snapshot <TrQ> <t>          instantaneous P^NN ranking at t
  knn <TrQ> <k> <tb> <te>     continuous k-NN cells
  rnn <TrQ> <tb> <te>         probabilistic reverse-NN answer
  ipac <TrQ> <tb> <te> <d>    render the IPAC-NN tree to depth d
  stats <TrQ> <tb> <te>       envelope size and pruning statistics
  policy <kind> [epochs]      set the prefilter (exhaustive|scan|grid|rtree)
  cache                       engine-cache hit/miss/carry counters
  store delta-stats           delta-epoch machinery counters
  store rebuild-fraction <f>  set the delta-vs-rebuild threshold
  store delta-capacity <n>    cap the delta log (forces rebuilds past it)
  store feed-bound <n>        cap per-subscription change feeds (squash past it)
  store row-samples <n>       probe density of future row subscriptions
  store row-tolerance <f>     adaptive refinement tolerance (0 = full density)
  store maintenance-batch <n> coalesce n commits per maintenance round
  store wal-open <dir> [fsync] recover from a WAL dir and journal into it
  store wal-status            write-ahead log segment/fsync/checkpoint counters
  store checkpoint            force a WAL checkpoint (snapshot + prune) now
  store metrics [p] [--watch <s> [n]]  telemetry registry (Prometheus text;
                              --watch prints deltas-per-interval rates)
  store telemetry <metrics|trace> <on|off>  flip the telemetry switches
  store trace <epoch>         replay one commit's pipeline trace events
  sql <statement>             execute a query-language statement
  sub add <name> <SELECT ...> register a standing query
  sub drop <name>             unregister a standing query
  sub list                    list standing queries
  sub stats                   per-subscription maintenance counters
  sub poll <name>             drain a standing query's change feed
  watch <name> [polls] [ms]   drain a standing query (1 poll default)
  help                        this text
  quit                        exit";

const HELP_CONNECTED: &str = "\
connected-mode commands (unn-cli connect <addr>):
  sql <statement>             execute a query-language statement remotely
  sub add <name> <SELECT ...> register a standing query (deltas are pushed here)
  sub drop <name>             unregister a standing query
  sub list                    list standing queries
  sub stats                   per-subscription maintenance counters
  sub answer <name>           fetch a standing query's full answer + epoch
  obj put <Tr> <x0> <y0> <x1> <y1> [r]  register a straight-line object
  obj del <Tr>                unregister an object
  store metrics [p] [--watch <s> [n]]  remote SHOW METRICS (Prometheus text)
  store trace <epoch>         remote TRACE EPOCH (pipeline trace events)
  watch <name> [deltas] [ms]  block on pushed deltas (auto-resync on lag)
  help                        this text
  quit                        close the connection and exit";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("connect") {
        let Some(addr) = args.get(2) else {
            eprintln!("usage: unn-cli connect <addr>");
            std::process::exit(2);
        };
        match run_connected(addr) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.get(1).map(String::as_str) == Some("serve") {
        let Some(addr) = args.get(2) else {
            eprintln!("{SERVE_USAGE}");
            std::process::exit(2);
        };
        match run_serve(addr, &args[3..]) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.get(1).map(String::as_str) == Some("follow") {
        let Some(addr) = args.get(2) else {
            eprintln!("usage: unn-cli follow <addr> [deltas] [ms]");
            std::process::exit(2);
        };
        match run_follow(addr, &args[3..]) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let stdin = io::stdin();
    let mut server = ModServer::new();
    // Prompts are opt-in (`UNN_CLI_PROMPT=1`) so piped scripts stay clean;
    // TTY detection would need a platform dependency.
    let interactive = std::env::var_os("UNN_CLI_PROMPT").is_some();
    if interactive {
        println!("unn-cli — continuous probabilistic NN queries over uncertain trajectories");
        println!("type 'help' for commands");
    }
    let mut out = io::stdout();
    loop {
        if interactive {
            print!("unn> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        if let Err(msg) = dispatch(&mut server, line) {
            println!("error: {msg}");
        }
    }
}

fn dispatch(server: &mut ModServer, line: &str) -> Result<(), String> {
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "help" => {
            println!("{HELP}");
            Ok(())
        }
        "gen" => {
            let [n, seed, radius]: [f64; 3] = parse_numbers(rest)?;
            let cfg = WorkloadConfig::with_objects(n as usize, seed as u64);
            let fleet = generate_uncertain(&cfg, radius);
            *server = ModServer::new();
            server.register_all(fleet).map_err(|e| e.to_string())?;
            println!(
                "generated {} objects (seed {}, r = {radius} mi, 40x40 mi^2, 60 min)",
                n as usize, seed as u64
            );
            Ok(())
        }
        "load" => {
            let trs = persist::load(Path::new(rest)).map_err(|e| e.to_string())?;
            let count = trs.len();
            *server = ModServer::new();
            server.register_all(trs).map_err(|e| e.to_string())?;
            println!("loaded {count} objects from {rest}");
            Ok(())
        }
        "save" => {
            persist::save(server.store(), Path::new(rest)).map_err(|e| e.to_string())?;
            println!("saved {} objects to {rest}", server.store().len());
            Ok(())
        }
        "list" => {
            let oids = server.store().oids();
            match (oids.first(), oids.last()) {
                (Some(a), Some(b)) => {
                    println!("{} objects, ids {a} .. {b}", oids.len())
                }
                _ => println!("empty MOD"),
            }
            Ok(())
        }
        "nn" => {
            let (q, w) = parse_query_window(server, rest)?;
            let ans = server.continuous_nn(q, w).map_err(|e| e.to_string())?;
            println!(
                "A_nn({q}): {} entries ({} candidates, {} kept, {} envelope pieces)",
                ans.sequence.len(),
                ans.stats.candidates,
                ans.stats.kept,
                ans.stats.envelope_pieces
            );
            for (oid, iv) in &ans.sequence {
                println!("  {oid:>6} during [{:8.3}, {:8.3}]", iv.start(), iv.end());
            }
            Ok(())
        }
        "snapshot" => {
            let mut parts = rest.split_whitespace();
            let q = resolve(server, parts.next().ok_or("usage: snapshot <TrQ> <t>")?)?;
            let t: f64 = parse(parts.next().ok_or("missing t")?)?;
            let ans = server.instantaneous_nn(q, t).map_err(|e| e.to_string())?;
            println!(
                "P^NN ranking at t = {t} ({} candidates, {} pruned by the R_min/R_max rule):",
                ans.examined, ans.pruned
            );
            for (oid, p) in &ans.rows {
                println!("  {oid:>6}: {p:.4}");
            }
            Ok(())
        }
        "knn" => {
            let mut parts = rest.split_whitespace();
            let q = resolve(
                server,
                parts.next().ok_or("usage: knn <TrQ> <k> <tb> <te>")?,
            )?;
            let k: usize = parse(parts.next().ok_or("missing k")?)?;
            let tb: f64 = parse(parts.next().ok_or("missing tb")?)?;
            let te: f64 = parse(parts.next().ok_or("missing te")?)?;
            let w = TimeInterval::try_new(tb, te).ok_or("invalid window")?;
            let ans = server.knn_answer(q, w, k).map_err(|e| e.to_string())?;
            println!("continuous {k}-NN of {q}: {} cells", ans.cells().len());
            for c in ans.cells() {
                let names: Vec<String> = c.ranked.iter().map(|o| o.to_string()).collect();
                println!(
                    "  [{:8.3}, {:8.3}]: {}",
                    c.span.start(),
                    c.span.end(),
                    names.join(" < ")
                );
            }
            Ok(())
        }
        "rnn" => {
            let (q, w) = parse_query_window(server, rest)?;
            let rev = server.reverse_engine(q, w).map_err(|e| e.to_string())?;
            let mut all = rev.rnn_all();
            all.sort_by(|a, b| b.1.total_len().total_cmp(&a.1.total_len()));
            println!("objects that may have {q} as their NN: {}", all.len());
            for (oid, iv) in &all {
                println!(
                    "  {oid:>6}: {:8.3} time units ({:5.1}%)",
                    iv.total_len(),
                    100.0 * iv.total_len() / w.len()
                );
            }
            Ok(())
        }
        "ipac" => {
            let mut parts = rest.split_whitespace();
            let q = resolve(
                server,
                parts.next().ok_or("usage: ipac <TrQ> <tb> <te> <depth>")?,
            )?;
            let tb: f64 = parse(parts.next().ok_or("missing tb")?)?;
            let te: f64 = parse(parts.next().ok_or("missing te")?)?;
            let d: usize = parse(parts.next().ok_or("missing depth")?)?;
            let w = TimeInterval::try_new(tb, te).ok_or("invalid window")?;
            let tree = server.ipac_tree(q, w, d).map_err(|e| e.to_string())?;
            print!("{}", tree.render());
            Ok(())
        }
        "stats" => {
            let (q, w) = parse_query_window(server, rest)?;
            let (engine, stats) = server.engine(q, w).map_err(|e| e.to_string())?;
            println!(
                "query {q}: {} candidates, {} prefiltered, {} kept ({:.1}% pruned), \
                 {} envelope pieces, preprocess {:?}{}",
                stats.candidates,
                stats.prefiltered,
                stats.kept,
                100.0 * (1.0 - stats.kept as f64 / stats.candidates.max(1) as f64),
                stats.envelope_pieces,
                stats.preprocess,
                if stats.cache_hit { " (cache hit)" } else { "" }
            );
            let seq = engine.continuous_nn_answer();
            println!("answer has {} time-parameterized entries", seq.len());
            Ok(())
        }
        "policy" => {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().ok_or("usage: policy <kind> [epochs]")?;
            let epochs: usize = match parts.next() {
                Some(e) => parse(e)?,
                None => 8,
            };
            let policy = match kind {
                "exhaustive" | "none" => PrefilterPolicy::Exhaustive,
                "scan" => PrefilterPolicy::Scan { epochs },
                "grid" => PrefilterPolicy::Grid { epochs },
                "rtree" => PrefilterPolicy::RTree { epochs },
                other => return Err(format!("unknown policy '{other}'")),
            };
            server.set_prefilter_policy(policy);
            println!("prefilter policy set to {policy}");
            Ok(())
        }
        "cache" => {
            let stats = server.cache_stats();
            println!(
                "engine cache: {} hits ({} carried across deltas), {} misses, {} entries (epoch {})",
                stats.hits,
                stats.carried,
                stats.misses,
                stats.entries,
                server.store().epoch()
            );
            Ok(())
        }
        "store" => {
            let mut parts = rest.split_whitespace();
            match parts
                .next()
                .ok_or("usage: store <delta-stats|rebuild-fraction <f>>")?
            {
                "delta-stats" => {
                    let d = server.store().delta_stats();
                    println!(
                        "store: epoch {}, {} shards, {} objects",
                        d.epoch,
                        d.shards,
                        server.store().len()
                    );
                    println!(
                        "delta log: {} records retained (floor epoch {}), {} ops pending vs cached snapshot",
                        d.log_len, d.log_floor, d.pending_ops
                    );
                    println!(
                        "snapshot refreshes: {} delta-applied, {} full rebuilds (rebuild fraction {:.2})",
                        d.snapshots_delta_applied, d.snapshots_rebuilt, d.rebuild_fraction
                    );
                    Ok(())
                }
                "rebuild-fraction" => {
                    let f: f64 = parse(parts.next().ok_or("usage: store rebuild-fraction <f>")?)?;
                    server.store().set_rebuild_fraction(f);
                    println!("rebuild fraction set to {f} (0 disables delta maintenance)");
                    Ok(())
                }
                "delta-capacity" => {
                    let n: usize = parse(parts.next().ok_or("usage: store delta-capacity <n>")?)?;
                    server.store().set_delta_log_capacity(n);
                    println!(
                        "delta log capped at {n} records (consumers falling off rebuild fully)"
                    );
                    Ok(())
                }
                "feed-bound" => {
                    let n: usize = parse(parts.next().ok_or("usage: store feed-bound <n>")?)?;
                    server.store().set_feed_bound(n);
                    println!(
                        "change feeds capped at {} undrained deltas \
                         (oldest pairs squash past it; folds stay exact)",
                        server.store().feed_bound()
                    );
                    Ok(())
                }
                "row-samples" => {
                    let n: u32 = parse(parts.next().ok_or("usage: store row-samples <n>")?)?;
                    let registry = server.subscription_registry();
                    registry.set_row_samples(n);
                    println!(
                        "row subscriptions registered from now on sample {} probe instants \
                         (existing ones keep their density)",
                        registry.row_samples()
                    );
                    Ok(())
                }
                "row-tolerance" => {
                    let f: f64 = parse(parts.next().ok_or("usage: store row-tolerance <f>")?)?;
                    let registry = server.subscription_registry();
                    registry.set_row_tolerance(f);
                    let tol = registry.row_tolerance();
                    if tol > 0.0 {
                        println!(
                            "row maintenance refines adaptively at tolerance {tol} \
                             (columns near the threshold get full density)"
                        );
                    } else {
                        println!(
                            "adaptive refinement disabled: every dirty probe column \
                             runs full quadrature density"
                        );
                    }
                    Ok(())
                }
                "maintenance-batch" => {
                    let n: usize =
                        parse(parts.next().ok_or("usage: store maintenance-batch <n>")?)?;
                    server.store().set_maintenance_batch(n);
                    let window = server.store().maintenance_batch();
                    if window > 1 {
                        println!(
                            "maintenance coalesces every {window} commits into one round \
                             (burst tails stay pending until the next commit or resync)"
                        );
                    } else {
                        println!("maintenance runs per commit (batch window 1)");
                    }
                    Ok(())
                }
                "wal-open" => {
                    let dir = parts.next().ok_or("usage: store wal-open <dir> [fsync]")?;
                    let mut options = WalOptions::default();
                    if let Some(p) = parts.next() {
                        options.fsync = FsyncPolicy::parse(p).ok_or_else(|| {
                            format!("unknown fsync policy '{p}' (always|os|every-<n>)")
                        })?;
                    }
                    let (store, _wal, report) =
                        open_store(Path::new(dir), options).map_err(|e| e.to_string())?;
                    print_recovery(dir, &report);
                    // Like `gen`/`load`, this replaces the whole server
                    // (dropping registered subscriptions) — the recovered
                    // store journals every commit from here on.
                    *server = ModServer::with_store(store);
                    Ok(())
                }
                "wal-status" => {
                    let store = server.store();
                    match store.wal_status() {
                        Some(s) => {
                            println!(
                                "wal {}: {} segments, {} bytes, fsync {}",
                                s.dir.display(),
                                s.segments,
                                s.total_bytes,
                                s.fsync
                            );
                            println!(
                                "  last epoch {}, checkpoint epoch {}",
                                s.last_epoch, s.checkpoint_epoch
                            );
                            println!(
                                "  {} appended, {} syncs, {} checkpoints, {} io errors",
                                s.appended, s.syncs, s.checkpoints, s.io_errors
                            );
                            if let Some(e) = store.wal().and_then(|w| w.last_error()) {
                                println!("  last error: {e}");
                            }
                        }
                        None => {
                            println!("no WAL attached (serve --wal <dir> or store wal-open <dir>)")
                        }
                    }
                    Ok(())
                }
                "checkpoint" => {
                    let wal = server.store().wal().ok_or("no WAL attached")?;
                    let epoch = wal.checkpoint(server.store()).map_err(|e| e.to_string())?;
                    println!("checkpoint written at epoch {epoch}");
                    Ok(())
                }
                "metrics" => {
                    let args: Vec<&str> = parts.collect();
                    let spec = MetricsArgs::parse(&args)?;
                    match spec.watch {
                        None => print!(
                            "{}",
                            server
                                .metrics_snapshot(spec.prefix.as_deref())
                                .render_prometheus()
                        ),
                        Some((secs, rounds)) => {
                            // The local REPL is single-threaded, so rates here
                            // mostly demo the rendering; connected mode watches
                            // a live server mutating concurrently.
                            let mut before = server.metrics_snapshot(spec.prefix.as_deref());
                            for _ in 0..rounds {
                                std::thread::sleep(Duration::from_secs_f64(secs));
                                let after = server.metrics_snapshot(spec.prefix.as_deref());
                                print_metric_rates(&before, &after, secs);
                                before = after;
                            }
                        }
                    }
                    Ok(())
                }
                "telemetry" => {
                    const USAGE: &str = "usage: store telemetry <metrics|trace> <on|off>";
                    let which = parts.next().ok_or(USAGE)?;
                    let on = match parts.next().ok_or(USAGE)? {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("expected on|off, got '{other}'")),
                    };
                    match which {
                        "metrics" => telemetry::set_metrics(on),
                        "trace" => telemetry::set_trace(on),
                        other => return Err(format!("expected metrics|trace, got '{other}'")),
                    }
                    println!(
                        "telemetry {which} {}",
                        if on {
                            "on"
                        } else {
                            "off (recording branches skipped)"
                        }
                    );
                    Ok(())
                }
                "trace" => {
                    let epoch: u64 = parse(parts.next().ok_or("usage: store trace <epoch>")?)?;
                    let events = server.store().telemetry().trace.events_for(epoch);
                    print_trace(epoch, &events);
                    Ok(())
                }
                other => Err(format!("unknown store subcommand '{other}'")),
            }
        }
        "obj" => {
            let mut parts = rest.split_whitespace();
            match parts.next().ok_or("usage: obj <put|move|del> ...")? {
                "put" => {
                    let name = parts
                        .next()
                        .ok_or("usage: obj put <Tr> <x0> <y0> <x1> <y1> [r]")?;
                    let nums: Vec<f64> = parts.map(parse).collect::<Result<_, _>>()?;
                    let (coords, r) = match nums.len() {
                        4 => (&nums[..4], 0.5),
                        5 => (&nums[..4], nums[4]),
                        n => return Err(format!("expected 4 or 5 numbers, got {n}")),
                    };
                    let oid = parse_oid(name)?;
                    let tr = Trajectory::from_triples(
                        oid,
                        &[(coords[0], coords[1], 0.0), (coords[2], coords[3], 60.0)],
                    )
                    .map_err(|e| e.to_string())?;
                    let utr =
                        UncertainTrajectory::with_uniform_pdf(tr, r).map_err(|e| e.to_string())?;
                    server.register(utr).map_err(|e| e.to_string())?;
                    println!("registered {oid} (r = {r} mi, window [0, 60])");
                    Ok(())
                }
                "move" => {
                    let name = parts.next().ok_or("usage: obj move <Tr> <dx> <dy>")?;
                    let dx: f64 = parse(parts.next().ok_or("missing dx")?)?;
                    let dy: f64 = parse(parts.next().ok_or("missing dy")?)?;
                    let oid = resolve(server, name)?;
                    let old = server.store().get(oid).ok_or("object vanished")?;
                    let shifted: Vec<(f64, f64, f64)> = old
                        .trajectory()
                        .samples()
                        .iter()
                        .map(|p| (p.position.x + dx, p.position.y + dy, p.time))
                        .collect();
                    let tr = Trajectory::from_triples(oid, &shifted).map_err(|e| e.to_string())?;
                    // Preserve the object's uncertainty model — replacing
                    // a Gaussian object with a uniform one would poison
                    // the MOD's shared-pdf invariant.
                    let utr = UncertainTrajectory::new(tr, old.radius(), old.pdf())
                        .map_err(|e| e.to_string())?;
                    // A single-commit replace: subscriptions absorb the
                    // correction in one maintenance round.
                    server.store().update(utr);
                    println!("moved {oid} by ({dx}, {dy})");
                    Ok(())
                }
                "del" => {
                    let name = parts.next().ok_or("usage: obj del <Tr>")?;
                    let oid = resolve(server, name)?;
                    server.store().remove(oid).map_err(|e| e.to_string())?;
                    println!("unregistered {oid}");
                    Ok(())
                }
                other => Err(format!("unknown obj subcommand '{other}'")),
            }
        }
        "sql" => {
            let out = server.execute(rest).map_err(|e| match e {
                // Parse errors and registration refusals point at the
                // offending token.
                ServerError::Parse(pe) => pe.render(rest),
                ServerError::Subscription(se @ SubscriptionError::Unsupported { .. }) => {
                    se.render(rest)
                }
                other => other.to_string(),
            })?;
            print_output(out);
            Ok(())
        }
        "sub" => {
            let (sub_cmd, sub_rest) = match rest.split_once(char::is_whitespace) {
                Some((c, r)) => (c, r.trim()),
                None => (rest, ""),
            };
            match sub_cmd {
                "add" => {
                    let (name, stmt) = sub_rest
                        .split_once(char::is_whitespace)
                        .ok_or("usage: sub add <name> <SELECT ...>")?;
                    let info = server.subscribe(name, stmt.trim()).map_err(|e| match e {
                        ServerError::Parse(pe) => pe.render(stmt.trim()),
                        ServerError::Subscription(se @ SubscriptionError::Unsupported { .. }) => {
                            se.render(stmt.trim())
                        }
                        other => other.to_string(),
                    })?;
                    print_subscription(&info);
                    Ok(())
                }
                "drop" => {
                    server.unsubscribe(sub_rest).map_err(|e| e.to_string())?;
                    println!("dropped subscription '{sub_rest}'");
                    Ok(())
                }
                "list" => {
                    let subs = server.subscriptions();
                    let registry = server.subscription_registry();
                    println!(
                        "{} subscriptions on {} shared engines (row samples {}, row tolerance {})",
                        subs.len(),
                        registry.share_count(),
                        registry.row_samples(),
                        registry.row_tolerance()
                    );
                    for info in &subs {
                        print_subscription(info);
                    }
                    Ok(())
                }
                "stats" => {
                    let subs = server.subscriptions();
                    let registry = server.subscription_registry();
                    println!(
                        "{} subscriptions on {} shared engines, maintenance batch window {}",
                        subs.len(),
                        registry.share_count(),
                        server.store().maintenance_batch()
                    );
                    for info in &subs {
                        let s = &info.stats;
                        println!(
                            "'{}' @epoch {}: {} visited ({} skipped / {} patched / {} rebuilt), \
                             {} skipped unvisited, {} commits batched",
                            info.name,
                            info.last_epoch,
                            s.visited,
                            s.skipped,
                            s.patched,
                            s.rebuilt,
                            s.skipped_unvisited,
                            s.batched_commits
                        );
                        println!(
                            "  {} ops skipped, {} envelopes carried, {} fns reused / {} built, \
                             {} rows patched, {} perspectives skipped, \
                             {} columns refined / {} coarse-only",
                            s.skipped_ops,
                            s.envelopes_carried,
                            s.functions_reused,
                            s.functions_built,
                            s.rows_patched,
                            s.perspectives_skipped,
                            s.columns_refined,
                            s.columns_coarse_only
                        );
                    }
                    Ok(())
                }
                "poll" => {
                    let deltas = server
                        .poll_subscription(sub_rest)
                        .map_err(|e| e.to_string())?;
                    print_deltas(sub_rest, &deltas);
                    Ok(())
                }
                other => Err(format!("unknown sub subcommand '{other}'")),
            }
        }
        "watch" => {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or("usage: watch <name> [polls] [ms]")?;
            // This local REPL is single-threaded, so no mutation can land
            // while watch sleeps — the default is a single drain, and
            // multi-poll runs merely demo the feed cadence. In connected
            // mode (`unn-cli connect`), watch instead blocks on the
            // socket and wakes when the server pushes a delta.
            let polls: usize = match parts.next() {
                Some(p) => parse(p)?,
                None => 1,
            };
            let interval_ms: u64 = match parts.next() {
                Some(p) => parse(p)?,
                None => 200,
            };
            // Fail fast on unknown names before sleeping.
            server
                .poll_subscription(name)
                .map_err(|e| e.to_string())
                .map(|deltas| print_deltas(name, &deltas))?;
            for _ in 1..polls.max(1) {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                let deltas = server.poll_subscription(name).map_err(|e| e.to_string())?;
                print_deltas(name, &deltas);
            }
            println!("watch '{name}' finished after {} polls", polls.max(1));
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'help')")),
    }
}

const SERVE_USAGE: &str = "usage: unn-cli serve <addr> [--gen <n> <seed> <radius>] \
     [--wal <dir>] [--fsync <policy>] [--metrics-dump <path>]";

/// Serve mode: bind a `NetServer` over a fresh (optionally generated,
/// optionally WAL-recovered and journaled) MOD and block until stdin
/// closes or reads `quit`. Pair with `unn-cli connect <addr>` or
/// `unn-cli follow <addr>` from other terminals.
fn run_serve(addr: &str, opts: &[String]) -> Result<(), String> {
    let mut gen: Option<(usize, u64, f64)> = None;
    let mut wal_dir: Option<&String> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut metrics_dump: Option<&String> = None;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--gen" => {
                let n: usize = parse(it.next().ok_or(SERVE_USAGE)?)?;
                let seed: u64 = parse(it.next().ok_or(SERVE_USAGE)?)?;
                let radius: f64 = parse(it.next().ok_or(SERVE_USAGE)?)?;
                gen = Some((n, seed, radius));
            }
            "--wal" => wal_dir = Some(it.next().ok_or(SERVE_USAGE)?),
            "--metrics-dump" => metrics_dump = Some(it.next().ok_or(SERVE_USAGE)?),
            "--fsync" => {
                let p = it.next().ok_or(SERVE_USAGE)?;
                fsync =
                    Some(FsyncPolicy::parse(p).ok_or_else(|| {
                        format!("unknown fsync policy '{p}' (always|os|every-<n>)")
                    })?);
            }
            other => return Err(format!("unknown serve option '{other}'\n{SERVE_USAGE}")),
        }
    }
    let server = match wal_dir {
        Some(dir) => {
            let mut options = WalOptions::default();
            if let Some(f) = fsync {
                options.fsync = f;
            }
            let (store, _wal, report) =
                open_store(Path::new(dir), options).map_err(|e| e.to_string())?;
            print_recovery(dir, &report);
            ModServer::with_store(store)
        }
        None => {
            if fsync.is_some() {
                return Err("--fsync requires --wal".to_string());
            }
            ModServer::new()
        }
    };
    if let Some((n, seed, radius)) = gen {
        let cfg = WorkloadConfig::with_objects(n, seed);
        server
            .register_all(generate_uncertain(&cfg, radius))
            .map_err(|e| e.to_string())?;
        println!("generated {n} objects (seed {seed}, r = {radius} mi)");
    }
    let server = std::sync::Arc::new(server);
    let net = uncertain_nn::modb::net::NetServer::bind(addr, server.clone())
        .map_err(|e| e.to_string())?;
    println!("serving on {} (EOF or 'quit' stops)", net.local_addr());
    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" || line.trim() == "exit" => break,
            Ok(_) => continue,
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    net.shutdown();
    // Dump after shutdown so the JSON reflects every served request,
    // including the final pushes the shutdown path flushed.
    if let Some(path) = metrics_dump {
        let json = server.metrics_snapshot(None).to_json();
        std::fs::write(Path::new(path), json).map_err(|e| e.to_string())?;
        println!("metrics dumped to {path}");
    }
    println!("server stopped");
    Ok(())
}

fn print_recovery(dir: &str, report: &RecoveryReport) {
    println!(
        "recovered {dir}: checkpoint epoch {} ({} objects) + {} wal records ({} ops) -> epoch {}",
        report.snapshot_epoch,
        report.snapshot_objects,
        report.replayed_records,
        report.replayed_ops,
        report.recovered_epoch
    );
    if let Some(t) = &report.torn_tail {
        println!(
            "  torn tail truncated at byte {} of {}: {}",
            t.offset,
            t.segment.display(),
            t.reason
        );
    }
}

/// Follower mode: mirror a leader over the `FOLLOW` wire exchange,
/// applying up to `deltas` streamed commits (each awaited for at most
/// `ms`), printing the mirrored epoch as it advances.
fn run_follow(addr: &str, opts: &[String]) -> Result<(), String> {
    let deltas: u64 = match opts.first() {
        Some(p) => parse(p)?,
        None => 0,
    };
    let timeout_ms: u64 = match opts.get(1) {
        Some(p) => parse(p)?,
        None => 2000,
    };
    let mut follower = Follower::connect(addr).map_err(|e| e.to_string())?;
    println!(
        "following {addr} from epoch {} ({} objects)",
        follower.epoch(),
        follower.server().store().len()
    );
    let mut processed = 0u64;
    while processed < deltas {
        match follower
            .pump(Some(Duration::from_millis(timeout_ms)))
            .map_err(|e| e.to_string())?
        {
            true => {
                processed += 1;
                println!(
                    "  epoch {} ({} objects)",
                    follower.epoch(),
                    follower.server().store().len()
                );
            }
            false => {
                println!("follow {addr}: no delta within {timeout_ms} ms");
                break;
            }
        }
    }
    println!(
        "follower stopped at epoch {} ({} objects, {} notifications)",
        follower.epoch(),
        follower.server().store().len(),
        processed
    );
    follower.close().map_err(|e| e.to_string())
}

/// The connected-mode REPL: every command becomes wire requests against
/// a remote `NetServer`; subscription deltas registered here arrive as
/// pushed events consumed by `watch`.
fn run_connected(addr: &str) -> Result<(), String> {
    let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
    let interactive = std::env::var_os("UNN_CLI_PROMPT").is_some();
    if interactive {
        println!(
            "unn-cli connected to {addr} (server epoch {})",
            client.server_epoch()
        );
        println!("type 'help' for commands");
    }
    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        if interactive {
            print!("unn@{addr}> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("read error: {e}")),
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        if let Err(msg) = dispatch_connected(&mut client, line) {
            println!("error: {msg}");
        }
    }
    client.close().map_err(|e| e.to_string())
}

fn dispatch_connected(client: &mut NetClient, line: &str) -> Result<(), String> {
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "help" => {
            println!("{HELP_CONNECTED}");
            Ok(())
        }
        "sql" => {
            let out = client.execute(rest).map_err(|e| e.to_string())?;
            print_wire_output(out);
            Ok(())
        }
        "sub" => {
            let (sub_cmd, sub_rest) = match rest.split_once(char::is_whitespace) {
                Some((c, r)) => (c, r.trim()),
                None => (rest, ""),
            };
            let statement = match sub_cmd {
                "add" => {
                    let (name, stmt) = sub_rest
                        .split_once(char::is_whitespace)
                        .ok_or("usage: sub add <name> <SELECT ...>")?;
                    format!("REGISTER CONTINUOUS {} AS {name}", stmt.trim())
                }
                "drop" => format!("UNREGISTER {sub_rest}"),
                // Both render the full info rows — the counters travel
                // in the wire `info` stats block.
                "list" | "stats" => "SHOW SUBSCRIPTIONS".to_string(),
                "answer" => {
                    let (answer, epoch) = client
                        .subscription_answer(sub_rest)
                        .map_err(|e| e.to_string())?;
                    print_answer(sub_rest, &answer, epoch);
                    return Ok(());
                }
                other => return Err(format!("unknown sub subcommand '{other}'")),
            };
            let out = client.execute(&statement).map_err(|e| e.to_string())?;
            print_wire_output(out);
            Ok(())
        }
        "obj" => {
            let mut parts = rest.split_whitespace();
            match parts.next().ok_or("usage: obj <put|del> ...")? {
                "put" => {
                    let name = parts
                        .next()
                        .ok_or("usage: obj put <Tr> <x0> <y0> <x1> <y1> [r]")?;
                    let nums: Vec<f64> = parts.map(parse).collect::<Result<_, _>>()?;
                    let (coords, r) = match nums.len() {
                        4 => (&nums[..4], 0.5),
                        5 => (&nums[..4], nums[4]),
                        n => return Err(format!("expected 4 or 5 numbers, got {n}")),
                    };
                    let oid = parse_oid(name)?;
                    let tr = Trajectory::from_triples(
                        oid,
                        &[(coords[0], coords[1], 0.0), (coords[2], coords[3], 60.0)],
                    )
                    .map_err(|e| e.to_string())?;
                    let utr =
                        UncertainTrajectory::with_uniform_pdf(tr, r).map_err(|e| e.to_string())?;
                    client.insert(utr).map_err(|e| e.to_string())?;
                    println!("registered {oid} remotely (r = {r} mi, window [0, 60])");
                    Ok(())
                }
                "del" => {
                    let name = parts.next().ok_or("usage: obj del <Tr>")?;
                    let oid = parse_oid(name)?;
                    client.remove(oid).map_err(|e| e.to_string())?;
                    println!("unregistered {oid} remotely");
                    Ok(())
                }
                other => Err(format!(
                    "unknown obj subcommand '{other}' (connected mode supports put/del)"
                )),
            }
        }
        "store" => {
            let mut parts = rest.split_whitespace();
            match parts
                .next()
                .ok_or("usage: store <metrics|trace> ... (connected mode)")?
            {
                "metrics" => {
                    let args: Vec<&str> = parts.collect();
                    let spec = MetricsArgs::parse(&args)?;
                    let statement = match &spec.prefix {
                        Some(p) => format!("SHOW METRICS PREFIX {p}"),
                        None => "SHOW METRICS".to_string(),
                    };
                    let fetch = |client: &mut NetClient| -> Result<MetricsSnapshot, String> {
                        match client.execute(&statement).map_err(|e| e.to_string())? {
                            WireOutput::Metrics(snap) => Ok(snap),
                            other => Err(format!("unexpected answer to SHOW METRICS: {other:?}")),
                        }
                    };
                    match spec.watch {
                        None => print!("{}", fetch(client)?.render_prometheus()),
                        Some((secs, rounds)) => {
                            let mut before = fetch(client)?;
                            for _ in 0..rounds {
                                std::thread::sleep(Duration::from_secs_f64(secs));
                                let after = fetch(client)?;
                                print_metric_rates(&before, &after, secs);
                                before = after;
                            }
                        }
                    }
                    Ok(())
                }
                "trace" => {
                    let epoch: u64 = parse(parts.next().ok_or("usage: store trace <epoch>")?)?;
                    let out = client
                        .execute(&format!("TRACE EPOCH {epoch}"))
                        .map_err(|e| e.to_string())?;
                    print_wire_output(out);
                    Ok(())
                }
                other => Err(format!(
                    "unknown store subcommand '{other}' (connected mode supports metrics/trace)"
                )),
            }
        }
        "watch" => {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or("usage: watch <name> [deltas] [ms]")?;
            let want: usize = match parts.next() {
                Some(p) => parse(p)?,
                None => 1,
            };
            let timeout_ms: u64 = match parts.next() {
                Some(p) => parse(p)?,
                None => 10_000,
            };
            watch_connected(client, name, want.max(1), timeout_ms)
        }
        other => Err(format!(
            "unknown command '{other}' in connected mode (try 'help')"
        )),
    }
}

/// Blocks on the socket until `want` pushed deltas for `name` arrived
/// (or the per-event timeout expires). Lagged events — the server
/// squashed under backpressure — trigger an automatic resync from the
/// full answer, which is what restores per-epoch granularity.
fn watch_connected(
    client: &mut NetClient,
    name: &str,
    want: usize,
    timeout_ms: u64,
) -> Result<(), String> {
    let mut got = 0usize;
    while got < want {
        match client
            .next_event(Some(Duration::from_millis(timeout_ms)))
            .map_err(|e| e.to_string())?
        {
            Some(ev) => {
                println!(
                    "'{}' @epoch {}{}:",
                    ev.subscription,
                    ev.delta.epoch(),
                    if ev.lagged { " [lagged]" } else { "" },
                );
                print_delta(&ev.delta);
                if ev.lagged && ev.subscription == name {
                    let (answer, epoch) = client
                        .subscription_answer(name)
                        .map_err(|e| e.to_string())?;
                    print_answer(name, &answer, epoch);
                }
                if ev.subscription == name {
                    got += 1;
                }
            }
            None => {
                println!("watch '{name}': no delta within {timeout_ms} ms");
                break;
            }
        }
    }
    println!("watch '{name}' finished after {got} pushed deltas");
    Ok(())
}

fn print_answer(name: &str, answer: &SubAnswer, epoch: u64) {
    match answer {
        SubAnswer::Intervals(answer) => {
            println!(
                "answer of '{name}' @epoch {epoch}: {} qualifying",
                answer.len()
            );
            for e in answer.entries() {
                println!(
                    "    {:>6}: {:8.3} time units",
                    e.oid,
                    e.intervals.total_len()
                );
            }
        }
        SubAnswer::Rows(rows) => print_rows(name, rows, epoch),
    }
}

fn print_rows(name: &str, rows: &ProbRowSet, epoch: u64) {
    println!(
        "rows of '{name}' @epoch {epoch}: {} objects x {} probes",
        rows.len(),
        rows.samples()
    );
    for r in rows.rows() {
        println!(
            "    {:>6}: {:3} samples, mean P = {:.4}",
            r.oid,
            r.points.len(),
            rows.mean_probability(r.oid)
        );
    }
}

fn print_wire_output(out: WireOutput) {
    match out {
        WireOutput::Boolean(b) => println!("{b}"),
        WireOutput::Objects(rows) => print_output(QueryOutput::Objects(rows)),
        WireOutput::Registered(info) => print_subscription(&info),
        WireOutput::Unregistered(name) => println!("dropped subscription '{name}'"),
        WireOutput::Subscriptions(subs) => {
            println!("{} subscriptions", subs.len());
            for info in &subs {
                print_subscription(info);
            }
        }
        WireOutput::Answer { epoch, answer } => {
            let name = answer.query().to_string();
            print_answer(&name, &SubAnswer::Intervals(answer), epoch)
        }
        WireOutput::RowAnswer { epoch, rows } => {
            let name = rows.query().to_string();
            print_rows(&name, &rows, epoch)
        }
        WireOutput::Done => println!("ok"),
        // Replication-control responses never reach the REPL dispatch —
        // the `Follower` driver consumes them inside `client.follow`.
        WireOutput::FollowOk { epoch } => println!("following from epoch {epoch}"),
        WireOutput::Resync { epoch, objects } => {
            println!("resync snapshot @epoch {epoch}: {} objects", objects.len())
        }
        WireOutput::Metrics(snap) => print!("{}", snap.render_prometheus()),
        WireOutput::Trace { epoch, events } => print_trace(epoch, &events),
    }
}

/// Parsed arguments of `store metrics [prefix] [--watch <secs> [rounds]]`.
struct MetricsArgs {
    prefix: Option<String>,
    /// `--watch` interval in seconds and number of intervals to render.
    watch: Option<(f64, usize)>,
}

impl MetricsArgs {
    fn parse(args: &[&str]) -> Result<Self, String> {
        const USAGE: &str = "usage: store metrics [prefix] [--watch <secs> [rounds]]";
        let mut prefix = None;
        let mut watch = None;
        let mut i = 0;
        while i < args.len() {
            match args[i] {
                "--watch" => {
                    let secs: f64 = parse(args.get(i + 1).copied().ok_or(USAGE)?)?;
                    if secs <= 0.0 || !secs.is_finite() {
                        return Err(format!("--watch interval must be positive, got {secs}"));
                    }
                    let mut rounds = 1usize;
                    i += 2;
                    if let Some(n) = args.get(i) {
                        rounds = parse::<usize>(n)?.max(1);
                        i += 1;
                    }
                    watch = Some((secs, rounds));
                }
                p if prefix.is_none() && !p.starts_with("--") => {
                    prefix = Some(p.to_string());
                    i += 1;
                }
                other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
            }
        }
        Ok(MetricsArgs { prefix, watch })
    }
}

/// Renders what moved between two metrics snapshots as per-second rates:
/// counter deltas, changed gauges, and histogram sample arrival with the
/// latest p99 — the `--watch` view of a live pipeline.
fn print_metric_rates(before: &MetricsSnapshot, after: &MetricsSnapshot, secs: f64) {
    let lookup = |rows: &[(String, u64)], name: &str| -> u64 {
        rows.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    println!("-- deltas over {secs}s --");
    let mut moved = 0usize;
    for (name, v) in &after.counters {
        let d = v.saturating_sub(lookup(&before.counters, name));
        if d > 0 {
            println!("  {name} +{d} ({:.1}/s)", d as f64 / secs);
            moved += 1;
        }
    }
    for (name, v) in &after.gauges {
        if *v != lookup(&before.gauges, name) {
            println!("  {name} = {v}");
            moved += 1;
        }
    }
    for (name, h) in &after.histograms {
        let prev = before
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.count)
            .unwrap_or(0);
        let d = h.count.saturating_sub(prev);
        if d > 0 {
            println!(
                "  {name} +{d} samples ({:.1}/s), p99 {} ns",
                d as f64 / secs,
                h.p99()
            );
            moved += 1;
        }
    }
    if moved == 0 {
        println!("  (no movement)");
    }
}

/// Renders one epoch's trace events — the `TRACE EPOCH` reconstruction of
/// a single commit's walk through the pipeline.
fn print_trace(epoch: u64, events: &[TraceEvent]) {
    if events.is_empty() {
        println!(
            "trace of epoch {epoch}: no events retained \
             (tracing off, or the ring evicted this epoch; \
             try 'store telemetry trace on')"
        );
        return;
    }
    println!("trace of epoch {epoch}: {} events", events.len());
    for ev in events {
        let what = match ev.stage {
            TraceStage::Visit => format!(
                "share {} -> {}",
                ev.share,
                telemetry::ladder_decision_name(ev.detail)
            ),
            TraceStage::Round => format!("{} shares visited", ev.detail),
            TraceStage::FrameEncode => format!("{} bytes", ev.detail),
            _ if ev.share != 0 => format!("share {} detail {}", ev.share, ev.detail),
            _ => format!("detail {}", ev.detail),
        };
        println!("  {:>16}  {what}  ({} ns)", ev.stage.name(), ev.dur_ns);
    }
}

fn print_output(out: QueryOutput) {
    match out {
        QueryOutput::Boolean(b) => println!("{b}"),
        QueryOutput::Objects(rows) => {
            println!("{} objects", rows.len());
            let mut rows = rows;
            rows.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (oid, frac) in rows {
                println!("  {oid:>6}: {:.1}%", frac * 100.0);
            }
        }
        QueryOutput::Registered(info) => print_subscription(&info),
        QueryOutput::Unregistered(name) => println!("dropped subscription '{name}'"),
        QueryOutput::Subscriptions(subs) => {
            println!("{} subscriptions", subs.len());
            for info in &subs {
                print_subscription(info);
            }
        }
        QueryOutput::Metrics(snap) => print!("{}", snap.render_prometheus()),
        QueryOutput::Trace { epoch, events } => print_trace(epoch, &events),
    }
}

fn print_subscription(info: &SubscriptionInfo) {
    println!(
        "subscription '{}' @epoch {}: {} qualifying, {} pending deltas \
         ({} unvisited / {} skipped / {} patched / {} rebuilt, {} commits batched, \
         {} rows patched / {} perspectives skipped, \
         {} columns refined / {} coarse-only){}",
        info.name,
        info.last_epoch,
        info.entries,
        info.pending_deltas,
        info.stats.skipped_unvisited,
        info.stats.skipped,
        info.stats.patched,
        info.stats.rebuilt,
        info.stats.batched_commits,
        info.stats.rows_patched,
        info.stats.perspectives_skipped,
        info.stats.columns_refined,
        info.stats.columns_coarse_only,
        match &info.error {
            Some(e) => format!(" [error: {e}]"),
            None => String::new(),
        }
    );
    println!("  {}", info.statement);
}

fn print_deltas(name: &str, deltas: &[SubDelta]) {
    println!("'{name}': {} deltas", deltas.len());
    for d in deltas {
        print_delta(d);
    }
}

fn print_delta(d: &SubDelta) {
    match d {
        SubDelta::Intervals(d) => {
            println!(
                "  @epoch {}: {} upserts, {} removed",
                d.epoch,
                d.upserts.len(),
                d.removed.len()
            );
            for e in &d.upserts {
                println!(
                    "    + {:>6}: {:8.3} time units",
                    e.oid,
                    e.intervals.total_len()
                );
            }
            for oid in &d.removed {
                println!("    - {oid:>6}");
            }
        }
        SubDelta::Rows(d) => {
            println!(
                "  @epoch {}: {} row upserts, {} removed",
                d.epoch,
                d.upserts.len(),
                d.removed.len()
            );
            for r in &d.upserts {
                println!("    + {:>6}: {:3} samples", r.oid, r.points.len());
            }
            for oid in &d.removed {
                println!("    - {oid:>6}");
            }
        }
    }
}

fn parse_oid(name: &str) -> Result<Oid, String> {
    uncertain_nn::modb::ql::parse_object_name(name)
        .ok_or_else(|| format!("cannot parse object name '{name}'"))
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("cannot parse '{s}': {e}"))
}

fn parse_numbers<const N: usize>(rest: &str) -> Result<[f64; N], String> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.len() != N {
        return Err(format!("expected {N} arguments, got {}", parts.len()));
    }
    let mut out = [0.0; N];
    for (slot, p) in out.iter_mut().zip(&parts) {
        *slot = parse(p)?;
    }
    Ok(out)
}

fn resolve(server: &ModServer, name: &str) -> Result<Oid, String> {
    server.resolve(name).map_err(|e| e.to_string())
}

fn parse_query_window(server: &ModServer, rest: &str) -> Result<(Oid, TimeInterval), String> {
    let mut parts = rest.split_whitespace();
    let q = resolve(server, parts.next().ok_or("usage: <cmd> <TrQ> <tb> <te>")?)?;
    let tb: f64 = parse(parts.next().ok_or("missing tb")?)?;
    let te: f64 = parse(parts.next().ok_or("missing te")?)?;
    let w = TimeInterval::try_new(tb, te).ok_or("invalid window")?;
    Ok((q, w))
}
