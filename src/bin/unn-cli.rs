//! `unn-cli` — an interactive / scriptable shell over the MOD server.
//!
//! Reads commands from stdin (one per line), so it works both as a REPL
//! and in pipelines:
//!
//! ```text
//! printf 'gen 200 42 0.5\nnn Tr0 0 60\n' | cargo run --release --bin unn-cli
//! ```
//!
//! Commands:
//!
//! ```text
//! gen <n> <seed> <radius>     generate the §5 random-waypoint workload
//! load <path>                 load a MOD snapshot (persist format)
//! save <path>                 save the current MOD
//! list                        population summary
//! obj put <Tr> <x0> <y0> <x1> <y1> [r]  register a straight-line object
//! obj move <Tr> <dx> <dy>     shift an object (single-commit replace)
//! obj del <Tr>                unregister an object
//! nn <TrQ> <tb> <te>          crisp continuous NN timeline (§1)
//! snapshot <TrQ> <t>          instantaneous P^NN ranking at t (§2.2)
//! knn <TrQ> <k> <tb> <te>     continuous k-NN cells (§7 Top-k)
//! rnn <TrQ> <tb> <te>         probabilistic reverse-NN answer (§7)
//! ipac <TrQ> <tb> <te> <d>    render the IPAC-NN tree to depth d
//! stats <TrQ> <tb> <te>       envelope size and pruning statistics
//! policy <kind> [epochs]      set the prefilter (exhaustive|scan|grid|rtree)
//! cache                       engine-cache hit/miss/carry counters
//! store delta-stats           delta-epoch machinery counters
//! store rebuild-fraction <f>  set the delta-vs-rebuild threshold
//! store delta-capacity <n>    cap the delta log (forces rebuilds past it)
//! sql <statement>             execute a query-language statement
//! sub add <name> <SELECT …>   register a standing query
//! sub drop <name>             unregister a standing query
//! sub list                    list standing queries
//! sub poll <name>             drain a standing query's change feed
//! watch <name> [polls] [ms]   drain a standing query (default 1 poll; more
//!                             polls demo the feed cadence — the REPL is
//!                             single-threaded, so nothing mutates mid-watch)
//! help                        this text
//! quit                        exit
//! ```
//!
//! `sub …` is shorthand for the query-language verbs `REGISTER
//! CONTINUOUS … AS name` / `UNREGISTER name` / `SHOW SUBSCRIPTIONS`,
//! which `sql` accepts too. `gen` and `load` replace the whole server,
//! dropping registered subscriptions.

use std::io::{self, BufRead, Write};
use std::path::Path;
use uncertain_nn::core::answer::AnswerDelta;
use uncertain_nn::modb::{persist, ServerError, SubscriptionInfo};
use uncertain_nn::prelude::*;

const HELP: &str = "\
commands:
  gen <n> <seed> <radius>     generate the random-waypoint workload
  load <path>                 load a MOD snapshot
  save <path>                 save the current MOD
  list                        population summary
  obj put <Tr> <x0> <y0> <x1> <y1> [r]  register a straight-line object
  obj move <Tr> <dx> <dy>     shift an object (single-commit replace)
  obj del <Tr>                unregister an object
  nn <TrQ> <tb> <te>          crisp continuous NN timeline
  snapshot <TrQ> <t>          instantaneous P^NN ranking at t
  knn <TrQ> <k> <tb> <te>     continuous k-NN cells
  rnn <TrQ> <tb> <te>         probabilistic reverse-NN answer
  ipac <TrQ> <tb> <te> <d>    render the IPAC-NN tree to depth d
  stats <TrQ> <tb> <te>       envelope size and pruning statistics
  policy <kind> [epochs]      set the prefilter (exhaustive|scan|grid|rtree)
  cache                       engine-cache hit/miss/carry counters
  store delta-stats           delta-epoch machinery counters
  store rebuild-fraction <f>  set the delta-vs-rebuild threshold
  store delta-capacity <n>    cap the delta log (forces rebuilds past it)
  sql <statement>             execute a query-language statement
  sub add <name> <SELECT ...> register a standing query
  sub drop <name>             unregister a standing query
  sub list                    list standing queries
  sub poll <name>             drain a standing query's change feed
  watch <name> [polls] [ms]   drain a standing query (1 poll default)
  help                        this text
  quit                        exit";

fn main() {
    let stdin = io::stdin();
    let mut server = ModServer::new();
    // Prompts are opt-in (`UNN_CLI_PROMPT=1`) so piped scripts stay clean;
    // TTY detection would need a platform dependency.
    let interactive = std::env::var_os("UNN_CLI_PROMPT").is_some();
    if interactive {
        println!("unn-cli — continuous probabilistic NN queries over uncertain trajectories");
        println!("type 'help' for commands");
    }
    let mut out = io::stdout();
    loop {
        if interactive {
            print!("unn> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        if let Err(msg) = dispatch(&mut server, line) {
            println!("error: {msg}");
        }
    }
}

fn dispatch(server: &mut ModServer, line: &str) -> Result<(), String> {
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "help" => {
            println!("{HELP}");
            Ok(())
        }
        "gen" => {
            let [n, seed, radius]: [f64; 3] = parse_numbers(rest)?;
            let cfg = WorkloadConfig::with_objects(n as usize, seed as u64);
            let fleet = generate_uncertain(&cfg, radius);
            *server = ModServer::new();
            server.register_all(fleet).map_err(|e| e.to_string())?;
            println!(
                "generated {} objects (seed {}, r = {radius} mi, 40x40 mi^2, 60 min)",
                n as usize, seed as u64
            );
            Ok(())
        }
        "load" => {
            let trs = persist::load(Path::new(rest)).map_err(|e| e.to_string())?;
            let count = trs.len();
            *server = ModServer::new();
            server.register_all(trs).map_err(|e| e.to_string())?;
            println!("loaded {count} objects from {rest}");
            Ok(())
        }
        "save" => {
            persist::save(server.store(), Path::new(rest)).map_err(|e| e.to_string())?;
            println!("saved {} objects to {rest}", server.store().len());
            Ok(())
        }
        "list" => {
            let oids = server.store().oids();
            match (oids.first(), oids.last()) {
                (Some(a), Some(b)) => {
                    println!("{} objects, ids {a} .. {b}", oids.len())
                }
                _ => println!("empty MOD"),
            }
            Ok(())
        }
        "nn" => {
            let (q, w) = parse_query_window(server, rest)?;
            let ans = server.continuous_nn(q, w).map_err(|e| e.to_string())?;
            println!(
                "A_nn({q}): {} entries ({} candidates, {} kept, {} envelope pieces)",
                ans.sequence.len(),
                ans.stats.candidates,
                ans.stats.kept,
                ans.stats.envelope_pieces
            );
            for (oid, iv) in &ans.sequence {
                println!("  {oid:>6} during [{:8.3}, {:8.3}]", iv.start(), iv.end());
            }
            Ok(())
        }
        "snapshot" => {
            let mut parts = rest.split_whitespace();
            let q = resolve(server, parts.next().ok_or("usage: snapshot <TrQ> <t>")?)?;
            let t: f64 = parse(parts.next().ok_or("missing t")?)?;
            let ans = server.instantaneous_nn(q, t).map_err(|e| e.to_string())?;
            println!(
                "P^NN ranking at t = {t} ({} candidates, {} pruned by the R_min/R_max rule):",
                ans.examined, ans.pruned
            );
            for (oid, p) in &ans.rows {
                println!("  {oid:>6}: {p:.4}");
            }
            Ok(())
        }
        "knn" => {
            let mut parts = rest.split_whitespace();
            let q = resolve(
                server,
                parts.next().ok_or("usage: knn <TrQ> <k> <tb> <te>")?,
            )?;
            let k: usize = parse(parts.next().ok_or("missing k")?)?;
            let tb: f64 = parse(parts.next().ok_or("missing tb")?)?;
            let te: f64 = parse(parts.next().ok_or("missing te")?)?;
            let w = TimeInterval::try_new(tb, te).ok_or("invalid window")?;
            let ans = server.knn_answer(q, w, k).map_err(|e| e.to_string())?;
            println!("continuous {k}-NN of {q}: {} cells", ans.cells().len());
            for c in ans.cells() {
                let names: Vec<String> = c.ranked.iter().map(|o| o.to_string()).collect();
                println!(
                    "  [{:8.3}, {:8.3}]: {}",
                    c.span.start(),
                    c.span.end(),
                    names.join(" < ")
                );
            }
            Ok(())
        }
        "rnn" => {
            let (q, w) = parse_query_window(server, rest)?;
            let rev = server.reverse_engine(q, w).map_err(|e| e.to_string())?;
            let mut all = rev.rnn_all();
            all.sort_by(|a, b| b.1.total_len().total_cmp(&a.1.total_len()));
            println!("objects that may have {q} as their NN: {}", all.len());
            for (oid, iv) in &all {
                println!(
                    "  {oid:>6}: {:8.3} time units ({:5.1}%)",
                    iv.total_len(),
                    100.0 * iv.total_len() / w.len()
                );
            }
            Ok(())
        }
        "ipac" => {
            let mut parts = rest.split_whitespace();
            let q = resolve(
                server,
                parts.next().ok_or("usage: ipac <TrQ> <tb> <te> <depth>")?,
            )?;
            let tb: f64 = parse(parts.next().ok_or("missing tb")?)?;
            let te: f64 = parse(parts.next().ok_or("missing te")?)?;
            let d: usize = parse(parts.next().ok_or("missing depth")?)?;
            let w = TimeInterval::try_new(tb, te).ok_or("invalid window")?;
            let tree = server.ipac_tree(q, w, d).map_err(|e| e.to_string())?;
            print!("{}", tree.render());
            Ok(())
        }
        "stats" => {
            let (q, w) = parse_query_window(server, rest)?;
            let (engine, stats) = server.engine(q, w).map_err(|e| e.to_string())?;
            println!(
                "query {q}: {} candidates, {} prefiltered, {} kept ({:.1}% pruned), \
                 {} envelope pieces, preprocess {:?}{}",
                stats.candidates,
                stats.prefiltered,
                stats.kept,
                100.0 * (1.0 - stats.kept as f64 / stats.candidates.max(1) as f64),
                stats.envelope_pieces,
                stats.preprocess,
                if stats.cache_hit { " (cache hit)" } else { "" }
            );
            let seq = engine.continuous_nn_answer();
            println!("answer has {} time-parameterized entries", seq.len());
            Ok(())
        }
        "policy" => {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().ok_or("usage: policy <kind> [epochs]")?;
            let epochs: usize = match parts.next() {
                Some(e) => parse(e)?,
                None => 8,
            };
            let policy = match kind {
                "exhaustive" | "none" => PrefilterPolicy::Exhaustive,
                "scan" => PrefilterPolicy::Scan { epochs },
                "grid" => PrefilterPolicy::Grid { epochs },
                "rtree" => PrefilterPolicy::RTree { epochs },
                other => return Err(format!("unknown policy '{other}'")),
            };
            server.set_prefilter_policy(policy);
            println!("prefilter policy set to {policy}");
            Ok(())
        }
        "cache" => {
            let stats = server.cache_stats();
            println!(
                "engine cache: {} hits ({} carried across deltas), {} misses, {} entries (epoch {})",
                stats.hits,
                stats.carried,
                stats.misses,
                stats.entries,
                server.store().epoch()
            );
            Ok(())
        }
        "store" => {
            let mut parts = rest.split_whitespace();
            match parts
                .next()
                .ok_or("usage: store <delta-stats|rebuild-fraction <f>>")?
            {
                "delta-stats" => {
                    let d = server.store().delta_stats();
                    println!(
                        "store: epoch {}, {} shards, {} objects",
                        d.epoch,
                        d.shards,
                        server.store().len()
                    );
                    println!(
                        "delta log: {} records retained (floor epoch {}), {} ops pending vs cached snapshot",
                        d.log_len, d.log_floor, d.pending_ops
                    );
                    println!(
                        "snapshot refreshes: {} delta-applied, {} full rebuilds (rebuild fraction {:.2})",
                        d.snapshots_delta_applied, d.snapshots_rebuilt, d.rebuild_fraction
                    );
                    Ok(())
                }
                "rebuild-fraction" => {
                    let f: f64 = parse(parts.next().ok_or("usage: store rebuild-fraction <f>")?)?;
                    server.store().set_rebuild_fraction(f);
                    println!("rebuild fraction set to {f} (0 disables delta maintenance)");
                    Ok(())
                }
                "delta-capacity" => {
                    let n: usize = parse(parts.next().ok_or("usage: store delta-capacity <n>")?)?;
                    server.store().set_delta_log_capacity(n);
                    println!(
                        "delta log capped at {n} records (consumers falling off rebuild fully)"
                    );
                    Ok(())
                }
                other => Err(format!("unknown store subcommand '{other}'")),
            }
        }
        "obj" => {
            let mut parts = rest.split_whitespace();
            match parts.next().ok_or("usage: obj <put|move|del> ...")? {
                "put" => {
                    let name = parts
                        .next()
                        .ok_or("usage: obj put <Tr> <x0> <y0> <x1> <y1> [r]")?;
                    let nums: Vec<f64> = parts.map(parse).collect::<Result<_, _>>()?;
                    let (coords, r) = match nums.len() {
                        4 => (&nums[..4], 0.5),
                        5 => (&nums[..4], nums[4]),
                        n => return Err(format!("expected 4 or 5 numbers, got {n}")),
                    };
                    let oid = parse_oid(name)?;
                    let tr = Trajectory::from_triples(
                        oid,
                        &[(coords[0], coords[1], 0.0), (coords[2], coords[3], 60.0)],
                    )
                    .map_err(|e| e.to_string())?;
                    let utr =
                        UncertainTrajectory::with_uniform_pdf(tr, r).map_err(|e| e.to_string())?;
                    server.register(utr).map_err(|e| e.to_string())?;
                    println!("registered {oid} (r = {r} mi, window [0, 60])");
                    Ok(())
                }
                "move" => {
                    let name = parts.next().ok_or("usage: obj move <Tr> <dx> <dy>")?;
                    let dx: f64 = parse(parts.next().ok_or("missing dx")?)?;
                    let dy: f64 = parse(parts.next().ok_or("missing dy")?)?;
                    let oid = resolve(server, name)?;
                    let old = server.store().get(oid).ok_or("object vanished")?;
                    let shifted: Vec<(f64, f64, f64)> = old
                        .trajectory()
                        .samples()
                        .iter()
                        .map(|p| (p.position.x + dx, p.position.y + dy, p.time))
                        .collect();
                    let tr = Trajectory::from_triples(oid, &shifted).map_err(|e| e.to_string())?;
                    // Preserve the object's uncertainty model — replacing
                    // a Gaussian object with a uniform one would poison
                    // the MOD's shared-pdf invariant.
                    let utr = UncertainTrajectory::new(tr, old.radius(), old.pdf())
                        .map_err(|e| e.to_string())?;
                    // A single-commit replace: subscriptions absorb the
                    // correction in one maintenance round.
                    server.store().update(utr);
                    println!("moved {oid} by ({dx}, {dy})");
                    Ok(())
                }
                "del" => {
                    let name = parts.next().ok_or("usage: obj del <Tr>")?;
                    let oid = resolve(server, name)?;
                    server.store().remove(oid).map_err(|e| e.to_string())?;
                    println!("unregistered {oid}");
                    Ok(())
                }
                other => Err(format!("unknown obj subcommand '{other}'")),
            }
        }
        "sql" => {
            let out = server.execute(rest).map_err(|e| match e {
                // Parse errors point at the offending token.
                ServerError::Parse(pe) => pe.render(rest),
                other => other.to_string(),
            })?;
            print_output(out);
            Ok(())
        }
        "sub" => {
            let (sub_cmd, sub_rest) = match rest.split_once(char::is_whitespace) {
                Some((c, r)) => (c, r.trim()),
                None => (rest, ""),
            };
            match sub_cmd {
                "add" => {
                    let (name, stmt) = sub_rest
                        .split_once(char::is_whitespace)
                        .ok_or("usage: sub add <name> <SELECT ...>")?;
                    let info = server.subscribe(name, stmt.trim()).map_err(|e| match e {
                        ServerError::Parse(pe) => pe.render(stmt.trim()),
                        other => other.to_string(),
                    })?;
                    print_subscription(&info);
                    Ok(())
                }
                "drop" => {
                    server.unsubscribe(sub_rest).map_err(|e| e.to_string())?;
                    println!("dropped subscription '{sub_rest}'");
                    Ok(())
                }
                "list" => {
                    let subs = server.subscriptions();
                    println!("{} subscriptions", subs.len());
                    for info in &subs {
                        print_subscription(info);
                    }
                    Ok(())
                }
                "poll" => {
                    let deltas = server
                        .poll_subscription(sub_rest)
                        .map_err(|e| e.to_string())?;
                    print_deltas(sub_rest, &deltas);
                    Ok(())
                }
                other => Err(format!("unknown sub subcommand '{other}'")),
            }
        }
        "watch" => {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or("usage: watch <name> [polls] [ms]")?;
            // This REPL is single-threaded, so no mutation can land while
            // watch sleeps — the default is a single drain. Multi-poll
            // runs exercise the polling cadence of the change-feed API
            // (the shape a concurrent transport would drive).
            let polls: usize = match parts.next() {
                Some(p) => parse(p)?,
                None => 1,
            };
            let interval_ms: u64 = match parts.next() {
                Some(p) => parse(p)?,
                None => 200,
            };
            // Fail fast on unknown names before sleeping.
            server
                .poll_subscription(name)
                .map_err(|e| e.to_string())
                .map(|deltas| print_deltas(name, &deltas))?;
            for _ in 1..polls.max(1) {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                let deltas = server.poll_subscription(name).map_err(|e| e.to_string())?;
                print_deltas(name, &deltas);
            }
            println!("watch '{name}' finished after {} polls", polls.max(1));
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'help')")),
    }
}

fn print_output(out: QueryOutput) {
    match out {
        QueryOutput::Boolean(b) => println!("{b}"),
        QueryOutput::Objects(rows) => {
            println!("{} objects", rows.len());
            let mut rows = rows;
            rows.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (oid, frac) in rows {
                println!("  {oid:>6}: {:.1}%", frac * 100.0);
            }
        }
        QueryOutput::Registered(info) => print_subscription(&info),
        QueryOutput::Unregistered(name) => println!("dropped subscription '{name}'"),
        QueryOutput::Subscriptions(subs) => {
            println!("{} subscriptions", subs.len());
            for info in &subs {
                print_subscription(info);
            }
        }
    }
}

fn print_subscription(info: &SubscriptionInfo) {
    println!(
        "subscription '{}' @epoch {}: {} qualifying, {} pending deltas \
         ({} skipped / {} patched / {} rebuilt){}",
        info.name,
        info.last_epoch,
        info.entries,
        info.pending_deltas,
        info.stats.skipped,
        info.stats.patched,
        info.stats.rebuilt,
        match &info.error {
            Some(e) => format!(" [error: {e}]"),
            None => String::new(),
        }
    );
    println!("  {}", info.statement);
}

fn print_deltas(name: &str, deltas: &[AnswerDelta]) {
    println!("'{name}': {} deltas", deltas.len());
    for d in deltas {
        println!(
            "  @epoch {}: {} upserts, {} removed",
            d.epoch,
            d.upserts.len(),
            d.removed.len()
        );
        for e in &d.upserts {
            println!(
                "    + {:>6}: {:8.3} time units",
                e.oid,
                e.intervals.total_len()
            );
        }
        for oid in &d.removed {
            println!("    - {oid:>6}");
        }
    }
}

fn parse_oid(name: &str) -> Result<Oid, String> {
    uncertain_nn::modb::ql::parse_object_name(name)
        .ok_or_else(|| format!("cannot parse object name '{name}'"))
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("cannot parse '{s}': {e}"))
}

fn parse_numbers<const N: usize>(rest: &str) -> Result<[f64; N], String> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.len() != N {
        return Err(format!("expected {N} arguments, got {}", parts.len()));
    }
    let mut out = [0.0; N];
    for (slot, p) in out.iter_mut().zip(&parts) {
        *slot = parse(p)?;
    }
    Ok(out)
}

fn resolve(server: &ModServer, name: &str) -> Result<Oid, String> {
    server.resolve(name).map_err(|e| e.to_string())
}

fn parse_query_window(server: &ModServer, rest: &str) -> Result<(Oid, TimeInterval), String> {
    let mut parts = rest.split_whitespace();
    let q = resolve(server, parts.next().ok_or("usage: <cmd> <TrQ> <tb> <te>")?)?;
    let tb: f64 = parse(parts.next().ok_or("missing tb")?)?;
    let te: f64 = parse(parts.next().ok_or("missing te")?)?;
    let w = TimeInterval::try_new(tb, te).ok_or("invalid window")?;
    Ok((q, w))
}
