//! # uncertain-nn
//!
//! A Rust implementation of **"Continuous Probabilistic Nearest-Neighbor
//! Queries for Uncertain Trajectories"** (Goce Trajcevski, Roberto
//! Tamassia, Hui Ding, Peter Scheuermann, Isabel F. Cruz — EDBT 2009).
//!
//! The crate is an umbrella over the workspace:
//!
//! * [`geom`] — geometry & numerics (hyperbolas, Sturm root isolation, …);
//! * [`prob`] — rotationally symmetric pdfs, convolution, `P^WD`/`P^NN`;
//! * [`traj`] — trajectories, difference transforms, workload generator;
//! * [`core`] — lower envelopes, `4r` pruning, IPAC-NN tree, query
//!   variants (the paper's contribution);
//! * [`modb`] — the MOD engine: store, spatial indexes, query language,
//!   server.
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_nn::prelude::*;
//!
//! // A tiny MOD: the query object and two candidates.
//! let server = ModServer::new();
//! for (oid, pts) in [
//!     (0u64, vec![(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)]),
//!     (1, vec![(0.0, 1.0, 0.0), (10.0, 1.0, 10.0)]),
//!     (2, vec![(10.0, 9.0, 0.0), (0.0, 2.0, 10.0)]),
//! ] {
//!     let tr = Trajectory::from_triples(Oid(oid), &pts).unwrap();
//!     server
//!         .register(UncertainTrajectory::with_uniform_pdf(tr, 0.5).unwrap())
//!         .unwrap();
//! }
//!
//! // Continuous NN of Tr0 over [0, 10] (time-parameterized answer).
//! let answer = server
//!     .continuous_nn(Oid(0), TimeInterval::new(0.0, 10.0))
//!     .unwrap();
//! assert!(!answer.sequence.is_empty());
//!
//! // The probabilistic variants via the §4 query language.
//! let out = server
//!     .execute(
//!         "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] \
//!          AND PROB_NN(*, Tr0, TIME) > 0",
//!     )
//!     .unwrap();
//! assert!(matches!(out, QueryOutput::Objects(_)));
//! ```

pub use unn_core as core;
pub use unn_geom as geom;
pub use unn_modb as modb;
pub use unn_prob as prob;
pub use unn_traj as traj;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use unn_core::envelope::Envelope;
    pub use unn_core::hetero::{HeteroCandidate, HeteroEngine};
    pub use unn_core::ipac::{IpacConfig, IpacTree};
    pub use unn_core::query::QueryEngine;
    pub use unn_core::reverse::{all_pairs_nn, ReverseNnEngine};
    pub use unn_core::topk::{continuous_knn, probabilistic_topk_at, KnnAnswer};
    pub use unn_core::{
        build_ipac_tree, inside_band_intervals, lower_envelope, lower_envelope_naive,
        prune_by_band, threshold_nn_query,
    };
    pub use unn_geom::interval::{IntervalSet, TimeInterval};
    pub use unn_geom::point::{Point2, Vec2};
    pub use unn_modb::catalog::{Catalog, ObjectMeta};
    pub use unn_modb::server::{ModServer, QueryOutput};
    pub use unn_modb::store::ModStore;
    pub use unn_prob::pdf::{PdfKind, RadialPdf};
    pub use unn_traj::generator::{generate, generate_uncertain, WorkloadConfig};
    pub use unn_traj::trajectory::{Oid, Trajectory};
    pub use unn_traj::uncertain::UncertainTrajectory;
    pub use unn_traj::{difference_distance, difference_distances};
}
