//! # uncertain-nn
//!
//! A Rust implementation of **"Continuous Probabilistic Nearest-Neighbor
//! Queries for Uncertain Trajectories"** (Goce Trajcevski, Roberto
//! Tamassia, Hui Ding, Peter Scheuermann, Isabel F. Cruz — EDBT 2009).
//!
//! The crate is an umbrella over the workspace:
//!
//! * [`geom`] — geometry & numerics (hyperbolas, Sturm root isolation, …);
//! * [`prob`] — rotationally symmetric pdfs, convolution, `P^WD`/`P^NN`;
//! * [`traj`] — trajectories, difference transforms, workload generator;
//! * [`core`] — lower envelopes, `4r` pruning, IPAC-NN tree, query
//!   variants (the paper's contribution);
//! * [`modb`] — the MOD engine: store, snapshots, planner, engine cache,
//!   spatial indexes, query language, server.
//!
//! ## Architecture: the query pipeline
//!
//! Every [`modb::server::ModServer`] query — the §4 categories, the §7
//! reverse / heterogeneous / k-NN extensions, and the query language —
//! flows through one shared four-stage pipeline:
//!
//! 1. **Snapshot** — [`modb::store::ModStore::snapshot`] returns an
//!    `Arc`-shared, epoch-stamped [`modb::snapshot::QuerySnapshot`]. The
//!    same snapshot (and its lazily built STR R-tree / grid segment
//!    indexes) is reused until a mutation bumps the store epoch; no
//!    trajectory is cloned per query. After a mutation, the refresh is
//!    **incremental**: the sharded store logs every op in a
//!    [`modb::delta::DeltaLog`] and small deltas patch the previous
//!    snapshot and its indexes in `O(|delta| · log N)` instead of
//!    rebuilding (see the `unn-modb` crate docs for the delta-epoch
//!    lifecycle).
//! 2. **Plan / prefilter** — [`modb::plan::QueryPlanner`] validates the
//!    window, query object, and radius invariants once, then narrows the
//!    candidate population with a pluggable
//!    [`modb::plan::PrefilterPolicy`] (analytic epoch-box scan, grid, or
//!    STR R-tree — the access-method delegation §7 of the paper calls
//!    for). Every policy keeps a provable superset of the exact
//!    `4r`-band survivors, so answers are identical to the exhaustive
//!    path.
//! 3. **Envelope** — [`core::candidates::CandidateSet`] builds the
//!    difference-trajectory distance functions zero-copy (and in
//!    parallel) and feeds the `O(N log N)` lower-envelope / IPAC
//!    preprocessing of Claims 1–3.
//! 4. **Execute** — the engines answer the query variants; built engines
//!    are memoized in the epoch-keyed [`modb::cache::EngineCache`], so
//!    repeated queries against an unchanged MOD skip stages 2–3
//!    entirely. **Invalidation contract:** any store mutation
//!    (register/unregister/clear) bumps the epoch, so stale engines are
//!    never served blindly; a prefiltered forward engine may be
//!    **carried** across a mutation when the delta log proves the ops
//!    cannot touch its `4r` band, and everything else transparently
//!    rebuilds on the next query.
//!
//! ## Standing queries
//!
//! The request/response pipeline above answers one-shot statements; the
//! paper's queries are *continuous*, so the server also supports
//! registering them as **standing queries** (`REGISTER CONTINUOUS
//! <query> AS <name>` in the query language, `sub add` in the CLI).
//! A standing query maintains one of two diffable answers, chosen by
//! its statement shape:
//!
//! * forward `PROB_NN(…) > 0` (any quantifier, optional `RANK`) —
//!   a [`core::answer::AnswerSet`]: stable object ids with per-object
//!   qualification intervals;
//! * threshold `PROB_NN(…) > p` and reverse `PROB_RNN(…)` — a
//!   [`core::probrows::ProbRowSet`]: sampled `P^NN(t)` probability
//!   rows with per-sample provenance back to the difference functions
//!   that produced them.
//!
//! After every store commit the
//! [`modb::subscription::SubscriptionRegistry`] routes the epoch's delta
//! to the affected subscriptions only: provably untouched answers are
//! skipped via the same band-bound carry proof, the rest are patched by
//! incremental re-evaluation — difference functions, the lower
//! envelope, untouched qualification intervals, clean probability
//! columns, and (for reverse queries) whole untouched *perspectives*
//! are reused whenever the delta provably leaves them unchanged — and
//! truncated delta history forces a full re-plan. Changes stream to
//! consumers as [`core::answer::AnswerDelta`]s /
//! [`core::probrows::ProbRowDelta`]s through a per-subscription feed
//! (`sub poll` / `watch` in the CLI), with answers bit-identical to
//! fresh evaluation at every step.
//!
//! ## The network service layer
//!
//! [`modb::net`] fronts the whole engine with a std-only framed TCP
//! protocol — the serving shape of a real trajectory service (byte
//! layout in `docs/WIRE.md`). A [`modb::net::NetServer`] wraps the
//! [`modb::server::ModServer`] with one `poll(2)`-multiplexed event
//! loop owning every connection and a small worker pool executing
//! statements; the [`modb::net::NetClient`] behind `unn-cli connect
//! <addr>` executes statements and mutations remotely. The continuous
//! queries become genuinely *continuous* over the wire:
//!
//! ```text
//!  client A ──Insert/Update/Remove──▶ NetServer ──▶ ModStore commit
//!                                                        │   ⏱ commit_ns,
//!                                                        │     wal_append_ns
//!                                      SubscriptionRegistry::sync
//!                                      (one shared engine per distinct
//!                                       query; sharded: shared ops fetch,
//!                                       cached skip proofs, scoped-
//!                                       thread fan-out of patches)
//!                                                        │   ⏱ maintenance_round_ns,
//!                                                        │     ladder_*_total
//!                                               │ AnswerDelta │ ProbRowDelta
//!                                      encode once ─▶ one Arc<[u8]> frame
//!                                                        │   ⏱ frame_encode_ns
//!  clients B, C, … ◀─pushed Event/RowEvent── bounded outboxes ◀──┘
//!            (fold deltas; `lagged` ⇒ resync       ⏱ push_drain_lag_ns,
//!             from the full AnswerSet / ProbRowSet)  commit_to_push_ns
//! ```
//!
//! `REGISTER CONTINUOUS` over a connection attaches that connection's
//! bounded outbox to the subscription — `WATCH name` joins an existing
//! one — so answer deltas are **pushed** with commit latency instead of
//! polled: interval deltas as `Event` frames, probability-row deltas as
//! `RowEvent` frames, both IEEE-bit-exact. Same-query subscriptions
//! coalesce onto one maintenance engine, and each pushed delta is
//! serialized once and broadcast to every watcher as a shared
//! `Arc<[u8]>` — `crates/bench/benches/fanout.rs` measures the combined
//! effect at 1k loopback subscribers. Backpressure never drops a
//! delta: an overflowing outbox squashes its oldest same-subscription
//! events via [`modb::subscription::SubDelta::then`] (folds stay
//! bit-exact) and flags the stream `lagged` so the client can resync
//! from a full answer fetch. `tests/net_push.rs` and
//! `tests/net_fanout.rs` prove the end-to-end property over real
//! sockets: pushed deltas folded client-side equal a fresh exhaustive
//! evaluation bit-for-bit, induced lag included, and same-name watchers
//! receive byte-identical frames.
//!
//! ## Observability
//!
//! Every `⏱` in the diagram is a row in [`modb::telemetry`]'s lock-free
//! registry: atomic counters, gauges, and log₂-bucketed latency
//! histograms recorded at the hot boundaries (commit, WAL append/fsync,
//! snapshot patch vs rebuild, maintenance rounds and their ladder
//! decisions, kernel column refinement, frame encode, outbox drain lag,
//! follower replication lag). `SHOW METRICS [PREFIX p]` exposes the
//! merged snapshot through the query language and the wire protocol,
//! `unn-cli store metrics [--watch]` renders it as Prometheus-style
//! text or live rates, and `TRACE EPOCH e` replays one commit's path
//! through the pipeline from a bounded ring of trace events. Both
//! switches are runtime-togglable and, when off, cost one relaxed
//! atomic load per boundary; the full catalog, the bucket scheme, and
//! the measured overhead live in `docs/OBSERVABILITY.md`.
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_nn::prelude::*;
//!
//! // A tiny MOD: the query object and two candidates.
//! let server = ModServer::new();
//! for (oid, pts) in [
//!     (0u64, vec![(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)]),
//!     (1, vec![(0.0, 1.0, 0.0), (10.0, 1.0, 10.0)]),
//!     (2, vec![(10.0, 9.0, 0.0), (0.0, 2.0, 10.0)]),
//! ] {
//!     let tr = Trajectory::from_triples(Oid(oid), &pts).unwrap();
//!     server
//!         .register(UncertainTrajectory::with_uniform_pdf(tr, 0.5).unwrap())
//!         .unwrap();
//! }
//!
//! // Continuous NN of Tr0 over [0, 10] (time-parameterized answer).
//! let answer = server
//!     .continuous_nn(Oid(0), TimeInterval::new(0.0, 10.0))
//!     .unwrap();
//! assert!(!answer.sequence.is_empty());
//!
//! // The probabilistic variants via the §4 query language.
//! let out = server
//!     .execute(
//!         "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 10] \
//!          AND PROB_NN(*, Tr0, TIME) > 0",
//!     )
//!     .unwrap();
//! assert!(matches!(out, QueryOutput::Objects(_)));
//! ```

pub use unn_core as core;
pub use unn_geom as geom;
pub use unn_modb as modb;
pub use unn_prob as prob;
pub use unn_traj as traj;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use unn_core::answer::{AnswerDelta, AnswerEntry, AnswerSet};
    pub use unn_core::candidates::CandidateSet;
    pub use unn_core::envelope::Envelope;
    pub use unn_core::hetero::{HeteroCandidate, HeteroEngine};
    pub use unn_core::ipac::{IpacConfig, IpacTree};
    pub use unn_core::probrows::{ProbRow, ProbRowDelta, ProbRowSet, RowPerspective};
    pub use unn_core::query::QueryEngine;
    pub use unn_core::reverse::{all_pairs_nn, ReverseNnEngine};
    pub use unn_core::topk::{continuous_knn, probabilistic_topk_at, KnnAnswer};
    pub use unn_core::{
        build_ipac_tree, inside_band_intervals, lower_envelope, lower_envelope_naive,
        prune_by_band, threshold_nn_query,
    };
    pub use unn_geom::interval::{IntervalSet, TimeInterval};
    pub use unn_geom::point::{Point2, Vec2};
    pub use unn_modb::cache::CacheStats;
    pub use unn_modb::catalog::{Catalog, ObjectMeta};
    pub use unn_modb::plan::{PrefilterPolicy, QueryPlanner};
    pub use unn_modb::server::{ModServer, QueryOutput};
    pub use unn_modb::snapshot::QuerySnapshot;
    pub use unn_modb::store::ModStore;
    pub use unn_modb::subscription::{SubAnswer, SubDelta, SubscriptionInfo, SubscriptionRegistry};
    pub use unn_prob::pdf::{PdfKind, RadialPdf};
    pub use unn_traj::generator::{generate, generate_uncertain, WorkloadConfig};
    pub use unn_traj::trajectory::{Oid, Trajectory};
    pub use unn_traj::uncertain::UncertainTrajectory;
    pub use unn_traj::{difference_distance, difference_distances};
}
