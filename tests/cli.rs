//! End-to-end tests of the `unn-cli` binary: commands are piped through
//! stdin and the output is checked, including a save/load round trip.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(script: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_unn-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("cli exits");
    assert!(out.status.success(), "cli exited with {:?}", out.status);
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

#[test]
fn generate_and_query_pipeline() {
    let (stdout, stderr) = run_cli(
        "gen 60 42 0.5\n\
         list\n\
         nn Tr0 0 60\n\
         stats Tr0 0 60\n\
         sql SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("generated 60 objects"), "{stdout}");
    assert!(stdout.contains("60 objects, ids Tr0 .. Tr59"), "{stdout}");
    assert!(stdout.contains("A_nn(Tr0):"), "{stdout}");
    assert!(stdout.contains("candidates"), "{stdout}");
    assert!(stdout.contains("objects"), "{stdout}");
}

#[test]
fn knn_rnn_snapshot_and_ipac_commands() {
    let (stdout, _) = run_cli(
        "gen 40 7 0.5\n\
         knn Tr0 2 0 30\n\
         rnn Tr0 0 30\n\
         snapshot Tr0 15\n\
         ipac Tr0 0 30 2\n\
         quit\n",
    );
    assert!(stdout.contains("continuous 2-NN of Tr0"), "{stdout}");
    assert!(
        stdout.contains("objects that may have Tr0 as their NN"),
        "{stdout}"
    );
    assert!(stdout.contains("P^NN ranking at t = 15"), "{stdout}");
    assert!(
        stdout.contains("pruned by the R_min/R_max rule"),
        "{stdout}"
    );
    // The IPAC render names the query and window.
    assert!(stdout.contains("Tr0"), "{stdout}");
}

#[test]
fn save_load_round_trip() {
    let dir = std::env::temp_dir().join(format!("unn-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("mod.unn");
    let script = format!(
        "gen 25 3 0.4\nsave {p}\ngen 5 1 0.2\nload {p}\nlist\nquit\n",
        p = path.display()
    );
    let (stdout, _) = run_cli(&script);
    assert!(stdout.contains("saved 25 objects"), "{stdout}");
    assert!(stdout.contains("loaded 25 objects"), "{stdout}");
    assert!(stdout.contains("25 objects, ids Tr0 .. Tr24"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_reported_not_fatal() {
    let (stdout, _) = run_cli(
        "bogus command\n\
         nn Tr0 0 60\n\
         gen 10 1 0.5\n\
         nn Tr99 0 60\n\
         sql SELECT nonsense\n\
         list\n\
         quit\n",
    );
    assert!(stdout.contains("unknown command 'bogus'"), "{stdout}");
    // nn before any MOD exists
    assert!(stdout.contains("error:"), "{stdout}");
    // unknown object and parse errors are reported…
    assert!(
        stdout.contains("unknown object") || stdout.contains("Tr99"),
        "{stdout}"
    );
    // …and the session keeps going.
    assert!(stdout.contains("10 objects, ids Tr0 .. Tr9"), "{stdout}");
}

#[test]
fn policy_and_cache_commands_drive_the_pipeline() {
    let (stdout, stderr) = run_cli(
        "gen 50 11 0.5\n\
         policy rtree 6\n\
         stats Tr0 0 60\n\
         stats Tr0 0 60\n\
         cache\n\
         policy bogus\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(
        stdout.contains("prefilter policy set to rtree(6)"),
        "{stdout}"
    );
    // The second identical query must come from the engine cache.
    assert!(stdout.contains("(cache hit)"), "{stdout}");
    assert!(
        stdout.contains("engine cache: 1 hits (0 carried across deltas), 1 misses"),
        "{stdout}"
    );
    assert!(stdout.contains("unknown policy 'bogus'"), "{stdout}");
}

#[test]
fn subscription_workflow_streams_answer_deltas() {
    let (stdout, stderr) = run_cli(
        "obj put Tr0 0 0 30 0\n\
         obj put Tr1 0 1 30 1\n\
         obj put Tr2 0 2 30 2\n\
         obj put Tr3 0 500 30 500\n\
         sub add near0 SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0\n\
         sub list\n\
         obj put Tr7 0 1.5 30 1.5\n\
         sub poll near0\n\
         obj move Tr7 0 100000\n\
         sub poll near0\n\
         obj del Tr7\n\
         watch near0 2 10\n\
         sql SHOW SUBSCRIPTIONS\n\
         sub drop near0\n\
         sub list\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("registered Tr0"), "{stdout}");
    assert!(stdout.contains("subscription 'near0'"), "{stdout}");
    assert!(stdout.contains("1 subscriptions"), "{stdout}");
    // The in-band newcomer streamed one upsert…
    assert!(stdout.contains("+ Tr7:"), "{stdout}");
    // …and moving it far away streamed its removal.
    assert!(stdout.contains("- Tr7"), "{stdout}");
    assert!(stdout.contains("moved Tr7 by (0, 100000)"), "{stdout}");
    assert!(
        stdout.contains("watch 'near0' finished after 2 polls"),
        "{stdout}"
    );
    assert!(stdout.contains("dropped subscription 'near0'"), "{stdout}");
    assert!(stdout.contains("0 subscriptions"), "{stdout}");
}

#[test]
fn sql_parse_errors_point_at_the_offending_token() {
    let (stdout, _) = run_cli(
        "gen 5 1 0.5\n\
         sql SELECT , FROM MOD\n\
         sub poll nope\n\
         store delta-capacity 4\n\
         quit\n",
    );
    assert!(
        stdout.contains("parse error at line 1, column 8"),
        "{stdout}"
    );
    // The caret line points at the bad token.
    assert!(stdout.contains("SELECT , FROM MOD"), "{stdout}");
    assert!(stdout.contains("       ^"), "{stdout}");
    assert!(stdout.contains("no subscription named 'nope'"), "{stdout}");
    assert!(stdout.contains("delta log capped at 4"), "{stdout}");
}

#[test]
fn wal_open_journals_and_a_second_session_recovers() {
    let dir = std::env::temp_dir().join(format!("unn-cli-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Session 1: journal a few commits, checkpoint, keep appending.
    let script = format!(
        "store wal-status\n\
         store wal-open {d} every-2\n\
         obj put Tr0 0 0 30 0\n\
         obj put Tr1 0 1 30 1\n\
         obj put Tr2 0 2 30 2\n\
         store checkpoint\n\
         obj del Tr1\n\
         store wal-status\n\
         quit\n",
        d = dir.display()
    );
    let (stdout, stderr) = run_cli(&script);
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("no WAL attached"), "{stdout}");
    assert!(
        stdout.contains("recovered") && stdout.contains("-> epoch 0"),
        "{stdout}"
    );
    assert!(stdout.contains("checkpoint written at epoch 3"), "{stdout}");
    assert!(stdout.contains("fsync every-2"), "{stdout}");
    assert!(
        stdout.contains("last epoch 4, checkpoint epoch 3"),
        "{stdout}"
    );
    assert!(stdout.contains("4 appended"), "{stdout}");
    assert!(stdout.contains("0 io errors"), "{stdout}");

    // Session 2: the same directory recovers snapshot + replayed tail.
    let script = format!("store wal-open {d}\nlist\nquit\n", d = dir.display());
    let (stdout, stderr) = run_cli(&script);
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(
        stdout.contains("checkpoint epoch 3 (3 objects) + 1 wal records"),
        "{stdout}"
    );
    assert!(stdout.contains("-> epoch 4"), "{stdout}");
    assert!(stdout.contains("2 objects, ids Tr0 .. Tr2"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_server_renders_metrics_over_loopback() {
    use std::io::{BufRead, BufReader};

    let dump = std::env::temp_dir().join(format!("unn-cli-metrics-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&dump);

    // A live server on an ephemeral port; it prints the bound address
    // and stops when its stdin closes.
    let mut server = Command::new(env!("CARGO_BIN_EXE_unn-cli"))
        .args([
            "serve",
            "127.0.0.1:0",
            "--gen",
            "20",
            "7",
            "0.5",
            "--metrics-dump",
        ])
        .arg(&dump)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut server_out = BufReader::new(server.stdout.take().expect("stdout piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            server_out.read_line(&mut line).expect("server output"),
            0,
            "server exited before announcing its address"
        );
        if let Some(rest) = line.strip_prefix("serving on ") {
            break rest.split_whitespace().next().expect("addr").to_string();
        }
    };

    // A connected session: mutate (so the commit histogram has
    // samples), then render the metrics over the wire.
    let mut client = Command::new(env!("CARGO_BIN_EXE_unn-cli"))
        .args(["connect", &addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client spawns");
    client
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(
            b"obj put Tr100 0 1.5 30 1.5\n\
              store metrics\n\
              store metrics commit\n\
              sql SHOW METRICS PREFIX store_commits\n\
              quit\n",
        )
        .expect("script written");
    let out = client.wait_with_output().expect("client exits");
    assert!(out.status.success(), "client exited with {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.is_empty(), "stderr: {stderr}");
    // Prometheus-style rows from the live registry…
    assert!(stdout.contains("# TYPE unn_commit_ns summary"), "{stdout}");
    assert!(stdout.contains("unn_commit_ns_count"), "{stdout}");
    assert!(stdout.contains("unn_store_commits_total"), "{stdout}");
    // …and the prefix filter narrows the listing.
    assert!(stdout.contains("unn_commit_to_push_ns_sum"), "{stdout}");

    // Closing stdin stops the server and writes the shutdown dump.
    drop(server.stdin.take());
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exited with {status:?}");
    let json = std::fs::read_to_string(&dump).expect("metrics dump written");
    assert!(json.contains("\"counters\""), "{json}");
    assert!(json.contains("store_commits_total"), "{json}");
    let _ = std::fs::remove_file(&dump);
}

#[test]
fn store_delta_stats_track_the_delta_epoch_machinery() {
    let (stdout, stderr) = run_cli(
        "gen 30 5 0.5\n\
         stats Tr0 0 60\n\
         store delta-stats\n\
         store rebuild-fraction 0\n\
         store delta-stats\n\
         store bogus\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("16 shards, 30 objects"), "{stdout}");
    assert!(stdout.contains("delta log:"), "{stdout}");
    assert!(stdout.contains("snapshot refreshes:"), "{stdout}");
    assert!(stdout.contains("rebuild fraction set to 0"), "{stdout}");
    assert!(stdout.contains("(rebuild fraction 0.00)"), "{stdout}");
    assert!(
        stdout.contains("unknown store subcommand 'bogus'"),
        "{stdout}"
    );
}
