//! Concurrency tests of the sharded store: writer threads hammer
//! inserts/removes across shards while reader threads continuously take
//! snapshots and query the patched indexes. Asserts no lost updates, a
//! strictly monotone epoch per observer, and internally consistent
//! snapshots throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use uncertain_nn::modb::index::{query_box, SegmentIndex};
use uncertain_nn::prelude::*;

const WRITERS: u64 = 8;
const PER_WRITER: u64 = 40;

fn tr(oid: u64) -> UncertainTrajectory {
    // Position derived from the id so every object is distinguishable.
    let x = (oid % 37) as f64;
    let y = (oid % 53) as f64;
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(x, y, 0.0), (x + 5.0, y + 2.0, 10.0)]).unwrap(),
        0.5,
    )
    .unwrap()
}

#[test]
fn sharded_writers_and_snapshotting_readers() {
    let store = Arc::new(ModStore::new());
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writers: each owns a disjoint id range; inserts everything,
        // then removes the odd half (so the expected survivor set is
        // exact). Ids are dense, so Fibonacci shard hashing spreads each
        // writer's ops across many shards concurrently.
        for w in 0..WRITERS {
            let store = &store;
            scope.spawn(move || {
                let base = w * 1_000;
                for i in 0..PER_WRITER {
                    store.insert(tr(base + i)).unwrap();
                }
                for i in (1..PER_WRITER).step_by(2) {
                    store.remove(Oid(base + i)).unwrap();
                }
            });
        }
        // Readers: snapshot + query until the writers finish; epochs must
        // never go backwards and every snapshot must be sorted and
        // index-consistent.
        for _ in 0..4 {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let everything = query_box(-1e3, -1e3, 1e3, 1e3, 0.0, 1e3);
                while !done.load(Ordering::Acquire) {
                    let snap = store.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    assert!(
                        snap.objects().windows(2).all(|p| p[0].oid() < p[1].oid()),
                        "snapshot not sorted"
                    );
                    // The (possibly delta-patched) indexes agree with the
                    // object list they were derived from.
                    let hits = snap.grid().query_bbox(&everything);
                    assert_eq!(hits.len(), snap.len(), "grid lost objects");
                    assert_eq!(
                        snap.rtree().query_bbox(&everything),
                        hits,
                        "rtree and grid diverged"
                    );
                }
            });
        }
        // Scope drops writer handles first; flag readers once writers are
        // done by spawning a watcher after the writers' join.
        let store_ref = &store;
        let done_ref = &done;
        scope.spawn(move || {
            // Busy-wait until the exact final population is reached, then
            // stop the readers. (Writers only ever converge there.)
            let expected = WRITERS * (PER_WRITER - PER_WRITER / 2);
            loop {
                if store_ref.len() as u64 == expected
                    && store_ref.epoch() >= WRITERS * (PER_WRITER + PER_WRITER / 2)
                {
                    break;
                }
                std::thread::yield_now();
            }
            done_ref.store(true, Ordering::Release);
        });
    });

    // No lost updates: exactly the even ids of every writer survive.
    let survivors = store.oids();
    let expected_len = (WRITERS * (PER_WRITER - PER_WRITER / 2)) as usize;
    assert_eq!(survivors.len(), expected_len);
    for w in 0..WRITERS {
        let base = w * 1_000;
        for i in (0..PER_WRITER).step_by(2) {
            assert!(
                store.contains(Oid(base + i)),
                "lost update: {} missing",
                base + i
            );
        }
        for i in (1..PER_WRITER).step_by(2) {
            assert!(!store.contains(Oid(base + i)), "zombie: {}", base + i);
        }
    }
    // Every mutation bumped the epoch exactly once: inserts + removes.
    let total_mutations = WRITERS * (PER_WRITER + PER_WRITER / 2);
    assert_eq!(store.epoch(), total_mutations);
    // The final snapshot reflects the final population.
    let snap = store.snapshot();
    assert_eq!(snap.len(), expected_len);
    assert_eq!(snap.epoch(), store.epoch());
}

#[test]
fn concurrent_queries_during_ingest_stay_consistent() {
    let server = Arc::new(ModServer::new());
    // A stable core population the query threads work against.
    server
        .register_all(generate_uncertain(
            &WorkloadConfig::with_objects(30, 19),
            0.5,
        ))
        .unwrap();
    let w = TimeInterval::new(0.0, 60.0);
    let baseline = server.continuous_nn(Oid(0), w).unwrap().sequence;
    std::thread::scope(|scope| {
        // Churn thread: far-away objects stream in and out — provably
        // outside every core engine's band, so answers must not change.
        let server_ref = &server;
        scope.spawn(move || {
            for k in 0..60u64 {
                let oid = 10_000 + k;
                let y = 5_000.0 + k as f64;
                server_ref
                    .register(
                        UncertainTrajectory::with_uniform_pdf(
                            Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (40.0, y, 60.0)])
                                .unwrap(),
                            0.5,
                        )
                        .unwrap(),
                    )
                    .unwrap();
                if k % 2 == 0 {
                    server_ref.store().remove(Oid(oid)).unwrap();
                }
            }
        });
        for _ in 0..3 {
            let server_ref = &server;
            let baseline = &baseline;
            scope.spawn(move || {
                for _ in 0..20 {
                    let ans = server_ref.continuous_nn(Oid(0), w).unwrap();
                    assert_eq!(&ans.sequence, baseline, "answer changed under churn");
                }
            });
        }
    });
    // The carry fast-path should have served at least some of those
    // queries without a rebuild (every churn object is out of reach).
    let stats = server.cache_stats();
    assert!(stats.hits > 0, "{stats:?}");
}
