//! End-to-end and property tests of the standing-query subsystem: the
//! QL registration surface, the per-subscription change feed, and the
//! core acceptance property — `answer ⊕ delta` folded over any mutation
//! interleaving equals a fresh exhaustive evaluation of the final
//! contents, bit-identically, for every prefilter backend.

use proptest::prelude::*;
use uncertain_nn::core::answer::AnswerSet;
use uncertain_nn::core::probrows::ProbRowSet;
use uncertain_nn::modb::subscription::SubAnswer;
use uncertain_nn::modb::{PrefilterPolicy, QueryPlanner, SubscriptionInfo};
use uncertain_nn::prelude::*;
use unn_traj::uncertain::common_pdf_kind;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;

fn make_tr(oid: u64, wps: &[(f64, f64)]) -> UncertainTrajectory {
    let n = wps.len().max(2);
    let step = (WINDOW.1 - WINDOW.0) / (n - 1) as f64;
    let triples: Vec<(f64, f64, f64)> = wps
        .iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(k, (x, y))| (*x, *y, WINDOW.0 + k as f64 * step))
        .collect();
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &triples).unwrap(),
        RADIUS,
    )
    .unwrap()
}

fn straight(oid: u64, y: f64) -> UncertainTrajectory {
    make_tr(oid, &[(0.0, y), (30.0, y)])
}

/// Fresh exhaustive evaluation of a standing query against the server's
/// current contents — the ground truth every maintained answer must
/// equal bit-for-bit.
fn fresh_answer(server: &ModServer, query: Oid, rank: Option<usize>) -> AnswerSet {
    let engine = QueryPlanner::new(PrefilterPolicy::Exhaustive)
        .plan(
            server.store().snapshot(),
            query,
            TimeInterval::new(WINDOW.0, WINDOW.1),
        )
        .expect("plans")
        .build_engine()
        .expect("builds");
    match rank {
        Some(k) => engine.ranked_answer_set(k),
        None => engine.answer_set(),
    }
}

/// Fresh exhaustive probability-row evaluation (forward threshold or
/// reverse) at the registry's current sampling density — the ground
/// truth of the row subscriptions.
fn fresh_rows(server: &ModServer, query: Oid, reverse: bool) -> ProbRowSet {
    let samples = server.subscription_registry().row_samples();
    let snapshot = server.store().snapshot();
    let kind = common_pdf_kind(&snapshot)
        .expect("shared pdf")
        .expect("populated");
    let pdf = kind.convolve_with(&kind);
    let plan = QueryPlanner::new(PrefilterPolicy::Exhaustive)
        .plan(snapshot, query, TimeInterval::new(WINDOW.0, WINDOW.1))
        .expect("plans");
    if reverse {
        plan.build_reverse_engine()
            .expect("builds")
            .prob_row_set(pdf.as_ref(), samples)
    } else {
        plan.build_engine()
            .expect("builds")
            .prob_row_set(pdf.as_ref(), samples)
    }
}

/// The maintained answer, expected to be intervals.
fn maintained_intervals(server: &ModServer, name: &str) -> AnswerSet {
    match server.subscription_answer(name).unwrap() {
        SubAnswer::Intervals(a) => a,
        other => panic!("expected intervals, got {other:?}"),
    }
}

/// The maintained answer, expected to be rows.
fn maintained_rows(server: &ModServer, name: &str) -> ProbRowSet {
    match server.subscription_answer(name).unwrap() {
        SubAnswer::Rows(r) => r,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn register_unregister_show_via_the_query_language() {
    let server = ModServer::new();
    server
        .register_all((0..6).map(|k| straight(k, k as f64)))
        .unwrap();
    let reg = server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr0, TIME) > 0 AS near0",
        )
        .unwrap();
    let info = match reg {
        QueryOutput::Registered(info) => info,
        other => panic!("expected Registered, got {other:?}"),
    };
    assert_eq!(info.name, "near0");
    assert!(info.entries >= 1);
    // SHOW lists it.
    match server.execute("SHOW SUBSCRIPTIONS").unwrap() {
        QueryOutput::Subscriptions(subs) => {
            assert_eq!(subs.len(), 1);
            assert_eq!(subs[0].name, "near0");
            assert!(subs[0].statement.contains("PROB_NN"));
        }
        other => panic!("expected Subscriptions, got {other:?}"),
    }
    // Duplicate name refused.
    assert!(server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr1, TIME) > 0 AS near0",
        )
        .is_err());
    // RNN and threshold statements register through the row ladder now.
    assert!(matches!(
        server.execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_RNN(*, Tr0, TIME) > 0 AS rev",
        ),
        Ok(QueryOutput::Registered(_))
    ));
    assert!(matches!(
        server.execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr0, TIME) > 0.5 AS thresh",
        ),
        Ok(QueryOutput::Registered(_))
    ));
    // The one remaining unsupported shape: RANK + positive threshold.
    let err = server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr0, TIME, RANK 2) > 0.5 AS rankthresh",
        )
        .unwrap_err();
    assert!(err.to_string().contains("RANK"), "{err}");
    // A typo'd UNREGISTER hints at the nearest registered name…
    let err = server.execute("UNREGISTER naer0").unwrap_err();
    assert!(
        err.to_string().contains("did you mean 'near0'"),
        "nearest-name hint expected: {err}"
    );
    // …the real name drops, and a second drop errors (no similar name
    // remains, so no hint).
    assert_eq!(
        server.execute("UNREGISTER near0").unwrap(),
        QueryOutput::Unregistered("near0".into())
    );
    let err = server.execute("UNREGISTER near0").unwrap_err();
    assert!(err.to_string().contains("no subscription named"), "{err}");
    server.execute("UNREGISTER rev").unwrap();
    server.execute("UNREGISTER thresh").unwrap();
    match server.execute("SHOW SUBSCRIPTIONS").unwrap() {
        QueryOutput::Subscriptions(subs) => assert!(subs.is_empty()),
        other => panic!("expected Subscriptions, got {other:?}"),
    }
}

#[test]
fn change_feed_streams_only_the_changed_objects() {
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 2.0),
            straight(3, 500.0),
        ])
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    assert_eq!(server.poll_subscription("near0").unwrap(), vec![]);
    // A newcomer inside the band but above the envelope (the NN is still
    // Tr1) shows up as exactly one upsert; the unchanged qualifiers do
    // not reappear in the delta.
    server.register(straight(7, 1.5)).unwrap();
    let deltas = server.poll_subscription("near0").unwrap();
    assert_eq!(deltas.len(), 1);
    let d = deltas[0].as_intervals().unwrap();
    assert_eq!(d.upserts.len(), 1, "{deltas:?}");
    assert_eq!(d.upserts[0].oid, Oid(7));
    assert!(d.removed.is_empty());
    // Far churn produces no deltas at all.
    server.register(straight(90, 44_000.0)).unwrap();
    server.store().remove(Oid(90)).unwrap();
    assert_eq!(server.poll_subscription("near0").unwrap(), vec![]);
    let info = &server.subscriptions()[0];
    // Far churn is discarded either way: by the cached proof (skipped)
    // or, cheaper still, by the registry's guard index before the share
    // is touched at all (skipped_unvisited).
    assert!(
        info.stats.skipped + info.stats.skipped_unvisited >= 2,
        "{info:?}"
    );
    // Removing the newcomer streams its removal.
    server.store().remove(Oid(7)).unwrap();
    let deltas = server.poll_subscription("near0").unwrap();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].as_intervals().unwrap().removed, vec![Oid(7)]);
    // Unknown names error.
    assert!(server.poll_subscription("bogus").is_err());
}

#[test]
fn single_commit_update_is_one_maintenance_round() {
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 3.0),
            straight(3, 9.0),
        ])
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    // One GPS correction through the single-commit update op.
    server.store().update(straight(1, 1.5));
    let info = &server.subscriptions()[0];
    assert_eq!(
        info.stats.skipped + info.stats.patched + info.stats.rebuilt,
        1,
        "one commit must be one maintenance round: {info:?}"
    );
    assert_eq!(
        maintained_intervals(&server, "near0"),
        fresh_answer(&server, Oid(0), None)
    );
}

#[test]
fn truncated_delta_log_forces_a_full_rebuild() {
    let server = ModServer::new();
    server
        .register_all((0..8).map(|k| straight(k, k as f64)))
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    // Shrink the log so one bulk commit blows past it: the registry sees
    // `ops_since == None` and must re-plan from scratch.
    server.store().set_delta_log_capacity(2);
    server
        .register_all((100..108).map(|k| straight(k, 0.25 + (k - 100) as f64 * 0.1)))
        .unwrap();
    let info = &server.subscriptions()[0];
    assert!(info.stats.rebuilt >= 1, "truncation must rebuild: {info:?}");
    assert!(info.error.is_none(), "{info:?}");
    assert_eq!(
        maintained_intervals(&server, "near0"),
        fresh_answer(&server, Oid(0), None),
        "the rebuild must land on the fresh answer"
    );
    // The newcomers actually qualified (the rebuild saw them).
    assert!(maintained_intervals(&server, "near0")
        .intervals_of(Oid(100))
        .is_some());
}

#[test]
fn row_subscription_counters_are_observable() {
    let server = ModServer::new();
    server.subscription_registry().set_row_samples(32);
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 3.0),
            straight(3, 500.0),
        ])
        .unwrap();
    server
        .subscribe(
            "hot",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0.3",
        )
        .unwrap();
    server
        .subscribe(
            "rev",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_RNN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    // Far churn: the threshold sub skips outright; the reverse sub
    // carries every untouched perspective.
    server.register(straight(90, 44_000.0)).unwrap();
    server.store().remove(Oid(90)).unwrap();
    // Near churn: both patch, recomputing rows incrementally.
    server.register(straight(7, 1.5)).unwrap();
    let by_name = |name: &str| {
        server
            .subscriptions()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap()
    };
    let hot = by_name("hot");
    assert!(
        hot.stats.skipped + hot.stats.skipped_unvisited >= 2,
        "{hot:?}"
    );
    assert_eq!(hot.stats.patched, 1, "{hot:?}");
    assert!(hot.stats.rows_patched >= 1, "{hot:?}");
    let rev = by_name("rev");
    assert!(rev.stats.perspectives_skipped >= 4, "{rev:?}");
    assert!(rev.stats.rows_patched >= 1, "{rev:?}");
    assert!(rev.error.is_none(), "{rev:?}");
    // Both stayed bit-identical to fresh exhaustive evaluations.
    assert_eq!(
        maintained_rows(&server, "hot"),
        fresh_rows(&server, Oid(0), false)
    );
    assert_eq!(
        maintained_rows(&server, "rev"),
        fresh_rows(&server, Oid(0), true)
    );
}

#[test]
fn clearing_the_store_empties_every_subscription() {
    let server = ModServer::new();
    server
        .register_all((0..5).map(|k| straight(k, k as f64)))
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    server.store().clear();
    let info = &server.subscriptions()[0];
    assert!(info.error.is_some(), "{info:?}");
    assert!(server.subscription_answer("near0").unwrap().is_empty());
    let deltas = server.poll_subscription("near0").unwrap();
    assert!(
        deltas
            .iter()
            .any(|d| !d.as_intervals().unwrap().removed.is_empty()),
        "the emptying must stream removals: {deltas:?}"
    );
}

/// One scripted mutation: (kind, target selector, waypoints for inserts).
type OpSpec = (usize, usize, Vec<(f64, f64)>);

fn arb_waypoints() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 4)
}

fn arb_script() -> impl Strategy<Value = (Vec<Vec<(f64, f64)>>, Vec<OpSpec>)> {
    (
        prop::collection::vec(arb_waypoints(), 8..=14),
        prop::collection::vec((0usize..4, 0usize..64, arb_waypoints()), 4..=10),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: across random interleavings of insert /
    /// remove / single-commit update and every prefilter backend, the
    /// maintained answer of each standing query (plain and ranked)
    /// equals a fresh exhaustive evaluation bit-for-bit, and folding the
    /// emitted deltas over the initial answer reproduces it.
    #[test]
    fn folded_deltas_equal_fresh_exhaustive_evaluation(script in arb_script()) {
        let (base, ops) = script;
        for policy in [
            PrefilterPolicy::Scan { epochs: 6 },
            PrefilterPolicy::Grid { epochs: 6 },
            PrefilterPolicy::RTree { epochs: 6 },
        ] {
            let server = ModServer::with_policy(policy);
            // Sparse row sampling keeps the per-op P^WD quadrature cost
            // of the row subscriptions proportionate to a property test
            // (the density knob trades sharpness for maintenance cost;
            // the bit-identity property is density-independent).
            server.subscription_registry().set_row_samples(12);
            server
                .register_all(
                    base.iter()
                        .enumerate()
                        .map(|(i, wps)| make_tr(i as u64, wps)),
                )
                .unwrap();
            server
                .subscribe(
                    "plain",
                    "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                     AND PROB_NN(*, Tr0, TIME) > 0",
                )
                .unwrap();
            server
                .subscribe(
                    "ranked",
                    "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                     AND PROB_NN(*, Tr1, TIME, RANK 2) > 0",
                )
                .unwrap();
            // The row ladder rides the same interleavings: a threshold
            // subscription over Tr0 on every backend, and a reverse one
            // over Tr1 on the first backend only — reverse planning is
            // always exhaustive (every perspective needs the whole MOD),
            // so the prefilter ablation does not reach it, and its
            // sampled evaluation dominates the proptest's budget.
            server
                .subscribe(
                    "hot",
                    "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                     AND PROB_NN(*, Tr0, TIME) > 0.25",
                )
                .unwrap();
            let with_reverse = matches!(policy, PrefilterPolicy::Scan { .. });
            if with_reverse {
                server
                    .subscribe(
                        "rev",
                        "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                         AND PROB_RNN(*, Tr1, TIME) > 0",
                    )
                    .unwrap();
            }
            let names: &[&str] = if with_reverse {
                &["plain", "ranked", "hot", "rev"]
            } else {
                &["plain", "ranked", "hot"]
            };
            let mut folded: Vec<SubAnswer> = names
                .iter()
                .map(|n| server.subscription_answer(n).unwrap())
                .collect();
            let mut next_oid = base.len() as u64;
            for (kind, target, wps) in &ops {
                match kind {
                    0 => {
                        server.register(make_tr(next_oid, wps)).unwrap();
                        next_oid += 1;
                    }
                    1 => {
                        let oids = server.store().oids();
                        // Keep the two query objects and a quorum alive.
                        if oids.len() > 4 {
                            let victim = oids[2 + target % (oids.len() - 2)];
                            server.store().remove(victim).unwrap();
                        }
                    }
                    2 => {
                        // Single-commit GPS correction of a random
                        // existing object (possibly a query object —
                        // exercising the rebuild path).
                        let oids = server.store().oids();
                        let victim = oids[target % oids.len()];
                        let mut moved = wps.clone();
                        moved[0].0 += 1.0;
                        server.store().update(make_tr(victim.0, &moved));
                    }
                    _ => {
                        server
                            .register_all([
                                make_tr(next_oid, wps),
                                make_tr(next_oid + 1, &wps.iter().map(|(x, y)| (x + 1.0, y + 1.0)).collect::<Vec<_>>()),
                            ])
                            .unwrap();
                        next_oid += 2;
                    }
                }
                for (acc, name) in folded.iter_mut().zip(names) {
                    for d in server.poll_subscription(name).unwrap() {
                        *acc = acc.apply(&d);
                    }
                }
            }
            for (name, folded) in names.iter().zip(&folded) {
                let maintained = server.subscription_answer(name).unwrap();
                let info = server
                    .subscriptions()
                    .into_iter()
                    .find(|s| s.name == *name)
                    .unwrap();
                prop_assert!(
                    info.error.is_none(),
                    "{policy:?}/{name}: parked on {:?}",
                    info.error
                );
                let fresh = match *name {
                    "plain" => SubAnswer::Intervals(fresh_answer(&server, Oid(0), None)),
                    "ranked" => SubAnswer::Intervals(fresh_answer(&server, Oid(1), Some(2))),
                    "hot" => SubAnswer::Rows(fresh_rows(&server, Oid(0), false)),
                    "rev" => SubAnswer::Rows(fresh_rows(&server, Oid(1), true)),
                    _ => unreachable!(),
                };
                prop_assert_eq!(
                    &maintained,
                    &fresh,
                    "{:?}/{}: maintained != fresh exhaustive",
                    policy,
                    name
                );
                prop_assert_eq!(
                    folded,
                    &maintained,
                    "{:?}/{}: folded deltas != maintained answer",
                    policy,
                    name
                );
            }
        }
    }
}

/// The info rows stay coherent: every routed commit lands in exactly one
/// of the three ladder counters.
#[test]
fn maintenance_counters_partition_the_commits() {
    let server = ModServer::new();
    server
        .register_all((0..10).map(|k| straight(k, 2.0 * k as f64)))
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    let base_epoch = server.store().epoch();
    let commits = 12u64;
    for k in 0..commits {
        match k % 3 {
            0 => {
                server.register(straight(100 + k, 70_000.0)).unwrap();
            }
            1 => {
                server.store().update(straight(2, 3.0 + 0.01 * k as f64));
            }
            _ => {
                server.store().update(straight(0, 0.01 * k as f64));
            }
        }
        // The partition holds after every single commit, not just at the
        // end: sequentially each commit is one completed round, so the
        // two visit classes always sum to the commits routed so far.
        let SubscriptionInfo { stats, .. } = server.subscriptions().remove(0);
        assert_eq!(
            stats.visited + stats.skipped_unvisited,
            server.store().epoch() - base_epoch,
            "after commit {k}: {stats:?}"
        );
    }
    let SubscriptionInfo { stats, .. } = server.subscriptions().remove(0);
    // Every round that examines the share lands in exactly one ladder
    // counter; every other round was pruned by the guard index. Under
    // batch window 1 there is one round per commit, so the two visit
    // classes partition the commits exactly.
    assert_eq!(
        stats.visited,
        stats.skipped + stats.patched + stats.rebuilt,
        "{stats:?}"
    );
    assert_eq!(
        stats.visited + stats.skipped_unvisited,
        commits,
        "{stats:?}"
    );
    // A commit the index pruned leaves the share's watermark behind;
    // the next visit folds it into one ladder pass. The final commit
    // updates the query object (a guaranteed visit), so by now every
    // pruned commit has been folded exactly once.
    assert_eq!(stats.batched_commits, stats.skipped_unvisited, "{stats:?}");
    assert!(
        stats.skipped_unvisited >= 1,
        "far registrations prune unvisited: {stats:?}"
    );
    assert!(stats.patched >= 1, "{stats:?}");
    assert!(
        stats.rebuilt >= 1,
        "query-object updates rebuild: {stats:?}"
    );
    assert_eq!(
        maintained_intervals(&server, "near0"),
        fresh_answer(&server, Oid(0), None)
    );
}

/// The partition invariant under true concurrency: however rounds and
/// commits interleave, no reader ever observes
/// `visited + skipped_unvisited` exceeding the commits routed so far.
/// The round counter only advances once a round's effects are
/// published, and an in-flight round pre-claims its own slot, so the
/// skipped-unvisited arithmetic never double-counts a round that a
/// concurrent visit is still absorbing.
#[test]
fn maintenance_counters_never_overcount_mid_round() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let server = ModServer::new();
    server
        .register_all((0..10).map(|k| straight(k, 2.0 * k as f64)))
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    let base_epoch = server.store().epoch();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server_ref = &server;
        // Near writer: every update lands inside the share's band, so
        // its rounds visit and walk the ladder.
        let near = scope.spawn(move || {
            for k in 0..40u64 {
                server_ref
                    .store()
                    .update(straight(2, 3.0 + 0.01 * k as f64));
            }
        });
        // Far writer: provably outside the corridor guard, so its
        // commits are pruned unvisited once the guard is published.
        let far = scope.spawn(move || {
            for k in 0..40u64 {
                let oid = 10_000 + k;
                server_ref
                    .register(straight(oid, 70_000.0 + k as f64))
                    .unwrap();
                if k % 2 == 0 {
                    server_ref.store().remove(Oid(oid)).unwrap();
                }
            }
        });
        // Reader: counters first, commit count second. Reading the
        // epoch *after* the stats biases the race against the
        // invariant — a round publishing between the two reads only
        // raises the right-hand side.
        let done_ref = &done;
        let reader = scope.spawn(move || {
            while !done_ref.load(Ordering::Acquire) {
                let SubscriptionInfo { stats, .. } = server_ref.subscriptions().remove(0);
                let commits = server_ref.store().epoch() - base_epoch;
                assert!(
                    stats.visited + stats.skipped_unvisited <= commits,
                    "mid-round overcount: visited {} + skipped_unvisited {} > commits {commits}",
                    stats.visited,
                    stats.skipped_unvisited,
                );
            }
        });
        near.join().unwrap();
        far.join().unwrap();
        done.store(true, Ordering::Release);
        reader.join().unwrap();
    });
    // A final query-object update forces a visit that folds every
    // outstanding pruned commit; the maintained answer must equal a
    // fresh exhaustive evaluation bit-for-bit.
    server.store().update(straight(0, 0.123));
    let SubscriptionInfo { stats, .. } = server.subscriptions().remove(0);
    assert!(stats.visited >= 1, "{stats:?}");
    assert!(
        stats.visited + stats.skipped_unvisited <= server.store().epoch() - base_epoch,
        "{stats:?}"
    );
    assert_eq!(
        maintained_intervals(&server, "near0"),
        fresh_answer(&server, Oid(0), None)
    );
}
