//! End-to-end and property tests of the standing-query subsystem: the
//! QL registration surface, the per-subscription change feed, and the
//! core acceptance property — `answer ⊕ delta` folded over any mutation
//! interleaving equals a fresh exhaustive evaluation of the final
//! contents, bit-identically, for every prefilter backend.

use proptest::prelude::*;
use uncertain_nn::core::answer::AnswerSet;
use uncertain_nn::modb::{PrefilterPolicy, QueryPlanner, SubscriptionInfo};
use uncertain_nn::prelude::*;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;

fn make_tr(oid: u64, wps: &[(f64, f64)]) -> UncertainTrajectory {
    let n = wps.len().max(2);
    let step = (WINDOW.1 - WINDOW.0) / (n - 1) as f64;
    let triples: Vec<(f64, f64, f64)> = wps
        .iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(k, (x, y))| (*x, *y, WINDOW.0 + k as f64 * step))
        .collect();
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &triples).unwrap(),
        RADIUS,
    )
    .unwrap()
}

fn straight(oid: u64, y: f64) -> UncertainTrajectory {
    make_tr(oid, &[(0.0, y), (30.0, y)])
}

/// Fresh exhaustive evaluation of a standing query against the server's
/// current contents — the ground truth every maintained answer must
/// equal bit-for-bit.
fn fresh_answer(server: &ModServer, query: Oid, rank: Option<usize>) -> AnswerSet {
    let engine = QueryPlanner::new(PrefilterPolicy::Exhaustive)
        .plan(
            server.store().snapshot(),
            query,
            TimeInterval::new(WINDOW.0, WINDOW.1),
        )
        .expect("plans")
        .build_engine()
        .expect("builds");
    match rank {
        Some(k) => engine.ranked_answer_set(k),
        None => engine.answer_set(),
    }
}

#[test]
fn register_unregister_show_via_the_query_language() {
    let server = ModServer::new();
    server
        .register_all((0..6).map(|k| straight(k, k as f64)))
        .unwrap();
    let reg = server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr0, TIME) > 0 AS near0",
        )
        .unwrap();
    let info = match reg {
        QueryOutput::Registered(info) => info,
        other => panic!("expected Registered, got {other:?}"),
    };
    assert_eq!(info.name, "near0");
    assert!(info.entries >= 1);
    // SHOW lists it.
    match server.execute("SHOW SUBSCRIPTIONS").unwrap() {
        QueryOutput::Subscriptions(subs) => {
            assert_eq!(subs.len(), 1);
            assert_eq!(subs[0].name, "near0");
            assert!(subs[0].statement.contains("PROB_NN"));
        }
        other => panic!("expected Subscriptions, got {other:?}"),
    }
    // Duplicate name refused; RNN/threshold statements refused.
    assert!(server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr1, TIME) > 0 AS near0",
        )
        .is_err());
    assert!(server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_RNN(*, Tr0, TIME) > 0 AS rev",
        )
        .is_err());
    assert!(server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr0, TIME) > 0.5 AS thresh",
        )
        .is_err());
    // UNREGISTER drops it; a second drop errors.
    assert_eq!(
        server.execute("UNREGISTER near0").unwrap(),
        QueryOutput::Unregistered("near0".into())
    );
    assert!(server.execute("UNREGISTER near0").is_err());
    match server.execute("SHOW SUBSCRIPTIONS").unwrap() {
        QueryOutput::Subscriptions(subs) => assert!(subs.is_empty()),
        other => panic!("expected Subscriptions, got {other:?}"),
    }
}

#[test]
fn change_feed_streams_only_the_changed_objects() {
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 2.0),
            straight(3, 500.0),
        ])
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    assert_eq!(server.poll_subscription("near0").unwrap(), vec![]);
    // A newcomer inside the band but above the envelope (the NN is still
    // Tr1) shows up as exactly one upsert; the unchanged qualifiers do
    // not reappear in the delta.
    server.register(straight(7, 1.5)).unwrap();
    let deltas = server.poll_subscription("near0").unwrap();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].upserts.len(), 1, "{deltas:?}");
    assert_eq!(deltas[0].upserts[0].oid, Oid(7));
    assert!(deltas[0].removed.is_empty());
    // Far churn produces no deltas at all.
    server.register(straight(90, 44_000.0)).unwrap();
    server.store().remove(Oid(90)).unwrap();
    assert_eq!(server.poll_subscription("near0").unwrap(), vec![]);
    let info = &server.subscriptions()[0];
    assert!(info.stats.skipped >= 2, "{info:?}");
    // Removing the newcomer streams its removal.
    server.store().remove(Oid(7)).unwrap();
    let deltas = server.poll_subscription("near0").unwrap();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].removed, vec![Oid(7)]);
    // Unknown names error.
    assert!(server.poll_subscription("bogus").is_err());
}

#[test]
fn single_commit_update_is_one_maintenance_round() {
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 3.0),
            straight(3, 9.0),
        ])
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    // One GPS correction through the single-commit update op.
    server.store().update(straight(1, 1.5));
    let info = &server.subscriptions()[0];
    assert_eq!(
        info.stats.skipped + info.stats.patched + info.stats.rebuilt,
        1,
        "one commit must be one maintenance round: {info:?}"
    );
    assert_eq!(
        server.subscription_answer("near0").unwrap(),
        fresh_answer(&server, Oid(0), None)
    );
}

#[test]
fn truncated_delta_log_forces_a_full_rebuild() {
    let server = ModServer::new();
    server
        .register_all((0..8).map(|k| straight(k, k as f64)))
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    // Shrink the log so one bulk commit blows past it: the registry sees
    // `ops_since == None` and must re-plan from scratch.
    server.store().set_delta_log_capacity(2);
    server
        .register_all((100..108).map(|k| straight(k, 0.25 + (k - 100) as f64 * 0.1)))
        .unwrap();
    let info = &server.subscriptions()[0];
    assert!(info.stats.rebuilt >= 1, "truncation must rebuild: {info:?}");
    assert!(info.error.is_none(), "{info:?}");
    assert_eq!(
        server.subscription_answer("near0").unwrap(),
        fresh_answer(&server, Oid(0), None),
        "the rebuild must land on the fresh answer"
    );
    // The newcomers actually qualified (the rebuild saw them).
    assert!(server
        .subscription_answer("near0")
        .unwrap()
        .intervals_of(Oid(100))
        .is_some());
}

#[test]
fn clearing_the_store_empties_every_subscription() {
    let server = ModServer::new();
    server
        .register_all((0..5).map(|k| straight(k, k as f64)))
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    server.store().clear();
    let info = &server.subscriptions()[0];
    assert!(info.error.is_some(), "{info:?}");
    assert!(server.subscription_answer("near0").unwrap().is_empty());
    let deltas = server.poll_subscription("near0").unwrap();
    assert!(
        deltas.iter().any(|d| !d.removed.is_empty()),
        "the emptying must stream removals: {deltas:?}"
    );
}

/// One scripted mutation: (kind, target selector, waypoints for inserts).
type OpSpec = (usize, usize, Vec<(f64, f64)>);

fn arb_waypoints() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 4)
}

fn arb_script() -> impl Strategy<Value = (Vec<Vec<(f64, f64)>>, Vec<OpSpec>)> {
    (
        prop::collection::vec(arb_waypoints(), 8..=14),
        prop::collection::vec((0usize..4, 0usize..64, arb_waypoints()), 4..=10),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance property: across random interleavings of insert /
    /// remove / single-commit update and every prefilter backend, the
    /// maintained answer of each standing query (plain and ranked)
    /// equals a fresh exhaustive evaluation bit-for-bit, and folding the
    /// emitted deltas over the initial answer reproduces it.
    #[test]
    fn folded_deltas_equal_fresh_exhaustive_evaluation(script in arb_script()) {
        let (base, ops) = script;
        for policy in [
            PrefilterPolicy::Scan { epochs: 6 },
            PrefilterPolicy::Grid { epochs: 6 },
            PrefilterPolicy::RTree { epochs: 6 },
        ] {
            let server = ModServer::with_policy(policy);
            server
                .register_all(
                    base.iter()
                        .enumerate()
                        .map(|(i, wps)| make_tr(i as u64, wps)),
                )
                .unwrap();
            server
                .subscribe(
                    "plain",
                    "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                     AND PROB_NN(*, Tr0, TIME) > 0",
                )
                .unwrap();
            server
                .subscribe(
                    "ranked",
                    "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                     AND PROB_NN(*, Tr1, TIME, RANK 2) > 0",
                )
                .unwrap();
            let mut folded: Vec<AnswerSet> = ["plain", "ranked"]
                .iter()
                .map(|n| server.subscription_answer(n).unwrap())
                .collect();
            let mut next_oid = base.len() as u64;
            for (kind, target, wps) in &ops {
                match kind {
                    0 => {
                        server.register(make_tr(next_oid, wps)).unwrap();
                        next_oid += 1;
                    }
                    1 => {
                        let oids = server.store().oids();
                        // Keep the two query objects and a quorum alive.
                        if oids.len() > 4 {
                            let victim = oids[2 + target % (oids.len() - 2)];
                            server.store().remove(victim).unwrap();
                        }
                    }
                    2 => {
                        // Single-commit GPS correction of a random
                        // existing object (possibly a query object —
                        // exercising the rebuild path).
                        let oids = server.store().oids();
                        let victim = oids[target % oids.len()];
                        let mut moved = wps.clone();
                        moved[0].0 += 1.0;
                        server.store().update(make_tr(victim.0, &moved));
                    }
                    _ => {
                        server
                            .register_all([
                                make_tr(next_oid, wps),
                                make_tr(next_oid + 1, &wps.iter().map(|(x, y)| (x + 1.0, y + 1.0)).collect::<Vec<_>>()),
                            ])
                            .unwrap();
                        next_oid += 2;
                    }
                }
                for (acc, name) in folded.iter_mut().zip(["plain", "ranked"]) {
                    for d in server.poll_subscription(name).unwrap() {
                        *acc = acc.apply(&d);
                    }
                }
            }
            for ((name, rank), folded) in
                [("plain", None), ("ranked", Some(2))].iter().zip(&folded)
            {
                let maintained = server.subscription_answer(name).unwrap();
                let info = server
                    .subscriptions()
                    .into_iter()
                    .find(|s| s.name == *name)
                    .unwrap();
                prop_assert!(
                    info.error.is_none(),
                    "{policy:?}/{name}: parked on {:?}",
                    info.error
                );
                let query = if *name == "plain" { Oid(0) } else { Oid(1) };
                let fresh = fresh_answer(&server, query, *rank);
                prop_assert_eq!(
                    &maintained,
                    &fresh,
                    "{:?}/{}: maintained != fresh exhaustive",
                    policy,
                    name
                );
                prop_assert_eq!(
                    folded,
                    &maintained,
                    "{:?}/{}: folded deltas != maintained answer",
                    policy,
                    name
                );
            }
        }
    }
}

/// The info rows stay coherent: every routed commit lands in exactly one
/// of the three ladder counters.
#[test]
fn maintenance_counters_partition_the_commits() {
    let server = ModServer::new();
    server
        .register_all((0..10).map(|k| straight(k, 2.0 * k as f64)))
        .unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    let commits = 12u64;
    for k in 0..commits {
        match k % 3 {
            0 => {
                server.register(straight(100 + k, 70_000.0)).unwrap();
            }
            1 => {
                server.store().update(straight(2, 3.0 + 0.01 * k as f64));
            }
            _ => {
                server.store().update(straight(0, 0.01 * k as f64));
            }
        }
    }
    let SubscriptionInfo { stats, .. } = server.subscriptions().remove(0);
    assert_eq!(
        stats.skipped + stats.patched + stats.rebuilt,
        commits,
        "{stats:?}"
    );
    assert!(stats.skipped >= 1, "{stats:?}");
    assert!(stats.patched >= 1, "{stats:?}");
    assert!(
        stats.rebuilt >= 1,
        "query-object updates rebuild: {stats:?}"
    );
    assert_eq!(
        server.subscription_answer("near0").unwrap(),
        fresh_answer(&server, Oid(0), None)
    );
}
