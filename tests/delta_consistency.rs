//! Property tests of the delta-epoch layer: a random interleaving of
//! `insert` / `remove` / `bulk_load` — with snapshots, index
//! materialization, and cached queries exercised *between* the mutations
//! so the incremental paths (snapshot `apply_delta`, index patching,
//! engine carry) actually run — must leave the MOD answering **every**
//! query category bit-identically to a server freshly rebuilt from the
//! final contents with the exhaustive policy, for every prefilter
//! backend.

use proptest::prelude::*;
use uncertain_nn::modb::index::{query_box, segment_boxes, SegmentIndex};
use uncertain_nn::modb::PrefilterPolicy;
use uncertain_nn::prelude::*;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;

/// Waypoints (shared sample times over the window) to a trajectory.
fn make_tr(oid: u64, wps: &[(f64, f64)]) -> UncertainTrajectory {
    let n = wps.len().max(2);
    let step = (WINDOW.1 - WINDOW.0) / (n - 1) as f64;
    let triples: Vec<(f64, f64, f64)> = wps
        .iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(k, (x, y))| (*x, *y, WINDOW.0 + k as f64 * step))
        .collect();
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &triples).unwrap(),
        RADIUS,
    )
    .unwrap()
}

/// One scripted mutation: (kind, target selector, waypoints for inserts).
type OpSpec = (usize, usize, Vec<(f64, f64)>);

fn arb_waypoints() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 4)
}

fn arb_script() -> impl Strategy<Value = (Vec<Vec<(f64, f64)>>, Vec<OpSpec>)> {
    (
        prop::collection::vec(arb_waypoints(), 8..=16),
        prop::collection::vec((0usize..3, 0usize..64, arb_waypoints()), 3..=10),
    )
}

/// Replays the script on a live server, interleaving snapshot/index/query
/// work between mutations, and returns it.
fn replay(policy: PrefilterPolicy, base: &[Vec<(f64, f64)>], ops: &[OpSpec]) -> ModServer {
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let live = ModServer::with_policy(policy);
    live.register_all(
        base.iter()
            .enumerate()
            .map(|(i, wps)| make_tr(i as u64, wps)),
    )
    .unwrap();
    let mut next_oid = base.len() as u64;
    for (kind, target, wps) in ops {
        // Materialize the snapshot and its indexes *before* the op so
        // the refresh after the op has something to patch, and warm the
        // engine cache so the carry check gets exercised.
        let snap = live.store().snapshot();
        let _ = (snap.grid().entry_count(), snap.rtree().entry_count());
        let _ = live.engine(Oid(0), w);
        match kind {
            0 => {
                live.register(make_tr(next_oid, wps)).unwrap();
                next_oid += 1;
            }
            1 => {
                let oids = live.store().oids();
                // Never remove the query object; keep at least 3 around.
                if oids.len() > 3 {
                    let victim = oids[1 + target % (oids.len() - 1)];
                    live.store().remove(victim).unwrap();
                }
            }
            _ => {
                let shifted: Vec<(f64, f64)> =
                    wps.iter().map(|(x, y)| (x + 1.0, y + 1.0)).collect();
                live.register_all([make_tr(next_oid, wps), make_tr(next_oid + 1, &shifted)])
                    .unwrap();
                next_oid += 2;
            }
        }
        let _ = live.engine(Oid(0), w);
    }
    live
}

/// A server freshly rebuilt from `live`'s final contents, answering
/// exhaustively — the ground truth.
fn rebuild_exhaustive(live: &ModServer) -> ModServer {
    let fresh = ModServer::with_policy(PrefilterPolicy::Exhaustive);
    fresh
        .register_all(live.store().snapshot().to_vec())
        .unwrap();
    fresh
}

fn statements() -> Vec<String> {
    [
        "SELECT Tr1 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr1, Tr0, TIME) > 0",
        "SELECT Tr2 FROM MOD WHERE FORALL TIME IN [0, 60] AND PROB_NN(Tr2, Tr0, TIME) > 0",
        "SELECT Tr3 FROM MOD WHERE ATLEAST 0.25 OF TIME IN [0, 60] AND PROB_NN(Tr3, Tr0, TIME) > 0",
        "SELECT Tr1 FROM MOD WHERE AT 30 TIME IN [0, 60] AND PROB_NN(Tr1, Tr0, TIME) > 0",
        "SELECT Tr2 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr2, Tr0, TIME, RANK 2) > 0",
        "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        "SELECT * FROM MOD WHERE ATLEAST 0.4 OF TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME, RANK 2) > 0",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn assert_same_output(a: QueryOutput, b: QueryOutput, ctx: &str) {
    match (a, b) {
        (QueryOutput::Boolean(x), QueryOutput::Boolean(y)) => {
            assert_eq!(x, y, "{ctx}");
        }
        (QueryOutput::Objects(mut xs), QueryOutput::Objects(mut ys)) => {
            xs.sort_by_key(|(o, _)| *o);
            ys.sort_by_key(|(o, _)| *o);
            let x_ids: Vec<Oid> = xs.iter().map(|(o, _)| *o).collect();
            let y_ids: Vec<Oid> = ys.iter().map(|(o, _)| *o).collect();
            assert_eq!(x_ids, y_ids, "{ctx}");
            for ((_, fx), (_, fy)) in xs.iter().zip(&ys) {
                assert!((fx - fy).abs() < 1e-9, "{ctx}: fraction {fx} vs {fy}");
            }
        }
        (a, b) => panic!("{ctx}: shape mismatch {a:?} vs {b:?}"),
    }
}

/// The `DeltaLog` truncation contract (see the docs on
/// `unn_modb::delta::DeltaLog`): a delta consumer whose last-seen epoch
/// fell off the bounded log gets `None` from `ops_since` and must
/// rebuild from the live contents — never patch against the incomplete
/// history. Exercised end-to-end through every consumer: snapshot
/// maintenance, the engine-cache carry, and a standing-query
/// subscription.
#[test]
fn truncation_forces_every_delta_consumer_to_rebuild() {
    let server = ModServer::new();
    server
        .register_all((0..12).map(|i| make_tr(i, &[(0.0, i as f64), (30.0, i as f64)])))
        .unwrap();
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    // Warm every consumer: snapshot + indexes, a cached carriable
    // engine, and a standing query.
    let snap = server.store().snapshot();
    let _ = (snap.grid().entry_count(), snap.rtree().entry_count());
    let _ = server.engine(Oid(0), w).unwrap();
    server
        .subscribe(
            "near0",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    let rebuilds_before = server.store().delta_stats().snapshots_rebuilt;
    // Truncate: cap the log so the next bulk commit evicts its own
    // prefix — consumers parked before it must detect the gap.
    server.store().set_delta_log_capacity(3);
    server
        .register_all((100..108).map(|i| make_tr(i, &[(0.5, 0.5 + (i - 100) as f64), (29.0, 1.0)])))
        .unwrap();
    let stats = server.store().delta_stats();
    assert!(
        stats.log_floor > 0,
        "the truncation must raise the floor: {stats:?}"
    );
    // The subscription detected the gap and rebuilt (never patched).
    let info = server
        .subscriptions()
        .into_iter()
        .find(|s| s.name == "near0")
        .unwrap();
    assert!(info.stats.rebuilt >= 1, "{info:?}");
    assert_eq!(info.stats.patched, 0, "patching across a gap is the bug");
    // The snapshot rebuilt from the live contents rather than patching.
    let snap = server.store().snapshot();
    assert_eq!(snap.len(), 20);
    assert!(
        server.store().delta_stats().snapshots_rebuilt > rebuilds_before,
        "{:?}",
        server.store().delta_stats()
    );
    // And everything still answers identically to a fresh exhaustive
    // server — the rebuilt state is the live state.
    let fresh = rebuild_exhaustive(&server);
    let stmt = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0";
    assert_same_output(
        server.execute(stmt).unwrap(),
        fresh.execute(stmt).unwrap(),
        "post-truncation",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_maintained_answers_equal_fresh_rebuild(script in arb_script()) {
        let (base, ops) = script;
        let w = TimeInterval::new(WINDOW.0, WINDOW.1);
        for policy in [
            PrefilterPolicy::Scan { epochs: 6 },
            PrefilterPolicy::Grid { epochs: 6 },
            PrefilterPolicy::RTree { epochs: 6 },
        ] {
            let live = replay(policy, &base, &ops);
            let fresh = rebuild_exhaustive(&live);
            prop_assert!(
                live.store().delta_stats().snapshots_delta_applied > 0,
                "{policy:?}: the script never took the delta path"
            );
            for stmt in statements() {
                // Tr1/Tr2/Tr3 can be removed by the script; both sides
                // must then agree on the *error*, not just on answers.
                match (live.execute(&stmt), fresh.execute(&stmt)) {
                    (Ok(a), Ok(b)) => assert_same_output(a, b, &format!("{policy:?}: {stmt}")),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("{policy:?}: {stmt}: {a:?} vs {b:?}"),
                }
            }
            prop_assert_eq!(
                live.continuous_nn(Oid(0), w).unwrap().sequence,
                fresh.continuous_nn(Oid(0), w).unwrap().sequence,
                "{:?}: crisp NN timeline diverged", policy
            );
        }
    }

    #[test]
    fn patched_indexes_equal_freshly_built_indexes(script in arb_script()) {
        let (base, ops) = script;
        let live = replay(PrefilterPolicy::Grid { epochs: 6 }, &base, &ops);
        let snap = live.store().snapshot();
        let reference = segment_boxes(snap.objects());
        let scan = uncertain_nn::modb::index::scan::LinearScan::build(reference);
        let probes = [
            query_box(0.0, 0.0, 50.0, 50.0, WINDOW.0, WINDOW.1),
            query_box(10.0, 10.0, 25.0, 25.0, 0.0, 30.0),
            query_box(40.0, 0.0, 52.0, 12.0, 30.0, 60.0),
            query_box(-5.0, -5.0, 0.5, 0.5, 0.0, 60.0),
        ];
        for q in &probes {
            prop_assert_eq!(snap.grid().query_bbox(q), scan.query_bbox(q), "grid {:?}", q);
            prop_assert_eq!(snap.rtree().query_bbox(q), scan.query_bbox(q), "rtree {:?}", q);
        }
    }
}
