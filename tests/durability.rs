//! Durability integration: WAL journaling, checkpointing, and crash
//! recovery — property-tested against a never-crashed reference store.
//!
//! The acceptance properties:
//!
//! * recovering a WAL directory copied at **any commit boundary**
//!   (a `kill -9` disk image) rebuilds the store bit-identically to a
//!   reference that applied the same op prefix, and query answers match
//!   across prefilter backends;
//! * a **torn tail** (the final record cut at any byte) recovers
//!   cleanly to the previous commit, loudly reported;
//! * a **flipped byte** anywhere in the final record either fails
//!   loudly (checksum / bound / chain error) or recovers to the
//!   previous commit — never a silent divergence.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use uncertain_nn::modb::{open_store, recover, FsyncPolicy, WalOptions};
use uncertain_nn::prelude::*;

/// Unique scratch directory per test case (proptest cases of one
/// process share a pid).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "unn_dur_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL directory holds a flat set of files — copying them is exactly
/// the disk image a `kill -9` leaves behind (the page cache survives
/// the process).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read wal dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy segment");
    }
}

fn straight(oid: u64, x: f64, y: f64) -> UncertainTrajectory {
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(x, y, 0.0), (x + 20.0, y + 5.0, 60.0)]).unwrap(),
        0.5,
    )
    .unwrap()
}

/// The mutation alphabet of the churn workloads. `Remove` of an absent
/// object is skipped (no commit) so the reference replays identically.
#[derive(Clone, Debug)]
enum Op {
    Upsert(u64, i32, i32),
    Remove(u64),
    Clear,
}

fn apply(store: &ModStore, op: &Op) {
    match op {
        Op::Upsert(oid, x, y) => {
            store.update(straight(*oid, f64::from(*x), f64::from(*y)));
        }
        Op::Remove(oid) => {
            if store.get(Oid(*oid)).is_some() {
                store.remove(Oid(*oid)).expect("present object removes");
            }
        }
        Op::Clear => store.clear(),
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Biased toward upserts via a selector range (the vendored
    // proptest shim has no weighted `prop_oneof!`).
    prop::collection::vec(
        (0usize..12, 0u64..8, -30i32..30, -30i32..30).prop_map(|(sel, o, x, y)| match sel {
            0..=7 => Op::Upsert(o, x, y),
            8..=10 => Op::Remove(o),
            _ => Op::Clear,
        }),
        4..28,
    )
}

/// Upserts only — every op commits, so epoch == ops applied (the torn
/// tail tests need that exact correspondence).
fn arb_commits() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u64..6, -30i32..30, -30i32..30).prop_map(|(o, x, y)| Op::Upsert(o, x, y)),
        2..10,
    )
}

/// Small segments + a tight checkpoint cadence so the random runs
/// exercise rotation, pruning, and snapshot+replay recovery — not just
/// single-segment replay.
fn churn_options() -> WalOptions {
    WalOptions {
        fsync: FsyncPolicy::Os,
        segment_bytes: 2048,
        checkpoint_every: 5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Copy the WAL directory at an arbitrary commit boundary
    /// mid-churn, recover from the copy, and compare against a
    /// reference store that applied the same prefix: state, epoch, and
    /// answers (under every prefilter backend) must be bit-identical.
    #[test]
    fn recovery_at_any_commit_boundary_is_bit_identical(
        ops in arb_ops(),
        cut_frac in 0.0..1.0f64,
        policy_idx in 0usize..3,
    ) {
        let dir = scratch("cut");
        let crash_dir = scratch("cutimg");
        let (store, _wal, _) = open_store(&dir, churn_options()).expect("fresh wal opens");

        let cut = ((ops.len() as f64) * cut_frac) as usize;
        for op in &ops[..cut] {
            apply(&store, op);
        }
        // The kill -9 disk image; churn continues past it on the live
        // store (later appends must not leak into the image).
        copy_dir(&dir, &crash_dir);
        for op in &ops[cut..] {
            apply(&store, op);
        }

        let reference = ModStore::new();
        for op in &ops[..cut] {
            apply(&reference, op);
        }

        let (recovered, report) = recover(&crash_dir).expect("boundary image recovers");
        prop_assert!(report.torn_tail.is_none(), "boundary copy cannot tear");
        prop_assert_eq!(recovered.epoch(), reference.epoch());
        prop_assert_eq!(
            recovered.snapshot().to_vec(),
            reference.snapshot().to_vec()
        );

        // Answers agree across prefilter backends, not just contents.
        if let Some(&q) = recovered.oids().first() {
            let policies = [
                PrefilterPolicy::Exhaustive,
                PrefilterPolicy::Grid { epochs: 4 },
                PrefilterPolicy::RTree { epochs: 4 },
            ];
            let mut lhs = ModServer::with_store(recovered);
            lhs.set_prefilter_policy(policies[policy_idx]);
            let rhs = ModServer::with_store(reference);
            let w = TimeInterval::new(0.0, 60.0);
            let a = lhs.continuous_nn(q, w).map(|a| a.sequence).map_err(|e| e.to_string());
            let b = rhs.continuous_nn(q, w).map(|a| a.sequence).map_err(|e| e.to_string());
            prop_assert_eq!(a, b);
        }

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
    }

    /// Cut the final record at any interior byte: recovery truncates
    /// the tear, reports it loudly, lands exactly one commit back, and
    /// journaling resumes on the truncated chain.
    #[test]
    fn torn_tail_recovers_to_previous_commit(
        ops in arb_commits(),
        tear_frac in 0.0..1.0f64,
    ) {
        let dir = scratch("tear");
        let boundaries = run_and_record_boundaries(&dir, &ops);
        let n = ops.len();
        let last_start = boundaries[n - 1];
        let file_len = boundaries[n];
        // Strictly interior cut: at least one byte gone, at least one kept.
        prop_assume!(file_len - last_start >= 2);
        let cut = last_start + 1 + ((tear_frac * ((file_len - last_start - 2) as f64)) as u64);

        let seg = only_segment(&dir);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).expect("segment opens");
        f.set_len(cut).expect("truncates");

        let reference = ModStore::new();
        for op in &ops[..n - 1] {
            apply(&reference, op);
        }

        let (recovered, wal, report) =
            open_store(&dir, WalOptions { checkpoint_every: 0, ..WalOptions::default() })
                .expect("torn tail recovers");
        let torn = report.torn_tail.as_ref().expect("tear is reported");
        prop_assert_eq!(torn.offset, last_start);
        prop_assert_eq!(recovered.epoch(), (n - 1) as u64);
        prop_assert_eq!(
            recovered.snapshot().to_vec(),
            reference.snapshot().to_vec()
        );

        // The chain continues from the truncated boundary.
        apply(&recovered, &ops[n - 1]);
        prop_assert_eq!(wal.status().last_epoch, n as u64);
        drop(wal);
        let (reopened, report) = recover(&dir).expect("continued chain recovers");
        prop_assert!(report.torn_tail.is_none());
        prop_assert_eq!(reopened.epoch(), n as u64);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip any byte of the final record: recovery either fails loudly
    /// or truncates to the previous commit (a len-field flip can mimic
    /// a tear) — it never silently accepts the damage.
    #[test]
    fn corrupt_tail_fails_loudly_or_truncates(
        ops in arb_commits(),
        flip_frac in 0.0..1.0f64,
        mask in 1u8..=255,
    ) {
        let dir = scratch("flip");
        let boundaries = run_and_record_boundaries(&dir, &ops);
        let n = ops.len();
        let last_start = boundaries[n - 1];
        let file_len = boundaries[n];
        let offset = last_start + ((flip_frac * ((file_len - last_start - 1) as f64)) as u64);

        let seg = only_segment(&dir);
        let mut bytes = std::fs::read(&seg).expect("segment reads");
        bytes[offset as usize] ^= mask;
        std::fs::write(&seg, &bytes).expect("segment rewrites");

        let reference = ModStore::new();
        for op in &ops[..n - 1] {
            apply(&reference, op);
        }

        match recover(&dir) {
            Err(e) => {
                // Loud refusal: checksum mismatch, over-bound length,
                // or a record chain gap.
                let msg = e.to_string();
                prop_assert!(msg.contains("corrupt wal record"), "unexpected error: {msg}");
            }
            Ok((recovered, report)) => {
                prop_assert!(
                    report.torn_tail.is_some(),
                    "accepted a flipped byte without reporting a tear"
                );
                prop_assert_eq!(recovered.epoch(), (n - 1) as u64);
                prop_assert_eq!(
                    recovered.snapshot().to_vec(),
                    reference.snapshot().to_vec()
                );
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Applies `ops` (all committing) against a single-segment WAL and
/// returns the segment byte length after each commit, prefixed with the
/// header length — so `boundaries[i]` is the byte offset where record
/// `i` starts and `boundaries[len]` is the final file length.
fn run_and_record_boundaries(dir: &Path, ops: &[Op]) -> Vec<u64> {
    let options = WalOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_every: 0,
        ..WalOptions::default()
    };
    let (store, _wal, _) = open_store(dir, options).expect("fresh wal opens");
    let seg = only_segment(dir);
    let mut boundaries = vec![std::fs::metadata(&seg).expect("segment exists").len()];
    for op in ops {
        apply(&store, op);
        boundaries.push(std::fs::metadata(&seg).expect("segment exists").len());
    }
    boundaries
}

fn only_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("wal dir reads")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().map(|x| x == "seg") == Some(true)).then_some(p)
        })
        .collect();
    assert_eq!(segs.len(), 1, "expected a single segment, got {segs:?}");
    segs.pop().unwrap()
}

/// Checkpoint + reopen: the snapshot image absorbs the prefix, replay
/// covers the suffix, journaling resumes, and answers — one-shot and
/// standing-query — match a never-crashed reference.
#[test]
fn checkpoint_then_recover_resumes_the_chain() {
    let dir = scratch("ckpt");
    let options = WalOptions {
        checkpoint_every: 0,
        ..WalOptions::default()
    };
    let (store, wal, _) = open_store(&dir, options.clone()).expect("fresh wal opens");

    let cfg = WorkloadConfig::with_objects(12, 9);
    let fleet = generate_uncertain(&cfg, 0.5);
    for tr in &fleet {
        store.update(tr.clone());
    }
    let watermark = wal.checkpoint(&store).expect("checkpoint writes");
    assert_eq!(watermark, 12);

    // Post-checkpoint churn: replayed from the log, not the image.
    store.update(straight(3, -5.0, 2.0));
    store.remove(Oid(7)).expect("Tr7 present");
    let status = store.wal_status().expect("wal attached");
    assert_eq!(status.checkpoint_epoch, 12);
    assert_eq!(status.last_epoch, 14);
    assert_eq!(status.checkpoints, 1);
    drop(wal);

    let reference = ModStore::new();
    for tr in &fleet {
        reference.update(tr.clone());
    }
    reference.update(straight(3, -5.0, 2.0));
    reference.remove(Oid(7)).expect("Tr7 present");

    let (recovered, wal, report) = open_store(&dir, options).expect("reopens");
    assert_eq!(report.snapshot_epoch, 12);
    assert_eq!(report.snapshot_objects, 12);
    assert_eq!(report.replayed_records, 2);
    assert_eq!(report.recovered_epoch, 14);
    assert_eq!(recovered.epoch(), reference.epoch());
    assert_eq!(recovered.snapshot().to_vec(), reference.snapshot().to_vec());

    // Answers agree — one-shot and a freshly re-registered standing
    // query (registrations are in-memory state; after a crash the
    // client re-registers and must see identical maintained answers).
    let lhs = ModServer::with_store(recovered);
    let rhs = ModServer::with_store(reference);
    let stmt = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0";
    assert_eq!(
        lhs.execute(stmt).expect("recovered answers"),
        rhs.execute(stmt).expect("reference answers")
    );
    let sub = "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
               AND PROB_NN(*, Tr0, TIME) > 0 AS near0";
    lhs.execute(sub).expect("recovered subscribes");
    rhs.execute(sub).expect("reference subscribes");
    lhs.store().update(straight(5, 0.5, 0.5));
    rhs.store().update(straight(5, 0.5, 0.5));
    assert_eq!(
        lhs.subscription_output("near0")
            .expect("recovered sub answers"),
        rhs.subscription_output("near0")
            .expect("reference sub answers")
    );

    // Journaling resumed: the post-recovery commit is itself durable.
    assert_eq!(wal.status().last_epoch, 15);
    drop(wal);
    let (again, _) = recover(&dir).expect("recovers again");
    assert_eq!(again.snapshot().to_vec(), lhs.store().snapshot().to_vec());

    let _ = std::fs::remove_dir_all(&dir);
}

/// `recover` on a directory that never existed yields an empty store
/// (cold start), and `open_store` makes it journaled from epoch 1.
#[test]
fn cold_start_opens_an_empty_journaled_store() {
    let dir = scratch("cold");
    let (store, wal, report) = open_store(&dir, WalOptions::default()).expect("cold start");
    assert_eq!(report, Default::default());
    assert_eq!(store.len(), 0);
    store.update(straight(0, 1.0, 1.0));
    assert_eq!(wal.status().last_epoch, 1);
    assert_eq!(wal.status().appended, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
