//! End-to-end pipeline tests on generated workloads: generator →
//! difference trajectories → envelopes (three algorithms) → band →
//! queries, validated against brute-force oracles.

use uncertain_nn::core::oracle;
use uncertain_nn::core::query::QueryEngine;
use uncertain_nn::core::{lower_envelope, lower_envelope_naive, lower_envelope_parallel};
use uncertain_nn::prelude::*;

fn setup(n: usize, seed: u64) -> (Vec<Trajectory>, TimeInterval) {
    let cfg = WorkloadConfig {
        num_objects: n,
        seed,
        ..WorkloadConfig::default()
    };
    (generate(&cfg), TimeInterval::new(0.0, 60.0))
}

#[test]
fn three_envelope_algorithms_agree() {
    let (trs, w) = setup(60, 11);
    let fs = difference_distances(&trs[0], &trs, &w).unwrap();
    let dc = lower_envelope(&fs);
    let naive = lower_envelope_naive(&fs);
    let par = lower_envelope_parallel(&fs, 8);
    assert_eq!(dc, par, "parallel must be bit-identical to sequential");
    for k in 0..=1200 {
        let t = k as f64 * 0.05;
        let a = dc.eval(t).unwrap();
        let b = naive.eval(t).unwrap();
        assert!((a - b).abs() < 1e-7, "t={t}: dc {a} vs naive {b}");
    }
}

#[test]
fn envelope_is_true_minimum_on_workload() {
    let (trs, w) = setup(80, 23);
    let fs = difference_distances(&trs[3], &trs, &w).unwrap();
    let le = lower_envelope(&fs);
    for k in 0..=600 {
        let t = k as f64 * 0.1;
        let (min, owner) = oracle::min_at(&fs, t).unwrap();
        let got = le.eval(t).unwrap();
        assert!((got - min).abs() < 1e-7, "t={t}: {got} vs oracle {min}");
        // At non-boundary instants the owners agree too.
        if (got - min).abs() < 1e-9 {
            let le_owner = le.owner_at(t).unwrap();
            let le_val = fs
                .iter()
                .find(|f| f.owner() == le_owner)
                .unwrap()
                .eval(t)
                .unwrap();
            assert!(
                (le_val - min).abs() < 1e-7,
                "owner {le_owner} vs {owner} at {t}"
            );
        }
    }
}

#[test]
fn envelope_answer_tiles_window_without_repeats() {
    let (trs, w) = setup(50, 31);
    let fs = difference_distances(&trs[7], &trs, &w).unwrap();
    let le = lower_envelope(&fs);
    let ans = le.answer_sequence();
    assert!((ans.first().unwrap().1.start() - w.start()).abs() < 1e-9);
    assert!((ans.last().unwrap().1.end() - w.end()).abs() < 1e-9);
    for pair in ans.windows(2) {
        assert!((pair[0].1.end() - pair[1].1.start()).abs() < 1e-9);
        assert_ne!(pair[0].0, pair[1].0, "adjacent answer entries must differ");
    }
}

#[test]
fn uq13_fraction_matches_oracle_on_workload() {
    let (trs, w) = setup(40, 5);
    let fs = difference_distances(&trs[0], &trs, &w).unwrap();
    let radius = 0.5;
    let engine = QueryEngine::new(trs[0].oid(), fs.clone(), radius);
    for idx in [0usize, 5, 11, 19, 33] {
        let oid = fs[idx].owner();
        let frac = engine.uq13_fraction(oid).unwrap();
        let sampled = oracle::inside_fraction(&fs, oid, 4.0 * radius, w, 4000).unwrap();
        assert!(
            (frac - sampled).abs() < 0.01,
            "{oid}: engine {frac} vs oracle {sampled}"
        );
    }
}

#[test]
fn rank_intervals_match_oracle_on_workload() {
    let (trs, w) = setup(30, 77);
    let fs = difference_distances(&trs[0], &trs, &w).unwrap();
    let radius = 0.5;
    let engine = QueryEngine::new(trs[0].oid(), fs.clone(), radius);
    for idx in [1usize, 8, 15] {
        let oid = fs[idx].owner();
        for k in [1usize, 2, 3] {
            let frac = engine.uq23_fraction(oid, k).unwrap();
            let sampled = oracle::rank_fraction(&fs, oid, k, 4.0 * radius, w, 3000).unwrap();
            assert!(
                (frac - sampled).abs() < 0.02,
                "{oid} k={k}: engine {frac} vs oracle {sampled}"
            );
        }
    }
}

#[test]
fn uq31_returns_exactly_the_band_entrants() {
    let (trs, w) = setup(45, 13);
    let fs = difference_distances(&trs[2], &trs, &w).unwrap();
    let radius = 0.5;
    let engine = QueryEngine::new(trs[2].oid(), fs.clone(), radius);
    let result: Vec<Oid> = engine.uq31_all().into_iter().map(|(o, _)| o).collect();
    for f in &fs {
        let sampled = oracle::inside_fraction(&fs, f.owner(), 4.0 * radius, w, 2000).unwrap();
        if sampled > 0.001 {
            assert!(
                result.contains(&f.owner()),
                "{} inside {sampled:.3} of the window but missing from UQ31",
                f.owner()
            );
        }
        if sampled == 0.0 {
            // Allow boundary-grazing objects to appear (measure-zero
            // intersections); but anything the engine returns must be
            // plausible per the clearance.
        }
    }
}

#[test]
fn server_pipeline_on_generated_workload() {
    let cfg = WorkloadConfig {
        num_objects: 120,
        seed: 99,
        ..WorkloadConfig::default()
    };
    let server = ModServer::new();
    server.register_all(generate_uncertain(&cfg, 0.5)).unwrap();
    let ans = server
        .continuous_nn(Oid(0), TimeInterval::new(0.0, 60.0))
        .unwrap();
    assert!(!ans.sequence.is_empty());
    assert_eq!(ans.stats.candidates, 119);
    assert!(ans.stats.kept <= ans.stats.candidates);
    // The answer owner at each midpoint is the true nearest object.
    let snapshot = server.store().snapshot();
    for (oid, iv) in ans.sequence.iter().take(10) {
        let t = iv.midpoint();
        let qpos = snapshot
            .iter()
            .find(|tr| tr.oid() == Oid(0))
            .unwrap()
            .expected_location(t)
            .unwrap();
        let mut best = (f64::INFINITY, Oid(u64::MAX));
        for tr in snapshot.iter() {
            if tr.oid() == Oid(0) {
                continue;
            }
            let d = tr.expected_location(t).unwrap().distance(qpos);
            if d < best.0 {
                best = (d, tr.oid());
            }
        }
        assert_eq!(*oid, best.1, "at t={t}");
    }
}
