//! Integration tests for the §7 future-work extensions, exercised through
//! the public API on the paper's random-waypoint workload: reverse NN,
//! all-pairs, heterogeneous radii, continuous k-NN, threshold queries,
//! and the catalog join.

use uncertain_nn::core::hetero::HeteroCandidate;
use uncertain_nn::prelude::*;

fn workload(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut cfg = WorkloadConfig::with_objects(n, seed);
    cfg.duration_minutes = 30.0;
    generate(&cfg)
}

fn server_with(n: usize, seed: u64, radius: f64) -> ModServer {
    let server = ModServer::new();
    for tr in workload(n, seed) {
        server
            .register(UncertainTrajectory::with_uniform_pdf(tr, radius).unwrap())
            .unwrap();
    }
    server
}

const WINDOW: (f64, f64) = (0.0, 30.0);

#[test]
fn reverse_statements_match_engine_answers() {
    let s = server_with(40, 7, 0.5);
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let rev = s.reverse_engine(Oid(0), w).unwrap();
    let expected: Vec<Oid> = rev.rnn_all().into_iter().map(|(o, _)| o).collect();
    let out = s
        .execute("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 30] AND PROB_RNN(*, Tr0, TIME) > 0")
        .unwrap();
    match out {
        QueryOutput::Objects(objs) => {
            let got: Vec<Oid> = objs.iter().map(|(o, _)| *o).collect();
            for oid in &expected {
                assert!(got.contains(oid), "{oid} missing from statement answer");
            }
            for oid in &got {
                assert!(expected.contains(oid), "{oid} extra in statement answer");
            }
        }
        other => panic!("expected Objects, got {other:?}"),
    }
    // Single-target statements agree with the per-object predicates.
    for oid in [1u64, 5, 17] {
        let stmt = format!(
            "SELECT Tr{oid} FROM MOD WHERE EXISTS TIME IN [0, 30] \
             AND PROB_RNN(Tr{oid}, Tr0, TIME) > 0"
        );
        let expected = rev.rnn_exists(Oid(oid)).unwrap();
        assert_eq!(
            s.execute(&stmt).unwrap(),
            QueryOutput::Boolean(expected),
            "oid {oid}"
        );
    }
}

#[test]
fn reverse_and_forward_relations_are_distinct_but_consistent() {
    let trs = workload(25, 99);
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let r = 0.5;
    let rev = ReverseNnEngine::new(&trs, Oid(0), w, r).unwrap();
    // Consistency: q is a possible NN of i exactly when, in i's forward
    // engine, q's function enters i's band — validated against a fresh
    // forward engine built by hand.
    let q_tr = trs.iter().find(|t| t.oid() == Oid(0)).unwrap();
    for tr in trs.iter().take(8) {
        if tr.oid() == Oid(0) {
            continue;
        }
        let fs = difference_distances(tr, &trs, &w).unwrap();
        let fwd = QueryEngine::new(tr.oid(), fs, r);
        assert_eq!(
            rev.rnn_exists(tr.oid()),
            fwd.uq11_exists(q_tr.oid()),
            "perspective {}",
            tr.oid()
        );
    }
}

#[test]
fn all_pairs_covers_every_object_and_matches_singles() {
    let trs = workload(15, 3);
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let pairs = all_pairs_nn(&trs, w, 0.5).unwrap();
    assert_eq!(pairs.len(), trs.len());
    for p in &pairs {
        // Sequences tile the window.
        assert!((p.sequence.first().unwrap().1.start() - w.start()).abs() < 1e-9);
        assert!((p.sequence.last().unwrap().1.end() - w.end()).abs() < 1e-9);
    }
    // Cross-check one subject against a hand-built engine.
    let subject = &trs[4];
    let fs = difference_distances(subject, &trs, &w).unwrap();
    let engine = QueryEngine::new(subject.oid(), fs, 0.5);
    let own = pairs.iter().find(|p| p.subject == subject.oid()).unwrap();
    assert_eq!(own.sequence, engine.continuous_nn_answer());
}

#[test]
fn hetero_server_path_on_mixed_fleet() {
    let server = ModServer::new();
    let trs = workload(30, 11);
    // Radii alternate between tight GPS (0.1) and loose cell-tower (1.5).
    for (k, tr) in trs.into_iter().enumerate() {
        let r = if k % 2 == 0 { 0.1 } else { 1.5 };
        server
            .register(UncertainTrajectory::with_uniform_pdf(tr, r).unwrap())
            .unwrap();
    }
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let h = server.hetero_engine(Oid(0), w).unwrap();
    let stats = h.stats();
    assert_eq!(stats.total, 29);
    assert!(stats.kept >= 1, "someone must be possible");
    assert!(stats.kept <= stats.total);
    // Instant probabilities form a distribution.
    let probs = h.probabilities_at(15.0).unwrap();
    let sum: f64 = probs.iter().map(|(_, p)| p).sum();
    assert!((sum - 1.0).abs() < 1e-2, "sum {sum}");
    // Every positive-probability object is possible at that instant.
    for (oid, p) in &probs {
        if *p > 0.0 {
            assert_eq!(h.possible_at(*oid, 15.0), Some(true), "{oid}");
        }
    }
}

#[test]
fn hetero_reduces_to_homogeneous_on_equal_radii() {
    let trs = workload(20, 42);
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let r = 0.5;
    let q_tr = trs.iter().find(|t| t.oid() == Oid(0)).unwrap();
    let fs = difference_distances(q_tr, &trs, &w).unwrap();
    let hom = QueryEngine::new(Oid(0), fs.clone(), r);
    let het = HeteroEngine::new(
        Oid(0),
        fs.iter()
            .map(|f| HeteroCandidate {
                f: f.clone(),
                radius: r,
            })
            .collect(),
        r,
    );
    for f in fs.iter().take(10) {
        let a = hom.uq13_fraction(f.owner()).unwrap();
        let b = het.fraction(f.owner()).unwrap();
        assert!((a - b).abs() < 1e-6, "{}: {a} vs {b}", f.owner());
    }
}

#[test]
fn knn_prefixes_nest_and_match_crisp_nn() {
    let s = server_with(25, 5, 0.5);
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let k1 = s.knn_answer(Oid(0), w, 1).unwrap();
    let k3 = s.knn_answer(Oid(0), w, 3).unwrap();
    // The 1-NN answer is the prefix of the 3-NN answer everywhere.
    for probe in 0..100 {
        let t = w.start() + (probe as f64 + 0.5) * w.len() / 100.0;
        let a = k1.knn_at(t).unwrap();
        let b = k3.knn_at(t).unwrap();
        assert_eq!(a[0], b[0], "t={t}");
    }
    // And equals the crisp continuous NN answer.
    let crisp = s.continuous_nn(Oid(0), w).unwrap();
    for (oid, iv) in &crisp.sequence {
        let mid = iv.midpoint();
        assert_eq!(k1.knn_at(mid).unwrap()[0], *oid, "t={mid}");
    }
}

#[test]
fn theorem_1_holds_on_generated_workloads() {
    let trs = workload(20, 13);
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let q_tr = trs.iter().find(|t| t.oid() == Oid(0)).unwrap();
    let fs = difference_distances(q_tr, &trs, &w).unwrap();
    let engine = QueryEngine::new(Oid(0), fs.clone(), 0.5);
    let crisp = continuous_knn(&fs, 3);
    let agreement = uncertain_nn::core::topk::semantics_agreement(&engine, &crisp, 3, 120);
    assert!(agreement > 0.93, "agreement {agreement}");
}

#[test]
fn catalog_joins_spatial_answers() {
    let s = server_with(12, 21, 0.5);
    let w = TimeInterval::new(WINDOW.0, WINDOW.1);
    let catalog = Catalog::new();
    for oid in s.store().oids() {
        let kind = if oid.0 % 3 == 0 { "truck" } else { "car" };
        catalog.upsert(oid, ObjectMeta::new(format!("veh-{}", oid.0), kind));
    }
    let out = s
        .execute("SELECT * FROM MOD WHERE EXISTS TIME IN [0, 30] AND PROB_NN(*, Tr0, TIME) > 0")
        .unwrap();
    let QueryOutput::Objects(rows) = out else {
        panic!("expected Objects")
    };
    let total = rows.len();
    let trucks = catalog.filter_answer(rows, |m| m.kind == "truck");
    assert!(trucks.len() <= total);
    for (oid, _) in &trucks {
        assert_eq!(oid.0 % 3, 0);
    }
    let _ = w;
}

#[test]
fn threshold_statements_on_workload() {
    let s = server_with(30, 17, 0.5);
    // Threshold statements narrow the §4 answers: every object passing
    // `> 0.5` also passes `> 0`.
    let strict = s
        .execute(
            "SELECT * FROM MOD WHERE ATLEAST 0.1 OF TIME IN [0, 30] \
             AND PROB_NN(*, Tr0, TIME) > 0.5",
        )
        .unwrap();
    let loose = s
        .execute(
            "SELECT * FROM MOD WHERE ATLEAST 0.1 OF TIME IN [0, 30] \
             AND PROB_NN(*, Tr0, TIME) > 0",
        )
        .unwrap();
    let (QueryOutput::Objects(strict), QueryOutput::Objects(loose)) = (strict, loose) else {
        panic!("expected Objects")
    };
    let loose_ids: Vec<Oid> = loose.iter().map(|(o, _)| *o).collect();
    for (oid, _) in &strict {
        assert!(loose_ids.contains(oid), "{oid} in strict but not loose");
    }
}
