//! Equivalence property of the indexed, batch-coalescing maintenance
//! path: a server running the default guard-indexed `SyncMode::Sharded`
//! under a commit-coalescing batch window must maintain answers
//! **bit-identical** to a `SyncMode::Sequential` twin — the plain
//! linear sweep kept as ground truth — across random mutation
//! interleavings, every prefilter backend, and mixed interval/row
//! subscription populations.
//!
//! The script deliberately includes the hard cases for the index:
//! mutations far outside every guard box (pure prunes), mutations of
//! the query objects themselves (guard republish + rebuild), and a
//! subscription registered mid-batch on the indexed twin — its initial
//! answer is computed while coalesced commits are still pending, so the
//! next flush must catch it up from the delta log without replaying
//! epochs it already saw.

use proptest::prelude::*;
use uncertain_nn::modb::subscription::SyncMode;
use uncertain_nn::modb::PrefilterPolicy;
use uncertain_nn::prelude::*;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;

fn make_tr(oid: u64, wps: &[(f64, f64)]) -> UncertainTrajectory {
    let n = wps.len().max(2);
    let step = (WINDOW.1 - WINDOW.0) / (n - 1) as f64;
    let triples: Vec<(f64, f64, f64)> = wps
        .iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(k, (x, y))| (*x, *y, WINDOW.0 + k as f64 * step))
        .collect();
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &triples).unwrap(),
        RADIUS,
    )
    .unwrap()
}

/// One scripted mutation: (kind, target selector, waypoints).
type OpSpec = (usize, usize, Vec<(f64, f64)>);

fn arb_waypoints() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 4)
}

/// Base population, mutation script, and the index (into the script) at
/// which the mid-batch subscription registers.
type Script = (Vec<Vec<(f64, f64)>>, Vec<OpSpec>, usize);

fn arb_script() -> impl Strategy<Value = Script> {
    (
        prop::collection::vec(arb_waypoints(), 6..=10),
        prop::collection::vec((0usize..4, 0usize..64, arb_waypoints()), 5..=10),
        0usize..5,
    )
}

/// Builds one twin: base population plus a mixed subscription
/// population — interval standing queries over `Tr0` (shared-engine
/// duplicates included) and a probability-row threshold query over
/// `Tr1`.
fn build_twin(policy: PrefilterPolicy, base: &[Vec<(f64, f64)>]) -> ModServer {
    let server = ModServer::with_policy(policy);
    // Sparse rows keep the P^WD quadrature proportionate to a property
    // test; the equivalence property is density-independent because
    // both twins run the same density.
    server.subscription_registry().set_row_samples(12);
    server
        .register_all(
            base.iter()
                .enumerate()
                .map(|(i, wps)| make_tr(i as u64, wps)),
        )
        .unwrap();
    for (name, stmt) in [
        (
            "near",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        ),
        (
            // Identical shape as "near": coalesces onto the same shared
            // engine, so the index maintains one guard for both names.
            "near2",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0",
        ),
        (
            "hot",
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr1, TIME) > 0.25",
        ),
    ] {
        server.subscribe(name, stmt).unwrap();
    }
    server
}

/// Applies one scripted op to a server. Far inserts land at y ~ 500 —
/// provably outside every guard box, so on the indexed twin the
/// maintenance round prunes all shares untouched.
fn apply_op(server: &ModServer, op: &OpSpec, next_oid: &mut u64) {
    let (kind, target, wps) = op;
    match kind {
        0 => {
            server.register(make_tr(*next_oid, wps)).unwrap();
            *next_oid += 1;
        }
        1 => {
            let far = [
                (0.0, 500.0 + *target as f64),
                (30.0, 500.0 + *target as f64),
            ];
            server.register(make_tr(*next_oid, &far)).unwrap();
            *next_oid += 1;
        }
        2 => {
            let oids = server.store().oids();
            // Keep the two query objects and a quorum alive.
            if oids.len() > 4 {
                let victim = oids[2 + target % (oids.len() - 2)];
                server.store().remove(victim).unwrap();
            }
        }
        _ => {
            // Single-commit correction of a random existing object —
            // possibly a query object, forcing a guard republish on the
            // indexed twin mid-window.
            let oids = server.store().oids();
            let victim = oids[target % oids.len()];
            let mut moved = wps.clone();
            moved[0].0 += 1.0;
            server.store().update(make_tr(victim.0, &moved));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property of the maintenance index: for every
    /// prefilter backend, an indexed twin under a batch window of 3
    /// answers bit-identically to the sequential-sweep twin after any
    /// mutation interleaving, including for the subscription registered
    /// mid-batch.
    #[test]
    fn indexed_batched_sync_matches_sequential_sweep(script in arb_script()) {
        let (base, ops, mid_at) = script;
        for policy in [
            PrefilterPolicy::Scan { epochs: 6 },
            PrefilterPolicy::Grid { epochs: 6 },
            PrefilterPolicy::RTree { epochs: 6 },
        ] {
            let indexed = build_twin(policy, &base);
            indexed.store().set_maintenance_batch(3);
            let sequential = build_twin(policy, &base);
            sequential
                .subscription_registry()
                .set_sync_mode(SyncMode::Sequential);

            let mid_at = mid_at.min(ops.len().saturating_sub(1));
            let mut oid_a = base.len() as u64;
            let mut oid_b = base.len() as u64;
            for (i, op) in ops.iter().enumerate() {
                apply_op(&indexed, op, &mut oid_a);
                apply_op(&sequential, op, &mut oid_b);
                if i == mid_at {
                    // Mid-script — and, on the indexed twin, mid-batch:
                    // the coalescing window is 3, so with high
                    // probability commits are pending here and the new
                    // subscription's catch-up must reconcile with them.
                    for server in [&indexed, &sequential] {
                        server
                            .subscribe(
                                "mid",
                                "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                                 AND PROB_NN(*, Tr1, TIME) > 0",
                            )
                            .unwrap();
                    }
                }
            }
            indexed.store().flush_maintenance();
            sequential.store().flush_maintenance();

            prop_assert_eq!(oid_a, oid_b);
            for name in ["near", "near2", "hot", "mid"] {
                let want = sequential.subscription_answer(name).unwrap();
                let got = indexed.subscription_answer(name).unwrap();
                prop_assert_eq!(
                    got,
                    want,
                    "indexed+batched answer for '{}' diverged from the \
                     sequential sweep under {:?}",
                    name,
                    policy
                );
            }
        }
    }
}
