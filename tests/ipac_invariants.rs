//! Structural invariants of the IPAC-NN tree on generated workloads, and
//! the Theorem 2 complexity bound.

use uncertain_nn::core::ipac::{build_ipac_tree, IpacConfig, IpacNode};
use uncertain_nn::core::oracle;
use uncertain_nn::prelude::*;

fn functions(n: usize, seed: u64) -> Vec<uncertain_nn::traj::DistanceFunction> {
    let cfg = WorkloadConfig {
        num_objects: n,
        seed,
        ..WorkloadConfig::default()
    };
    let trs = generate(&cfg);
    difference_distances(&trs[0], &trs, &TimeInterval::new(0.0, 60.0)).unwrap()
}

fn walk(node: &IpacNode, ancestors: &mut Vec<Oid>, check: &mut impl FnMut(&IpacNode, &[Oid])) {
    check(node, ancestors);
    ancestors.push(node.owner);
    for c in &node.children {
        walk(c, ancestors, check);
    }
    ancestors.pop();
}

#[test]
fn tree_structure_invariants_hold_on_workloads() {
    for seed in [1u64, 2, 3] {
        let fs = functions(30, seed);
        let tree = build_ipac_tree(Oid(0), &fs, &IpacConfig::with_depth(0.5, 4));
        let mut seen_any = false;
        for root in &tree.roots {
            walk(root, &mut Vec::new(), &mut |node, ancestors| {
                seen_any = true;
                // 1. Levels increase along root paths.
                assert_eq!(node.level, ancestors.len() + 1);
                // 2. No ancestor owner repeats.
                assert!(!ancestors.contains(&node.owner));
                // 3. Children tile within the parent's span.
                let mut cursor = None;
                for c in &node.children {
                    assert!(node.span.contains_interval(&c.span), "child span escapes");
                    if let Some(prev) = cursor {
                        assert!(c.span.start() >= prev - 1e-9, "children out of order");
                    }
                    cursor = Some(c.span.end());
                }
                // 4. Descriptor bounds are consistent.
                assert!(node.descriptor.min_distance <= node.descriptor.max_distance + 1e-9);
            });
        }
        assert!(seen_any);
    }
}

#[test]
fn level_one_owner_is_true_nearest_at_midpoints() {
    let fs = functions(40, 9);
    let tree = build_ipac_tree(Oid(0), &fs, &IpacConfig::with_depth(0.5, 2));
    for (owner, iv) in tree.level_pieces(1) {
        let t = iv.midpoint();
        let (_, oracle_owner) = oracle::min_at(&fs, t).unwrap();
        assert_eq!(owner, oracle_owner, "level-1 owner at t={t}");
    }
}

#[test]
fn level_two_owner_is_second_nearest_among_band_members() {
    let fs = functions(30, 13);
    let radius = 0.5;
    let tree = build_ipac_tree(Oid(0), &fs, &IpacConfig::with_depth(radius, 2));
    let le = lower_envelope(&fs);
    for (owner, iv) in tree.level_pieces(2) {
        let t = iv.midpoint();
        // The tree ranks among the 4r-band members only: an object whose
        // distance exceeds LE(t) + 4r has zero NN probability and is not
        // part of the structure, so the oracle rank must be computed over
        // the band members too.
        let band = le.eval(t).unwrap() + 4.0 * radius;
        let d_owner = fs
            .iter()
            .find(|f| f.owner() == owner)
            .unwrap()
            .eval(t)
            .unwrap();
        let band_rank = 1 + fs
            .iter()
            .filter(|f| {
                let d = f.eval(t).unwrap();
                f.owner() != owner && d < d_owner && d <= band + 1e-9
            })
            .count();
        assert!(
            band_rank == 2,
            "level-2 owner {owner} has band rank {band_rank} at t={t}"
        );
    }
}

#[test]
fn theorem_2_complexity_bound() {
    // Node count is O((N/K)²) where kept = N/K survives pruning. We check
    // the concrete bound: nodes ≤ C · kept² with a small constant, for
    // unbounded depth on modest inputs.
    for seed in [5u64, 6] {
        let fs = functions(20, seed);
        let tree = build_ipac_tree(Oid(0), &fs, &IpacConfig::unbounded(0.5));
        let kept = tree.stats.kept.max(1);
        let bound = 8 * kept * kept + 8;
        assert!(
            tree.node_count() <= bound,
            "nodes {} exceed bound {bound} (kept {kept})",
            tree.node_count()
        );
    }
}

#[test]
fn deeper_trees_are_supersets() {
    let fs = functions(25, 21);
    let shallow = build_ipac_tree(Oid(0), &fs, &IpacConfig::with_depth(0.5, 1));
    let deep = build_ipac_tree(Oid(0), &fs, &IpacConfig::with_depth(0.5, 3));
    // Level-1 pieces are identical regardless of the depth bound.
    assert_eq!(shallow.level_pieces(1), deep.level_pieces(1));
    assert!(deep.node_count() >= shallow.node_count());
    assert!(deep.depth() >= shallow.depth());
}

#[test]
fn dag_dual_edge_counts() {
    let fs = functions(25, 33);
    let tree = build_ipac_tree(Oid(0), &fs, &IpacConfig::with_depth(0.5, 3));
    let (nodes, edges) = tree.to_dag();
    // A forest: edges = nodes - roots.
    assert_eq!(edges.len(), nodes.len() - tree.roots.len());
}
