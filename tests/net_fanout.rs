//! Fan-out integration of the encode-once push path: many subscribers
//! on the **identical** standing query receive bit-identical pushed
//! frames, and a slow capacity-1 subscriber falls back to lagged
//! resync without stalling healthy subscribers.
//!
//! Two layers are exercised against fresh exhaustive evaluation:
//!
//! * the `Arc` encode-once path — `WATCH`ers of one subscription name
//!   share the per-delta frame cache, so the raw bytes on every socket
//!   are equal;
//! * the shared-engine path — distinct `REGISTER CONTINUOUS` names on
//!   the same query share one maintained engine (`share_count() == 1`),
//!   and each name's pushed delta still folds onto the ground truth.

use std::sync::Arc;
use std::time::{Duration, Instant};
use uncertain_nn::modb::net::wire::{
    decode_payload, write_frame, Frame, WireRequest, WIRE_VERSION,
};
use uncertain_nn::modb::net::{NetClient, NetServer, NetServerConfig, WireOutput};
use uncertain_nn::modb::subscription::{SubAnswer, SubDelta};
use uncertain_nn::modb::{PrefilterPolicy, QueryPlanner};
use uncertain_nn::prelude::*;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;
const CHURN_OID: u64 = 77;
const QUERY: &str = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0";
const EVENT_TIMEOUT: Duration = Duration::from_secs(20);

fn straight(oid: u64, y: f64) -> UncertainTrajectory {
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(0.0, y, WINDOW.0), (30.0, y, WINDOW.1)]).unwrap(),
        RADIUS,
    )
    .unwrap()
}

fn populated_server() -> Arc<ModServer> {
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 3.0),
            straight(3, 9.0),
        ])
        .unwrap();
    Arc::new(server)
}

/// Fresh exhaustive evaluation of the standing query — ground truth.
fn fresh_answer(server: &ModServer) -> SubAnswer {
    SubAnswer::Intervals(
        QueryPlanner::new(PrefilterPolicy::Exhaustive)
            .plan(
                server.store().snapshot(),
                Oid(0),
                TimeInterval::new(WINDOW.0, WINDOW.1),
            )
            .expect("plans")
            .build_engine()
            .expect("builds")
            .answer_set(),
    )
}

/// A raw framed connection: `NetClient` decodes frames, but this test
/// must observe the exact **bytes** pushed to each subscriber.
struct RawClient {
    stream: std::net::TcpStream,
}

impl RawClient {
    fn connect(addr: std::net::SocketAddr) -> RawClient {
        let mut stream = std::net::TcpStream::connect(addr).expect("connects");
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: WIRE_VERSION,
            },
        )
        .expect("hello");
        match decode_payload(&read_raw_frame(&mut stream)[4..]).expect("welcome") {
            Frame::Welcome { .. } => {}
            other => panic!("expected Welcome, got {other:?}"),
        }
        RawClient { stream }
    }

    fn execute(&mut self, statement: &str) -> WireOutput {
        write_frame(
            &mut self.stream,
            &Frame::Request {
                id: 1,
                body: WireRequest::Statement(statement.to_string()),
            },
        )
        .expect("request");
        match decode_payload(&read_raw_frame(&mut self.stream)[4..]).expect("response") {
            Frame::Response { result, .. } => result.expect("statement accepted"),
            other => panic!("expected Response, got {other:?}"),
        }
    }

    /// Blocks until the next pushed event frame, returning its raw
    /// bytes (length prefix included).
    fn next_event_raw(&mut self) -> Vec<u8> {
        self.stream
            .set_read_timeout(Some(EVENT_TIMEOUT))
            .expect("timeout");
        loop {
            let raw = read_raw_frame(&mut self.stream);
            match decode_payload(&raw[4..]).expect("frame") {
                Frame::Event { .. } | Frame::RowEvent { .. } => return raw,
                _ => {}
            }
        }
    }
}

fn read_raw_frame(stream: &mut std::net::TcpStream) -> Vec<u8> {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("frame length");
    let n = u32::from_le_bytes(len) as usize;
    let mut buf = vec![0u8; 4 + n];
    buf[..4].copy_from_slice(&len);
    stream.read_exact(&mut buf[4..]).expect("frame payload");
    buf
}

/// N `WATCH`ers of one subscription receive byte-identical pushed
/// frames (the encode-once `Arc` path), and the delta they carry folds
/// the base answer onto a fresh exhaustive evaluation. A subscriber on
/// a *distinct name* over the same query shares the engine
/// (`share_count() == 1`) and folds onto the same ground truth.
#[test]
fn watchers_receive_bit_identical_frames() {
    let server = populated_server();
    server.subscribe("fan", QUERY).expect("registers");
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("binds");
    let addr = net.local_addr();

    const WATCHERS: usize = 6;
    let mut watchers: Vec<RawClient> = (0..WATCHERS)
        .map(|_| {
            let mut c = RawClient::connect(addr);
            match c.execute("WATCH fan") {
                WireOutput::Registered(info) => assert_eq!(info.name, "fan"),
                other => panic!("expected Registered, got {other:?}"),
            }
            c
        })
        .collect();
    // A twin subscription under its own name: same query, same engine.
    let mut twin = RawClient::connect(addr);
    match twin.execute(&format!("REGISTER CONTINUOUS {QUERY} AS twin")) {
        WireOutput::Registered(info) => assert_eq!(info.name, "twin"),
        other => panic!("expected Registered, got {other:?}"),
    }
    assert_eq!(
        server.subscription_registry().share_count(),
        1,
        "identical queries must share one engine"
    );

    let (base, _) = server
        .subscription_answer_with_epoch("fan")
        .expect("base answer");
    let (twin_base, _) = server
        .subscription_answer_with_epoch("twin")
        .expect("twin base");
    assert_eq!(base, twin_base, "shared engine, same answer");

    // One answer-changing commit; every watcher's pushed frame must be
    // byte-identical.
    server.register(straight(CHURN_OID, 0.4)).expect("inserts");
    let frames: Vec<Vec<u8>> = watchers.iter_mut().map(|c| c.next_event_raw()).collect();
    for frame in &frames[1..] {
        assert_eq!(
            frame, &frames[0],
            "watchers must receive bit-identical frames"
        );
    }

    // The shared delta folds the base answer onto ground truth.
    let truth = fresh_answer(&server);
    match decode_payload(&frames[0][4..]).expect("event") {
        Frame::Event {
            subscription,
            delta,
            lagged,
        } => {
            assert_eq!(subscription, "fan");
            assert!(!lagged);
            assert_eq!(base.apply(&SubDelta::Intervals(delta)), truth);
        }
        other => panic!("expected Event, got {other:?}"),
    }

    // The twin's frame differs (its name is embedded) but its delta
    // folds onto the identical ground truth — the shared-engine path.
    let twin_frame = twin.next_event_raw();
    assert_ne!(twin_frame, frames[0], "per-name frames embed the name");
    match decode_payload(&twin_frame[4..]).expect("event") {
        Frame::Event {
            subscription,
            delta,
            lagged,
        } => {
            assert_eq!(subscription, "twin");
            assert!(!lagged);
            assert_eq!(twin_base.apply(&SubDelta::Intervals(delta)), truth);
        }
        other => panic!("expected Event, got {other:?}"),
    }

    net.shutdown();
}

/// Folds pushed events (resyncing through the full answer on `lagged`)
/// until `target_epoch`, returning how many lagged events were seen.
fn fold_until(
    client: &mut NetClient,
    name: &str,
    folded: &mut SubAnswer,
    folded_epoch: &mut u64,
    target_epoch: u64,
) -> usize {
    let mut lagged_seen = 0;
    while *folded_epoch < target_epoch {
        let ev = client
            .next_event(Some(EVENT_TIMEOUT))
            .expect("event stream healthy")
            .unwrap_or_else(|| panic!("no event within {EVENT_TIMEOUT:?}"));
        if ev.subscription != name {
            continue;
        }
        if ev.lagged {
            lagged_seen += 1;
            let (answer, epoch) = client.subscription_answer(name).expect("resync fetch");
            *folded = answer;
            *folded_epoch = epoch;
        } else if ev.delta.epoch() > *folded_epoch {
            *folded = folded.apply(&ev.delta);
            *folded_epoch = ev.delta.epoch();
        }
    }
    lagged_seen
}

/// A slow subscriber (capacity-1 outbox, heavy pacing) squashes under
/// a commit burst and recovers through lagged resync, while fast
/// subscribers sharing the same engine receive every delta promptly —
/// the slow consumer stalls nobody but itself.
#[test]
fn slow_subscriber_lags_without_stalling_fast_ones() {
    let server = populated_server();
    server.subscribe("fan", QUERY).expect("registers");
    // Two delivery surfaces over one MOD and one shared engine: the
    // fast server at production defaults, the slow one with a
    // capacity-1 outbox and pacing far above a commit's round trip.
    let fast_net = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("binds");
    let pacing = Duration::from_millis(700);
    let slow_net = NetServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        NetServerConfig {
            outbox_capacity: 1,
            event_pacing: pacing,
        },
    )
    .expect("binds");

    let mut fast: Vec<NetClient> = (0..3)
        .map(|_| {
            let mut c = NetClient::connect(fast_net.local_addr()).expect("connects");
            match c.execute("WATCH fan").expect("watches") {
                WireOutput::Registered(info) => assert_eq!(info.name, "fan"),
                other => panic!("expected Registered, got {other:?}"),
            }
            c
        })
        .collect();
    let mut slow = NetClient::connect(slow_net.local_addr()).expect("connects");
    match slow.execute("WATCH fan").expect("watches") {
        WireOutput::Registered(info) => assert_eq!(info.name, "fan"),
        other => panic!("expected Registered, got {other:?}"),
    }
    let (base, base_epoch) = server
        .subscription_answer_with_epoch("fan")
        .expect("base answer");

    // A burst of membership flips: the slow outbox holds at most one
    // undrained event and its pacing spans the whole burst, so deltas
    // must squash (lagged); the fast subscribers' default-bound
    // outboxes absorb everything.
    const BURST: usize = 6;
    for round in 0..BURST {
        if round % 2 == 0 {
            server.register(straight(CHURN_OID, 0.4)).expect("inserts");
        } else {
            server.store().remove(Oid(CHURN_OID)).expect("removes");
        }
    }
    let (target, target_epoch) = server
        .subscription_answer_with_epoch("fan")
        .expect("maintained answer");

    // Fast subscribers drain the full burst promptly — well inside one
    // pacing period of the slow server, so the slow consumer cannot
    // have been in their delivery path.
    let fast_started = Instant::now();
    for client in &mut fast {
        let (mut folded, mut epoch) = (base.clone(), base_epoch);
        let lagged = fold_until(client, "fan", &mut folded, &mut epoch, target_epoch);
        assert_eq!(lagged, 0, "default bounds must not squash");
        assert_eq!(folded, target);
        assert_eq!(folded, fresh_answer(&server));
    }
    assert!(
        fast_started.elapsed() < pacing,
        "fast subscribers must not be stalled behind the slow one \
         (took {:?} with pacing {pacing:?})",
        fast_started.elapsed()
    );

    // The slow subscriber sees at least one squashed (lagged) event
    // and lands bit-identically after resync.
    let (mut folded, mut epoch) = (base, base_epoch);
    let lagged = fold_until(&mut slow, "fan", &mut folded, &mut epoch, target_epoch);
    assert!(lagged >= 1, "capacity-1 outbox must squash under a burst");
    assert_eq!(folded, target);
    assert_eq!(folded, fresh_answer(&server));

    for client in fast {
        client.close().expect("clean close");
    }
    slow.close().expect("clean close");
    fast_net.shutdown();
    slow_net.shutdown();
}
