//! Loopback integration of the network service layer: real sockets,
//! multiple concurrent clients, pushed subscription deltas.
//!
//! The acceptance property: a subscriber folding the deltas **pushed**
//! to it over TCP reproduces a fresh exhaustive evaluation of the final
//! store contents bit-for-bit — including after an induced `lagged`
//! resync, where server-side backpressure squashed deltas and the
//! client recovered from a full answer fetch.

use std::sync::Arc;
use std::time::Duration;
use uncertain_nn::core::answer::AnswerSet;
use uncertain_nn::core::probrows::ProbRowSet;
use uncertain_nn::modb::net::{NetClient, NetServer, NetServerConfig, WireOutput};
use uncertain_nn::modb::subscription::SubAnswer;
use uncertain_nn::modb::{PrefilterPolicy, QueryPlanner};
use uncertain_nn::prelude::*;
use unn_traj::uncertain::common_pdf_kind;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;
const EVENT_TIMEOUT: Duration = Duration::from_secs(10);

fn straight(oid: u64, y: f64) -> UncertainTrajectory {
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(0.0, y, WINDOW.0), (30.0, y, WINDOW.1)]).unwrap(),
        RADIUS,
    )
    .unwrap()
}

fn populated_server() -> Arc<ModServer> {
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 3.0),
            straight(3, 9.0),
        ])
        .unwrap();
    Arc::new(server)
}

/// Fresh exhaustive evaluation of the interval standing query against
/// the server's current contents — the bit-for-bit ground truth.
fn fresh_answer(server: &ModServer) -> AnswerSet {
    QueryPlanner::new(PrefilterPolicy::Exhaustive)
        .plan(
            server.store().snapshot(),
            Oid(0),
            TimeInterval::new(WINDOW.0, WINDOW.1),
        )
        .expect("plans")
        .build_engine()
        .expect("builds")
        .answer_set()
}

/// Row sampling density of the loopback row tests: sparse enough to
/// keep the P^WD quadrature cheap, dense enough to exercise real rows.
const ROW_TEST_SAMPLES: u32 = 24;

/// Fresh exhaustive probability-row evaluation (forward threshold or
/// reverse) — the row subscriptions' ground truth.
fn fresh_rows(server: &ModServer, reverse: bool) -> ProbRowSet {
    let snapshot = server.store().snapshot();
    let kind = common_pdf_kind(&snapshot)
        .expect("shared pdf")
        .expect("populated");
    let pdf = kind.convolve_with(&kind);
    let plan = QueryPlanner::new(PrefilterPolicy::Exhaustive)
        .plan(snapshot, Oid(0), TimeInterval::new(WINDOW.0, WINDOW.1))
        .expect("plans");
    if reverse {
        plan.build_reverse_engine()
            .expect("builds")
            .prob_row_set(pdf.as_ref(), ROW_TEST_SAMPLES)
    } else {
        plan.build_engine()
            .expect("builds")
            .prob_row_set(pdf.as_ref(), ROW_TEST_SAMPLES)
    }
}

const REGISTER: &str = "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                        AND PROB_NN(*, Tr0, TIME) > 0 AS pushed";

/// Registers a standing query over `subscriber`'s connection and
/// returns the base answer + epoch to fold from.
fn subscribe_stmt(subscriber: &mut NetClient, stmt: &str, name: &str) -> (SubAnswer, u64) {
    match subscriber.execute(stmt).expect("registers") {
        WireOutput::Registered(info) => assert_eq!(info.name, name),
        other => panic!("expected Registered, got {other:?}"),
    }
    subscriber.subscription_answer(name).expect("answer fetch")
}

/// Registers the interval standing query (the original test surface).
fn subscribe(subscriber: &mut NetClient) -> (SubAnswer, u64) {
    subscribe_stmt(subscriber, REGISTER, "pushed")
}

/// Folds pushed events for `name` into `folded` until it reaches
/// `target_epoch` (events for other subscriptions are ignored; lagged
/// events trigger a resync through the full answer). Returns how many
/// lagged events were seen.
fn fold_until_named(
    subscriber: &mut NetClient,
    name: &str,
    folded: &mut SubAnswer,
    folded_epoch: &mut u64,
    target_epoch: u64,
) -> usize {
    let mut lagged_seen = 0;
    while *folded_epoch < target_epoch {
        let ev = subscriber
            .next_event(Some(EVENT_TIMEOUT))
            .expect("event stream healthy")
            .unwrap_or_else(|| panic!("no event within {EVENT_TIMEOUT:?} (at epoch {folded_epoch}, want {target_epoch})"));
        if ev.subscription != name {
            continue;
        }
        if ev.lagged {
            lagged_seen += 1;
            // Resync: the full answer subsumes every delta at or before
            // its epoch (including this squashed one).
            let (answer, epoch) = subscriber.subscription_answer(name).expect("resync fetch");
            *folded = answer;
            *folded_epoch = epoch;
        } else if ev.delta.epoch() > *folded_epoch {
            *folded = folded.apply(&ev.delta);
            *folded_epoch = ev.delta.epoch();
        }
        // else: an in-flight delta a resync already subsumed — discard,
        // exactly as the documented client recovery protocol says.
    }
    lagged_seen
}

/// [`fold_until_named`] for the original "pushed" subscription.
fn fold_until(
    subscriber: &mut NetClient,
    folded: &mut SubAnswer,
    folded_epoch: &mut u64,
    target_epoch: u64,
) -> usize {
    fold_until_named(subscriber, "pushed", folded, folded_epoch, target_epoch)
}

/// Two writer clients mutate the MOD over the wire while a third holds a
/// subscription; the pushed deltas, folded client-side, equal a fresh
/// exhaustive evaluation bit-for-bit.
#[test]
fn pushed_deltas_fold_to_fresh_evaluation() {
    let server = populated_server();
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("binds");
    let addr = net.local_addr();

    let mut subscriber = NetClient::connect(addr).expect("subscriber connects");
    let subscribe_base = subscribe(&mut subscriber);
    let (mut folded, mut folded_epoch) = subscribe_base.clone();

    let mut writer_a = NetClient::connect(addr).expect("writer A connects");
    let mut writer_b = NetClient::connect(addr).expect("writer B connects");
    // The accept loop registers entries asynchronously; give it a beat.
    for _ in 0..200 {
        if net.active_connections() == 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(net.active_connections(), 3);

    // Interleaved mutations from both writers: insertions inside the
    // band, a GPS correction, removals, and far churn (which must push
    // nothing).
    writer_a.insert(straight(10, 0.4)).expect("insert");
    writer_b.insert(straight(11, 0.7)).expect("insert");
    writer_a.update(straight(10, 0.2)).expect("update");
    writer_b.insert(straight(90, 70_000.0)).expect("far insert");
    writer_a.remove(Oid(11)).expect("remove");
    writer_b.update(straight(2, 2.5)).expect("update");
    writer_a.remove(Oid(90)).expect("far remove");

    // Ground truth and termination point, read server-side: the
    // maintained answer, and the epoch of the last *emitted* delta (the
    // untouched pull feed records exactly the deltas that were pushed;
    // trailing skipped commits advance the watermark without emitting).
    let (target, target_epoch) = server
        .subscription_answer_with_epoch("pushed")
        .expect("server-side answer");
    // The watermark may trail the store epoch: the trailing far remove
    // is pruned by the registry's guard index without touching the
    // share (it used to be proof-skipped, which advanced the
    // watermark). Resync stays sound — nothing was pushed after it.
    assert!(target_epoch <= server.store().epoch());
    let pull_deltas = server.poll_subscription("pushed").expect("pull feed");
    let last_emitted = pull_deltas.last().expect("deltas were emitted").epoch();
    let lagged = fold_until(
        &mut subscriber,
        &mut folded,
        &mut folded_epoch,
        last_emitted,
    );
    assert_eq!(lagged, 0, "no backpressure expected at default bounds");
    // The folded pushed deltas equal a fresh exhaustive evaluation…
    assert_eq!(folded, target);
    assert_eq!(folded, SubAnswer::Intervals(fresh_answer(&server)));
    // …and the pull feed (same deltas, pull transport) folds identically.
    let (pull_base, _) = subscribe_base.clone();
    let pull_folded = pull_deltas.iter().fold(pull_base, |acc, d| acc.apply(d));
    assert_eq!(pull_folded, folded);
    // No further events are in flight (far churn pushed nothing).
    assert!(subscriber
        .next_event(Some(Duration::from_millis(200)))
        .expect("stream healthy")
        .is_none());

    writer_a.close().expect("clean close");
    writer_b.close().expect("clean close");
    subscriber.close().expect("clean close");
    net.shutdown();
}

/// With a capacity-1 outbox and a paced pusher, a burst of commits
/// forces server-side squashing: the client sees `lagged`, resyncs from
/// the full answer, and still lands bit-identically on the fresh
/// evaluation.
#[test]
fn lagged_stream_resyncs_bit_identically() {
    let server = populated_server();
    let net = NetServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        NetServerConfig {
            outbox_capacity: 1,
            // Far above one commit's round trip (debug builds included):
            // while the pusher paces one write, the remaining commits
            // pile into the capacity-1 outbox and must squash.
            event_pacing: Duration::from_millis(600),
        },
    )
    .expect("binds");
    let addr = net.local_addr();

    let mut subscriber = NetClient::connect(addr).expect("subscriber connects");
    let (mut folded, mut folded_epoch) = subscribe(&mut subscriber);

    // A rapid burst of answer-changing commits: the pusher is paced at
    // 40 ms/event with a 1-event outbox, so consecutive deltas *must*
    // squash while the first write sleeps.
    let mut writer = NetClient::connect(addr).expect("writer connects");
    for k in 0..8u64 {
        writer
            .insert(straight(20 + k, 0.2 + 0.05 * k as f64))
            .expect("insert");
    }
    let (target, _) = server
        .subscription_answer_with_epoch("pushed")
        .expect("server-side answer");
    let last_emitted = server
        .poll_subscription("pushed")
        .expect("pull feed")
        .last()
        .expect("deltas were emitted")
        .epoch();
    let lagged = fold_until(
        &mut subscriber,
        &mut folded,
        &mut folded_epoch,
        last_emitted,
    );
    assert!(lagged >= 1, "the burst must have squashed at least once");
    assert_eq!(folded, target);
    assert_eq!(
        folded,
        SubAnswer::Intervals(fresh_answer(&server)),
        "lagged resync diverged from fresh evaluation"
    );

    writer.close().expect("clean close");
    subscriber.close().expect("clean close");
    net.shutdown();
}

/// Subscriptions outlive their connection: the registry keeps
/// maintaining them server-side after the socket dies, and a fresh
/// client can still read the maintained answer. Server shutdown is
/// clean with clients attached.
#[test]
fn subscriptions_survive_disconnect_and_shutdown_is_clean() {
    let server = populated_server();
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("binds");
    let addr = net.local_addr();

    let mut subscriber = NetClient::connect(addr).expect("connects");
    subscribe(&mut subscriber);
    subscriber.close().expect("clean close");

    // The subscription still maintains after the connection died.
    server.store().insert(straight(30, 0.5)).unwrap();
    let mut reader = NetClient::connect(addr).expect("reconnects");
    let (answer, epoch) = reader
        .subscription_intervals("pushed")
        .expect("still there");
    assert_eq!(epoch, server.store().epoch());
    assert_eq!(answer, fresh_answer(&server));

    // Statements over the wire work end-to-end (errors render too).
    match reader.execute("SHOW SUBSCRIPTIONS").expect("lists") {
        WireOutput::Subscriptions(subs) => {
            assert_eq!(subs.len(), 1);
            assert_eq!(subs[0].name, "pushed");
        }
        other => panic!("expected Subscriptions, got {other:?}"),
    }
    assert!(reader.execute("SELECT bogus").is_err());

    // Shutdown with a live, idle connection attached: everything joins.
    net.shutdown();
    // The abandoned client now sees a dead socket.
    assert!(reader.next_event(Some(Duration::from_millis(500))).is_err());
}

const REGISTER_THRESHOLD: &str = "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN \
                                  [0, 60] AND PROB_NN(*, Tr0, TIME) > 0.3 AS hot";
const REGISTER_RNN: &str = "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN \
                            [0, 60] AND PROB_RNN(*, Tr0, TIME) > 0 AS rev";

/// Threshold and reverse standing queries over loopback TCP: the pushed
/// [`uncertain_nn::core::probrows::ProbRowDelta`] frames, folded
/// client-side, equal fresh exhaustive row evaluations bit-for-bit.
#[test]
fn row_subscription_deltas_fold_to_fresh_evaluation() {
    let server = populated_server();
    server
        .subscription_registry()
        .set_row_samples(ROW_TEST_SAMPLES);
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("binds");
    let addr = net.local_addr();

    let mut subscriber = NetClient::connect(addr).expect("subscriber connects");
    let (mut hot, mut hot_epoch) = subscribe_stmt(&mut subscriber, REGISTER_THRESHOLD, "hot");
    let (mut rev, mut rev_epoch) = subscribe_stmt(&mut subscriber, REGISTER_RNN, "rev");
    assert!(hot.as_rows().is_some(), "threshold subs answer with rows");
    assert!(rev.as_rows().is_some(), "reverse subs answer with rows");

    let mut writer = NetClient::connect(addr).expect("writer connects");
    writer.insert(straight(10, 0.4)).expect("insert");
    writer.update(straight(10, 0.2)).expect("update");
    writer.insert(straight(90, 70_000.0)).expect("far insert");
    writer.update(straight(2, 2.5)).expect("update");
    writer.remove(Oid(90)).expect("far remove");

    // Both subscriptions share one connection, so their pushed events
    // interleave: fold them in a single pass, dispatching each event to
    // its subscription's accumulator.
    let mut slots = [
        ("hot", &mut hot, &mut hot_epoch),
        ("rev", &mut rev, &mut rev_epoch),
    ];
    let mut targets = Vec::new();
    for (name, _, folded_epoch) in slots.iter() {
        let (target, _) = server
            .subscription_answer_with_epoch(name)
            .expect("server-side answer");
        let last_emitted = server
            .poll_subscription(name)
            .expect("pull feed")
            .last()
            .map(|d| d.epoch())
            .unwrap_or(**folded_epoch);
        targets.push((target, last_emitted));
    }
    while slots
        .iter()
        .zip(&targets)
        .any(|((_, _, epoch), (_, last))| **epoch < *last)
    {
        let ev = subscriber
            .next_event(Some(EVENT_TIMEOUT))
            .expect("event stream healthy")
            .expect("an event before the watermark");
        assert!(!ev.lagged, "no backpressure at default bounds");
        let (_, folded, folded_epoch) = slots
            .iter_mut()
            .find(|(name, _, _)| *name == ev.subscription)
            .expect("event for a registered subscription");
        if ev.delta.epoch() > **folded_epoch {
            **folded = folded.apply(&ev.delta);
            **folded_epoch = ev.delta.epoch();
        }
    }
    for ((name, folded, _), (target, _)) in slots.iter().zip(&targets) {
        assert_eq!(*folded, target, "{name}: folded != maintained");
    }
    assert_eq!(hot, SubAnswer::Rows(fresh_rows(&server, false)));
    assert_eq!(rev, SubAnswer::Rows(fresh_rows(&server, true)));

    writer.close().expect("clean close");
    subscriber.close().expect("clean close");
    net.shutdown();
}

/// The lagged-resync path for row subscriptions: a capacity-1 paced
/// outbox squashes a burst of row deltas; the client resyncs from the
/// full [`WireOutput::RowAnswer`] and still lands bit-identically on
/// the fresh evaluation.
#[test]
fn lagged_row_stream_resyncs_bit_identically() {
    let server = populated_server();
    server
        .subscription_registry()
        .set_row_samples(ROW_TEST_SAMPLES);
    let net = NetServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&server),
        NetServerConfig {
            outbox_capacity: 1,
            // The pacing must dominate the commit cadence for deltas to
            // provably pile up and squash while the pusher sleeps. The
            // batched column kernel keeps a maintenance round well under
            // 100ms per commit, so a sub-second pace suffices.
            event_pacing: Duration::from_millis(800),
        },
    )
    .expect("binds");
    let addr = net.local_addr();

    let mut subscriber = NetClient::connect(addr).expect("subscriber connects");
    let (mut folded, mut folded_epoch) = subscribe_stmt(&mut subscriber, REGISTER_THRESHOLD, "hot");

    let mut writer = NetClient::connect(addr).expect("writer connects");
    for k in 0..8u64 {
        writer
            .insert(straight(20 + k, 0.2 + 0.05 * k as f64))
            .expect("insert");
    }
    let (target, _) = server
        .subscription_answer_with_epoch("hot")
        .expect("server-side answer");
    let last_emitted = server
        .poll_subscription("hot")
        .expect("pull feed")
        .last()
        .expect("deltas were emitted")
        .epoch();
    let lagged = fold_until_named(
        &mut subscriber,
        "hot",
        &mut folded,
        &mut folded_epoch,
        last_emitted,
    );
    assert!(lagged >= 1, "the burst must have squashed at least once");
    assert_eq!(folded, target);
    assert_eq!(
        folded,
        SubAnswer::Rows(fresh_rows(&server, false)),
        "lagged row resync diverged from fresh evaluation"
    );

    writer.close().expect("clean close");
    subscriber.close().expect("clean close");
    net.shutdown();
}
