//! Property coverage of the wire protocol: **every** frame type
//! round-trips encode → decode bit-identically under randomly generated
//! contents, both as a raw payload and through the length-prefixed
//! stream form; malformed and truncated bytes are rejected rather than
//! mis-decoded.

use proptest::prelude::*;
use std::sync::Arc;
use uncertain_nn::core::answer::{AnswerDelta, AnswerEntry, AnswerSet};
use uncertain_nn::core::probrows::{ProbRow, ProbRowDelta, ProbRowSet, RowPerspective};
use uncertain_nn::modb::net::wire::{
    decode_payload, encode_payload, read_frame, write_frame, Frame, WireOutput, WireRequest,
    WIRE_VERSION,
};
use uncertain_nn::modb::telemetry::{HistogramSnapshot, MetricsSnapshot, TraceEvent, TraceStage};
use uncertain_nn::modb::{ReplOp, SubscriptionInfo, SubscriptionStats};
use uncertain_nn::prelude::*;

fn arb_oid() -> impl Strategy<Value = Oid> {
    (0u64..10_000).prop_map(Oid)
}

fn arb_intervals() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec((0.0..500.0f64, 0.0..20.0f64), 1..5).prop_map(|pairs| {
        IntervalSet::from_intervals(
            pairs
                .into_iter()
                .map(|(start, len)| TimeInterval::new(start, start + len)),
        )
    })
}

/// Entries with distinct, ascending oids (the `AnswerSet` invariant).
fn arb_entries() -> impl Strategy<Value = Vec<AnswerEntry>> {
    (
        prop::collection::btree_set(0u64..10_000, 0..6),
        prop::collection::vec(arb_intervals(), 6),
    )
        .prop_map(|(oids, ivs)| {
            oids.into_iter()
                .zip(ivs)
                .map(|(oid, intervals)| AnswerEntry {
                    oid: Oid(oid),
                    intervals,
                })
                .collect()
        })
}

fn arb_window() -> impl Strategy<Value = TimeInterval> {
    (0.0..100.0f64, 0.1..600.0f64).prop_map(|(s, len)| TimeInterval::new(s, s + len))
}

fn arb_rank() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), (1usize..8).prop_map(Some),]
}

fn arb_answer_set() -> impl Strategy<Value = AnswerSet> {
    (arb_oid(), arb_window(), arb_rank(), arb_entries())
        .prop_map(|(query, window, rank, entries)| AnswerSet::new(query, window, rank, entries))
}

fn arb_delta() -> impl Strategy<Value = AnswerDelta> {
    (
        0u64..1_000_000,
        arb_entries(),
        prop::collection::btree_set(0u64..10_000, 0..5),
    )
        .prop_map(|(epoch, upserts, removed)| AnswerDelta {
            epoch,
            upserts,
            removed: removed.into_iter().map(Oid).collect(),
        })
}

fn arb_string() -> impl Strategy<Value = String> {
    // Letters, digits, and a multibyte codepoint to exercise UTF-8.
    const ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789µ";
    prop::collection::vec(0usize..63, 0..12).prop_map(|idxs| {
        let alphabet: Vec<char> = ALPHABET.chars().collect();
        idxs.into_iter().map(|i| alphabet[i]).collect()
    })
}

fn arb_stats() -> impl Strategy<Value = SubscriptionStats> {
    (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000).prop_map(|(a, b, c, d)| SubscriptionStats {
        skipped: a,
        skipped_ops: a + b,
        patched: b,
        rebuilt: c,
        envelopes_carried: d,
        functions_reused: a ^ b,
        functions_built: c ^ d,
        rows_patched: a + c,
        perspectives_skipped: b ^ d,
        columns_refined: a + d,
        columns_coarse_only: b + c,
        visited: a + b + c,
        skipped_unvisited: d + a,
        batched_commits: c + b,
    })
}

const ARB_SAMPLES: u32 = 64;

/// Rows with distinct ascending oids and strictly ascending in-range
/// sample indices (the `ProbRowSet` invariants the codec enforces).
fn arb_prob_rows() -> impl Strategy<Value = Vec<ProbRow>> {
    (
        prop::collection::btree_set(0u64..10_000, 0..5),
        prop::collection::vec(
            (
                prop::collection::btree_set(0u32..ARB_SAMPLES, 1..6),
                prop::collection::vec(0.0..1.0f64, 6),
            ),
            5,
        ),
    )
        .prop_map(|(oids, contents)| {
            oids.into_iter()
                .zip(contents)
                .map(|(oid, (idxs, probs))| ProbRow {
                    oid: Oid(oid),
                    points: idxs.into_iter().zip(probs).collect(),
                })
                .collect()
        })
}

fn arb_perspective() -> impl Strategy<Value = RowPerspective> {
    prop_oneof![Just(RowPerspective::Forward), Just(RowPerspective::Reverse),]
}

fn arb_row_set() -> impl Strategy<Value = ProbRowSet> {
    (arb_oid(), arb_window(), arb_perspective(), arb_prob_rows()).prop_map(
        |(query, window, perspective, rows)| {
            ProbRowSet::new(query, window, perspective, ARB_SAMPLES, rows)
        },
    )
}

fn arb_row_delta() -> impl Strategy<Value = ProbRowDelta> {
    (
        0u64..1_000_000,
        arb_prob_rows(),
        prop::collection::btree_set(0u64..10_000, 0..5),
    )
        .prop_map(|(epoch, upserts, removed)| ProbRowDelta {
            epoch,
            samples: ARB_SAMPLES,
            upserts,
            removed: removed.into_iter().map(Oid).collect(),
        })
}

fn arb_info() -> impl Strategy<Value = SubscriptionInfo> {
    (
        (arb_string(), arb_string(), 0u64..1_000_000),
        (
            0usize..100,
            0usize..100,
            prop_oneof![Just(None), arb_string().prop_map(Some)],
            arb_stats(),
        ),
    )
        .prop_map(
            |((name, statement, last_epoch), (entries, pending_deltas, error, stats))| {
                SubscriptionInfo {
                    name,
                    statement,
                    last_epoch,
                    entries,
                    pending_deltas,
                    error,
                    stats,
                }
            },
        )
}

fn arb_trajectory() -> impl Strategy<Value = UncertainTrajectory> {
    (
        0u64..10_000,
        prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 2..6),
        0.1..2.0f64,
        prop_oneof![
            Just(None),
            (0.05..0.5f64).prop_map(Some), // sigma as a fraction of r
        ],
    )
        .prop_map(|(oid, pts, radius, sigma_frac)| {
            let triples: Vec<(f64, f64, f64)> = pts
                .into_iter()
                .enumerate()
                .map(|(k, (x, y))| (x, y, k as f64 * 7.5))
                .collect();
            let tr = Trajectory::from_triples(Oid(oid), &triples).unwrap();
            match sigma_frac {
                None => UncertainTrajectory::with_uniform_pdf(tr, radius).unwrap(),
                Some(f) => UncertainTrajectory::new(
                    tr,
                    radius,
                    PdfKind::TruncatedGaussian {
                        radius,
                        sigma: f * radius,
                    },
                )
                .unwrap(),
            }
        })
}

fn arb_request() -> impl Strategy<Value = WireRequest> {
    prop_oneof![
        arb_string().prop_map(WireRequest::Statement),
        arb_trajectory().prop_map(WireRequest::Insert),
        arb_trajectory().prop_map(WireRequest::Update),
        arb_oid().prop_map(WireRequest::Remove),
        arb_string().prop_map(WireRequest::SubscriptionAnswer),
        (0u64..1_000_000).prop_map(|from_epoch| WireRequest::Follow { from_epoch }),
    ]
}

/// Snapshot contents with distinct ascending oids (the `Resync`
/// invariant the codec enforces).
fn arb_snapshot_objects() -> impl Strategy<Value = Vec<UncertainTrajectory>> {
    (
        prop::collection::btree_set(0u64..10_000, 0..4),
        prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64, 0.1..2.0f64), 4),
    )
        .prop_map(|(oids, params)| {
            oids.into_iter()
                .zip(params)
                .map(|(oid, (x, y, radius))| {
                    let tr = Trajectory::from_triples(
                        Oid(oid),
                        &[(x, y, 0.0), (x + 10.0, y + 5.0, 30.0)],
                    )
                    .unwrap();
                    UncertainTrajectory::with_uniform_pdf(tr, radius).unwrap()
                })
                .collect()
        })
}

fn arb_repl_ops() -> impl Strategy<Value = Vec<ReplOp>> {
    prop::collection::vec(
        prop_oneof![
            arb_trajectory().prop_map(|tr| ReplOp::Insert(Arc::new(tr))),
            arb_oid().prop_map(ReplOp::Remove),
            Just(ReplOp::Clear),
        ],
        0..5,
    )
}

/// Sparse histogram buckets: strictly ascending in-range indices (the
/// codec invariant), with a consistent total count.
fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::btree_set(0u8..64, 0..6),
        prop::collection::vec(1u64..1_000, 6),
        0u64..1_000_000_000,
        0u64..1_000_000_000,
    )
        .prop_map(|(idxs, counts, sum, max)| {
            let buckets: Vec<(u8, u64)> = idxs.into_iter().zip(counts).collect();
            HistogramSnapshot {
                count: buckets.iter().map(|(_, c)| c).sum(),
                sum,
                max,
                buckets,
            }
        })
}

fn arb_metrics() -> impl Strategy<Value = MetricsSnapshot> {
    (
        prop::collection::vec((arb_string(), 0u64..1_000_000), 0..5),
        prop::collection::vec((arb_string(), 0u64..1_000_000), 0..5),
        prop::collection::vec((arb_string(), arb_histogram()), 0..4),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
}

/// Events with every valid stage code (the codec rejects unknown ones).
fn arb_trace_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec(
        (
            0u64..1_000_000,
            0u8..8,
            0u64..10_000,
            0u64..100_000,
            0u64..1_000_000_000,
        )
            .prop_map(|(epoch, stage, share, detail, dur_ns)| TraceEvent {
                epoch,
                stage: TraceStage::from_u8(stage).expect("0..8 are valid stage codes"),
                share,
                detail,
                dur_ns,
            }),
        0..6,
    )
}

fn arb_output() -> impl Strategy<Value = WireOutput> {
    prop_oneof![
        (0u64..2).prop_map(|b| WireOutput::Boolean(b == 1)),
        prop::collection::vec((arb_oid(), 0.0..1.0f64), 0..6).prop_map(WireOutput::Objects),
        arb_info().prop_map(WireOutput::Registered),
        arb_string().prop_map(WireOutput::Unregistered),
        prop::collection::vec(arb_info(), 0..4).prop_map(WireOutput::Subscriptions),
        (0u64..1_000_000, arb_answer_set())
            .prop_map(|(epoch, answer)| WireOutput::Answer { epoch, answer }),
        Just(WireOutput::Done),
        (0u64..1_000_000, arb_row_set())
            .prop_map(|(epoch, rows)| WireOutput::RowAnswer { epoch, rows }),
        (0u64..1_000_000).prop_map(|epoch| WireOutput::FollowOk { epoch }),
        (0u64..1_000_000, arb_snapshot_objects())
            .prop_map(|(epoch, objects)| WireOutput::Resync { epoch, objects }),
        arb_metrics().prop_map(WireOutput::Metrics),
        (0u64..1_000_000, arb_trace_events())
            .prop_map(|(epoch, events)| WireOutput::Trace { epoch, events }),
    ]
}

/// Every frame variant, with generated contents.
fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::Hello {
            version: WIRE_VERSION
        }),
        (0u64..1_000_000).prop_map(|epoch| Frame::Welcome {
            version: WIRE_VERSION,
            epoch
        }),
        (0u64..1_000_000, arb_request()).prop_map(|(id, body)| Frame::Request { id, body }),
        (0u64..1_000_000, arb_output()).prop_map(|(id, out)| Frame::Response {
            id,
            result: Ok(out)
        }),
        (0u64..1_000_000, arb_string()).prop_map(|(id, msg)| Frame::Response {
            id,
            result: Err(msg)
        }),
        (arb_string(), arb_delta(), 0u64..2).prop_map(|(subscription, delta, lag)| Frame::Event {
            subscription,
            delta,
            lagged: lag == 1
        }),
        (arb_string(), arb_row_delta(), 0u64..2).prop_map(|(subscription, delta, lag)| {
            Frame::RowEvent {
                subscription,
                delta,
                lagged: lag == 1,
            }
        }),
        (0u64..1_000_000, arb_repl_ops()).prop_map(|(epoch, ops)| Frame::ReplDelta { epoch, ops }),
        (0u64..1_000_000).prop_map(|epoch| Frame::ReplLagged { epoch }),
        Just(Frame::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every frame type round-trips bit-identically, both as a bare
    /// payload and through the length-prefixed stream form.
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let payload = encode_payload(&frame);
        let decoded = decode_payload(&payload).expect("valid payload decodes");
        prop_assert_eq!(&decoded, &frame);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).expect("write succeeds");
        let from_stream = read_frame(&mut stream.as_slice()).expect("stream decodes");
        prop_assert_eq!(&from_stream, &frame);
    }

    /// No strict prefix of a valid payload decodes (truncation is always
    /// an error, never a silent mis-decode).
    #[test]
    fn truncated_payloads_are_rejected(frame in arb_frame()) {
        let payload = encode_payload(&frame);
        for cut in 0..payload.len() {
            prop_assert!(
                decode_payload(&payload[..cut]).is_err(),
                "prefix of {} bytes decoded",
                cut
            );
        }
    }

    /// Appending garbage after a frame body is rejected (the codec
    /// accounts for every byte).
    #[test]
    fn trailing_bytes_are_rejected(frame in arb_frame()) {
        let mut payload = encode_payload(&frame);
        payload.push(0x00);
        prop_assert!(decode_payload(&payload).is_err());
    }
}

/// The metrics decoder enforces the histogram-bucket invariants the
/// encoder relies on: indices strictly ascending and below 64.
#[test]
fn malformed_metrics_buckets_are_rejected() {
    let hist = |buckets: Vec<(u8, u64)>| MetricsSnapshot {
        counters: vec![],
        gauges: vec![],
        histograms: vec![(
            "h".to_string(),
            HistogramSnapshot {
                count: buckets.iter().map(|(_, c)| c).sum(),
                sum: 10,
                max: 4,
                buckets,
            },
        )],
    };
    let encode = |snap: MetricsSnapshot| {
        encode_payload(&Frame::Response {
            id: 1,
            result: Ok(WireOutput::Metrics(snap)),
        })
    };
    assert!(decode_payload(&encode(hist(vec![(2, 3), (5, 1)]))).is_ok());
    // Out-of-range index (>= 64 buckets).
    assert!(decode_payload(&encode(hist(vec![(64, 1)]))).is_err());
    // Non-ascending indices.
    assert!(decode_payload(&encode(hist(vec![(5, 1), (2, 3)]))).is_err());
    assert!(decode_payload(&encode(hist(vec![(3, 1), (3, 1)]))).is_err());
}

/// An unknown trace-stage code is rejected rather than mis-decoded —
/// the enum can't represent it, so the check lives in the decoder.
#[test]
fn unknown_trace_stage_is_rejected() {
    let frame = Frame::Response {
        id: 1,
        result: Ok(WireOutput::Trace {
            epoch: 7,
            events: vec![TraceEvent {
                epoch: 7,
                stage: TraceStage::Visit,
                share: 3,
                detail: 1,
                dur_ns: 100,
            }],
        }),
    };
    let mut payload = encode_payload(&frame);
    // Layout: RESPONSE tag, id:u64, ok:u8, output tag, epoch:u64,
    // count:u32, then the event's epoch:u64 and the stage byte.
    let stage_at = 1 + 8 + 1 + 1 + 8 + 4 + 8;
    assert_eq!(payload[stage_at], TraceStage::Visit as u8);
    payload[stage_at] = 0xEE;
    assert!(decode_payload(&payload).is_err());
}

/// The constants table in `docs/WIRE.md` is normative documentation:
/// every `constant | value` row must match the code, or the spec is
/// lying about the bytes on the wire.
#[test]
fn wire_spec_constants_match_docs() {
    use uncertain_nn::modb::net::wire::{
        MAX_FRAME_LEN, TAG_BYE, TAG_EVENT, TAG_HELLO, TAG_REPL_DELTA, TAG_REPL_LAGGED, TAG_REQUEST,
        TAG_RESPONSE, TAG_ROW_EVENT, TAG_WELCOME, WIRE_MAGIC,
    };
    let spec = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/WIRE.md"))
        .expect("docs/WIRE.md exists");
    let expected: &[(&str, u64)] = &[
        ("WIRE_MAGIC", WIRE_MAGIC as u64),
        ("WIRE_VERSION", WIRE_VERSION as u64),
        ("MAX_FRAME_LEN", MAX_FRAME_LEN as u64),
        ("TAG_HELLO", TAG_HELLO as u64),
        ("TAG_WELCOME", TAG_WELCOME as u64),
        ("TAG_REQUEST", TAG_REQUEST as u64),
        ("TAG_RESPONSE", TAG_RESPONSE as u64),
        ("TAG_EVENT", TAG_EVENT as u64),
        ("TAG_BYE", TAG_BYE as u64),
        ("TAG_ROW_EVENT", TAG_ROW_EVENT as u64),
        ("TAG_REPL_DELTA", TAG_REPL_DELTA as u64),
        ("TAG_REPL_LAGGED", TAG_REPL_LAGGED as u64),
    ];
    for (name, value) in expected {
        // Rows look like: | `NAME` | `VALUE` | with VALUE decimal or 0x-hex.
        let row = spec
            .lines()
            .find_map(|line| {
                let rest = line.strip_prefix(&format!("| `{name}` | `"))?;
                rest.strip_suffix("` |")
            })
            .unwrap_or_else(|| panic!("docs/WIRE.md lacks a constants row for {name}"));
        let documented = match row.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => row.parse(),
        }
        .unwrap_or_else(|e| panic!("unparsable documented value for {name}: {row:?} ({e})"));
        assert_eq!(
            documented, *value,
            "docs/WIRE.md documents {name} = {documented}, code says {value}"
        );
    }
}
