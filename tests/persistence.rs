//! Persistence round-trips: a saved MOD reloads bit-identically and
//! answers queries identically.

use uncertain_nn::modb::persist;
use uncertain_nn::prelude::*;

#[test]
fn reloaded_mod_answers_identically() {
    let cfg = WorkloadConfig {
        num_objects: 25,
        seed: 55,
        ..WorkloadConfig::default()
    };
    let trs = generate_uncertain(&cfg, 0.5);

    let original = ModServer::new();
    original.register_all(trs.clone()).unwrap();

    // Save to a buffer and reload into a fresh server.
    let mut buf = Vec::new();
    persist::save_to(&original.store().snapshot(), &mut buf).unwrap();
    let reloaded_trs = persist::load_from(buf.as_slice()).unwrap();
    assert_eq!(reloaded_trs, original.store().snapshot().to_vec());

    let reloaded = ModServer::new();
    reloaded.register_all(reloaded_trs).unwrap();

    let window = TimeInterval::new(0.0, 60.0);
    let a = original.continuous_nn(Oid(3), window).unwrap();
    let b = reloaded.continuous_nn(Oid(3), window).unwrap();
    assert_eq!(a.sequence, b.sequence);

    let stmt = "SELECT * FROM MOD WHERE ATLEAST 0.25 OF TIME IN [0, 60] \
                AND PROB_NN(*, Tr3, TIME) > 0";
    assert_eq!(
        original.execute(stmt).unwrap(),
        reloaded.execute(stmt).unwrap()
    );
}

#[test]
fn file_round_trip_with_mixed_pdfs() {
    use uncertain_nn::prob::PdfKind;
    use uncertain_nn::traj::trajectory::Trajectory;

    let dir = std::env::temp_dir().join("unn_integration_persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mixed.mod");

    let store = ModStore::new();
    let t1 = Trajectory::from_triples(Oid(1), &[(0.0, 0.0, 0.0), (5.0, 5.0, 10.0)]).unwrap();
    let t2 = Trajectory::from_triples(Oid(2), &[(1.0, 0.0, 0.0), (6.0, 4.0, 10.0)]).unwrap();
    store
        .insert(UncertainTrajectory::with_uniform_pdf(t1, 0.5).unwrap())
        .unwrap();
    store
        .insert(
            UncertainTrajectory::new(
                t2,
                0.5,
                PdfKind::TruncatedGaussian {
                    radius: 0.5,
                    sigma: 0.2,
                },
            )
            .unwrap(),
        )
        .unwrap();
    persist::save(&store, &path).unwrap();
    let loaded = persist::load(&path).unwrap();
    assert_eq!(loaded, store.snapshot().to_vec());
    std::fs::remove_file(&path).unwrap();
}
