//! Integration tests of the snapshot → prefilter → envelope → execute
//! pipeline: the epoch-keyed engine cache's invalidation contract, and
//! the acceptance criterion that the default prefiltered + cached path
//! answers **identically** to the naive exhaustive path across every
//! query category.

use std::sync::Arc;
use uncertain_nn::modb::PrefilterPolicy;
use uncertain_nn::prelude::*;

fn fleet(n: usize, seed: u64) -> Vec<UncertainTrajectory> {
    generate_uncertain(&WorkloadConfig::with_objects(n, seed), 0.5)
}

fn server(n: usize, seed: u64) -> ModServer {
    let s = ModServer::new();
    s.register_all(fleet(n, seed)).unwrap();
    s
}

#[test]
fn snapshot_is_shared_and_epoch_stamped() {
    let s = server(20, 5);
    let a = s.store().snapshot();
    let b = s.store().snapshot();
    assert!(
        Arc::ptr_eq(&a, &b),
        "unchanged store must reuse the snapshot"
    );
    assert_eq!(a.epoch(), s.store().epoch());
}

#[test]
fn repeated_queries_hit_the_cache() {
    let s = server(30, 7);
    let w = TimeInterval::new(0.0, 60.0);
    let (_, stats1) = s.engine(Oid(0), w).unwrap();
    assert!(!stats1.cache_hit, "first query must build");
    let (_, stats2) = s.engine(Oid(0), w).unwrap();
    assert!(stats2.cache_hit, "second query must hit the cache");
    assert_eq!(stats1.prefiltered, stats2.prefiltered);
    assert_eq!(stats1.kept, stats2.kept);
    assert_eq!(stats1.envelope_pieces, stats2.envelope_pieces);
    let cs = s.cache_stats();
    assert!(cs.hits >= 1 && cs.misses >= 1, "{cs:?}");
    // A different window or query object is a distinct engine.
    let (_, stats3) = s.engine(Oid(1), w).unwrap();
    assert!(!stats3.cache_hit);
    let (_, stats4) = s.engine(Oid(0), TimeInterval::new(0.0, 30.0)).unwrap();
    assert!(!stats4.cache_hit);
}

#[test]
fn register_and_unregister_bump_the_epoch_and_force_rebuild() {
    let s = server(25, 11);
    let w = TimeInterval::new(0.0, 60.0);
    let e0 = s.store().epoch();
    let before = s.engine(Oid(0), w).unwrap().0.continuous_nn_answer();
    assert!(s.engine(Oid(0), w).unwrap().1.cache_hit);

    // Register a new object hugging the query: the epoch bumps, the
    // cached engine is stale, and the rebuilt answer must see Tr999.
    let query_tr = s.store().get(Oid(0)).unwrap();
    let hugger: Vec<(f64, f64, f64)> = query_tr
        .trajectory()
        .samples()
        .iter()
        .map(|smp| (smp.position.x + 0.05, smp.position.y, smp.time))
        .collect();
    s.register(
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(999), &hugger).unwrap(),
            0.5,
        )
        .unwrap(),
    )
    .unwrap();
    let e1 = s.store().epoch();
    assert!(e1 > e0, "register must bump the epoch");
    let (engine, stats) = s.engine(Oid(0), w).unwrap();
    assert!(!stats.cache_hit, "mutation must invalidate the cache");
    let after = engine.continuous_nn_answer();
    assert!(
        after.iter().all(|(o, _)| *o == Oid(999)),
        "the hugging object must now own the whole answer: {after:?}"
    );
    assert_ne!(before, after);

    // Unregister it again: another epoch bump, another rebuild, and the
    // answer returns to the original.
    s.store().remove(Oid(999)).unwrap();
    assert!(s.store().epoch() > e1, "remove must bump the epoch");
    let (engine, stats) = s.engine(Oid(0), w).unwrap();
    assert!(!stats.cache_hit);
    assert_eq!(engine.continuous_nn_answer(), before);
}

#[test]
fn cached_and_cold_answers_are_identical_across_uq_variants() {
    let s = server(40, 13);
    let w = TimeInterval::new(0.0, 60.0);
    let (cold, stats) = s.engine(Oid(0), w).unwrap();
    assert!(!stats.cache_hit);
    let (cached, stats) = s.engine(Oid(0), w).unwrap();
    assert!(stats.cache_hit);
    let oids: Vec<Oid> = s.store().oids();
    for oid in oids.iter().copied().filter(|o| *o != Oid(0)) {
        assert_eq!(cold.uq11_exists(oid), cached.uq11_exists(oid), "{oid}");
        assert_eq!(cold.uq12_always(oid), cached.uq12_always(oid), "{oid}");
        assert_eq!(cold.uq13_fraction(oid), cached.uq13_fraction(oid), "{oid}");
        for k in [1usize, 2, 3] {
            assert_eq!(
                cold.uq21_exists(oid, k),
                cached.uq21_exists(oid, k),
                "{oid} k={k}"
            );
            assert_eq!(
                cold.uq23_fraction(oid, k),
                cached.uq23_fraction(oid, k),
                "{oid} k={k}"
            );
        }
    }
    assert_eq!(cold.uq31_all(), cached.uq31_all());
    assert_eq!(cold.uq32_all(), cached.uq32_all());
    assert_eq!(cold.uq41_all(2), cached.uq41_all(2));
    assert_eq!(cold.continuous_nn_answer(), cached.continuous_nn_answer());
}

/// The acceptance criterion: the default prefiltered + cached pipeline
/// answers every query category identically to the exhaustive path, for
/// every prefilter backend.
#[test]
fn prefiltered_pipeline_matches_naive_path_on_all_query_categories() {
    let trs = fleet(60, 17);
    let w = (0.0, 60.0);
    let naive = ModServer::with_policy(PrefilterPolicy::Exhaustive);
    naive.register_all(trs.clone()).unwrap();
    for policy in [
        PrefilterPolicy::Scan { epochs: 8 },
        PrefilterPolicy::Grid { epochs: 8 },
        PrefilterPolicy::RTree { epochs: 8 },
    ] {
        let fast = ModServer::with_policy(policy);
        fast.register_all(trs.clone()).unwrap();
        let statements = [
            // Category 1: one target, all quantifiers.
            "SELECT Tr7 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr7, Tr0, TIME) > 0".to_string(),
            "SELECT Tr7 FROM MOD WHERE FORALL TIME IN [0, 60] AND PROB_NN(Tr7, Tr0, TIME) > 0".to_string(),
            "SELECT Tr31 FROM MOD WHERE ATLEAST 0.25 OF TIME IN [0, 60] AND PROB_NN(Tr31, Tr0, TIME) > 0".to_string(),
            "SELECT Tr12 FROM MOD WHERE AT 30 TIME IN [0, 60] AND PROB_NN(Tr12, Tr0, TIME) > 0".to_string(),
            // Category 2: rank-bounded single target.
            "SELECT Tr7 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr7, Tr0, TIME, RANK 2) > 0".to_string(),
            "SELECT Tr19 FROM MOD WHERE ATLEAST 0.1 OF TIME IN [0, 60] AND PROB_NN(Tr19, Tr0, TIME, RANK 3) > 0".to_string(),
            // Category 3: whole MOD.
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0".to_string(),
            "SELECT * FROM MOD WHERE FORALL TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0".to_string(),
            "SELECT * FROM MOD WHERE ATLEAST 0.4 OF TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0".to_string(),
            // Category 4: whole MOD, rank-bounded.
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME, RANK 2) > 0".to_string(),
            "SELECT * FROM MOD WHERE ATLEAST 0.2 OF TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME, RANK 3) > 0".to_string(),
            // §7 threshold extension.
            "SELECT * FROM MOD WHERE ATLEAST 0.2 OF TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0.5".to_string(),
            // §7 reverse NN.
            "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_RNN(*, Tr0, TIME) > 0".to_string(),
        ];
        for stmt in &statements {
            let a = naive.execute(stmt).unwrap();
            let b = fast.execute(stmt).unwrap();
            match (a, b) {
                (QueryOutput::Boolean(x), QueryOutput::Boolean(y)) => {
                    assert_eq!(x, y, "{policy:?}: {stmt}");
                }
                (QueryOutput::Objects(mut xs), QueryOutput::Objects(mut ys)) => {
                    xs.sort_by_key(|(o, _)| *o);
                    ys.sort_by_key(|(o, _)| *o);
                    let x_ids: Vec<Oid> = xs.iter().map(|(o, _)| *o).collect();
                    let y_ids: Vec<Oid> = ys.iter().map(|(o, _)| *o).collect();
                    assert_eq!(x_ids, y_ids, "{policy:?}: {stmt}");
                    for ((_, fx), (_, fy)) in xs.iter().zip(&ys) {
                        assert!(
                            (fx - fy).abs() < 1e-9,
                            "{policy:?}: fraction {fx} vs {fy} for {stmt}"
                        );
                    }
                }
                (a, b) => panic!("{policy:?}: shape mismatch {a:?} vs {b:?} for {stmt}"),
            }
        }
        // The crisp continuous answers agree too.
        let wi = TimeInterval::new(w.0, w.1);
        assert_eq!(
            naive.continuous_nn(Oid(0), wi).unwrap().sequence,
            fast.continuous_nn(Oid(0), wi).unwrap().sequence,
            "{policy:?}"
        );
        assert_eq!(
            naive.knn_answer(Oid(0), wi, 3).unwrap().cells(),
            fast.knn_answer(Oid(0), wi, 3).unwrap().cells(),
            "{policy:?}"
        );
    }
}

/// Regression: `ATLEAST 0 %` holds vacuously for every registered
/// object (fraction 0 + tolerance >= 0), including objects the
/// prefilter dropped — the prefiltered path must agree with the
/// exhaustive engine, not blanket-answer `false`.
#[test]
fn atleast_zero_matches_exhaustive_for_prefiltered_out_objects() {
    let mk = |oid: u64, y: f64| {
        UncertainTrajectory::with_uniform_pdf(
            Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (10.0, y, 10.0)]).unwrap(),
            0.5,
        )
        .unwrap()
    };
    // Tr3 sits 300 miles away: dropped by every prefilter.
    let trs = vec![mk(0, 0.0), mk(1, 1.0), mk(3, 300.0)];
    let stmt = "SELECT Tr3 FROM MOD WHERE ATLEAST 0 % OF TIME IN [0, 10] \
                AND PROB_NN(Tr3, Tr0, TIME) > 0";
    let exists = "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 10] \
                  AND PROB_NN(Tr3, Tr0, TIME) > 0";
    for policy in [
        PrefilterPolicy::Exhaustive,
        PrefilterPolicy::Scan { epochs: 4 },
        PrefilterPolicy::Grid { epochs: 4 },
        PrefilterPolicy::RTree { epochs: 4 },
    ] {
        let s = ModServer::with_policy(policy);
        s.register_all(trs.clone()).unwrap();
        assert_eq!(
            s.execute(stmt).unwrap(),
            QueryOutput::Boolean(true),
            "{policy:?}: ATLEAST 0 is vacuously true"
        );
        assert_eq!(
            s.execute(exists).unwrap(),
            QueryOutput::Boolean(false),
            "{policy:?}: EXISTS stays false for the far object"
        );
    }
}

#[test]
fn prefilter_actually_prunes_on_spread_out_workloads() {
    let s = server(80, 23);
    let w = TimeInterval::new(0.0, 60.0);
    let (_, stats) = s.engine(Oid(0), w).unwrap();
    assert_eq!(stats.candidates, 79);
    assert!(
        stats.prefiltered < stats.candidates,
        "expected the scan prefilter to drop someone: {stats:?}"
    );
    assert!(stats.kept <= stats.prefiltered);
}

#[test]
fn stale_snapshots_stay_usable_after_mutation() {
    let s = server(10, 31);
    let old = s.store().snapshot();
    s.store().remove(Oid(3)).unwrap();
    // The old snapshot still answers reads at its own epoch.
    assert!(old.contains(Oid(3)));
    let new = s.store().snapshot();
    assert!(!new.contains(Oid(3)));
    assert!(new.epoch() > old.epoch());
}
