//! Property tests of the adaptive probability kernel's contract with
//! the row-subscription ladder:
//!
//! * **tolerance 0 (the default)** — maintained rows stay bit-identical
//!   to a fresh full-density exhaustive evaluation across random
//!   mutation interleavings and prefilter backends, and the adaptive
//!   counters never move;
//! * **tolerance > 0** — every maintained probability classifies on the
//!   same side of the subscription threshold as the full-density value,
//!   and deviates from it by no more than the stated bound (columns the
//!   ladder cannot certify are refined to full density, so they stay
//!   bit-exact).

use proptest::prelude::*;
use uncertain_nn::core::probrows::ProbRowSet;
use uncertain_nn::modb::subscription::SubAnswer;
use uncertain_nn::modb::{PrefilterPolicy, QueryPlanner};
use uncertain_nn::prelude::*;
use unn_traj::uncertain::common_pdf_kind;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;
/// The threshold of the standing queries under test.
const P: f64 = 0.25;

fn make_tr(oid: u64, wps: &[(f64, f64)]) -> UncertainTrajectory {
    let n = wps.len().max(2);
    let step = (WINDOW.1 - WINDOW.0) / (n - 1) as f64;
    let triples: Vec<(f64, f64, f64)> = wps
        .iter()
        .cycle()
        .take(n)
        .enumerate()
        .map(|(k, (x, y))| (*x, *y, WINDOW.0 + k as f64 * step))
        .collect();
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &triples).unwrap(),
        RADIUS,
    )
    .unwrap()
}

/// Fresh exhaustive full-density forward row evaluation — the ground
/// truth both tolerance regimes are judged against.
fn fresh_rows(server: &ModServer, query: Oid) -> ProbRowSet {
    let samples = server.subscription_registry().row_samples();
    let snapshot = server.store().snapshot();
    let kind = common_pdf_kind(&snapshot)
        .expect("shared pdf")
        .expect("populated");
    let pdf = kind.convolve_with(&kind);
    QueryPlanner::new(PrefilterPolicy::Exhaustive)
        .plan(snapshot, query, TimeInterval::new(WINDOW.0, WINDOW.1))
        .expect("plans")
        .build_engine()
        .expect("builds")
        .prob_row_set(pdf.as_ref(), samples)
}

fn maintained_rows(server: &ModServer, name: &str) -> ProbRowSet {
    match server.subscription_answer(name).unwrap() {
        SubAnswer::Rows(r) => r,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// A populated server with one threshold row subscription at the given
/// tolerance.
fn server_with_hot(policy: PrefilterPolicy, base: &[Vec<(f64, f64)>], tolerance: f64) -> ModServer {
    let server = ModServer::with_policy(policy);
    server.subscription_registry().set_row_samples(12);
    server.subscription_registry().set_row_tolerance(tolerance);
    server
        .register_all(
            base.iter()
                .enumerate()
                .map(|(i, wps)| make_tr(i as u64, wps)),
        )
        .unwrap();
    server
        .subscribe(
            "hot",
            &format!(
                "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                 AND PROB_NN(*, Tr0, TIME) > {P}"
            ),
        )
        .unwrap();
    server
}

/// One scripted mutation: (kind, target selector, waypoints).
type OpSpec = (usize, usize, Vec<(f64, f64)>);

fn arb_waypoints() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 4)
}

fn arb_script() -> impl Strategy<Value = (Vec<Vec<(f64, f64)>>, Vec<OpSpec>)> {
    (
        prop::collection::vec(arb_waypoints(), 6..=10),
        prop::collection::vec((0usize..3, 0usize..64, arb_waypoints()), 3..=8),
    )
}

/// Replays the mutation script against the server (insert / remove /
/// single-commit update, query object kept alive).
fn run_script(server: &ModServer, base_len: usize, ops: &[OpSpec]) {
    let mut next_oid = base_len as u64;
    for (kind, target, wps) in ops {
        match kind {
            0 => {
                server.register(make_tr(next_oid, wps)).unwrap();
                next_oid += 1;
            }
            1 => {
                let oids = server.store().oids();
                if oids.len() > 3 {
                    let victim = oids[1 + target % (oids.len() - 1)];
                    server.store().remove(victim).unwrap();
                }
            }
            _ => {
                let oids = server.store().oids();
                let victim = oids[target % oids.len()];
                let mut moved = wps.clone();
                moved[0].0 += 1.0;
                server.store().update(make_tr(victim.0, &moved));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// With the tolerance knob at its default 0, the adaptive ladder is
    /// provably inert: maintained rows equal the fresh full-density
    /// evaluation bit-for-bit on every backend, and no column is ever
    /// classified by the coarse rungs.
    #[test]
    fn zero_tolerance_rows_bit_identical(script in arb_script()) {
        let (base, ops) = script;
        for policy in [
            PrefilterPolicy::Scan { epochs: 6 },
            PrefilterPolicy::RTree { epochs: 6 },
        ] {
            let server = server_with_hot(policy, &base, 0.0);
            run_script(&server, base.len(), &ops);
            let info = server
                .subscriptions()
                .into_iter()
                .find(|s| s.name == "hot")
                .unwrap();
            prop_assert!(info.error.is_none(), "{policy:?}: parked on {:?}", info.error);
            prop_assert_eq!(
                info.stats.columns_refined + info.stats.columns_coarse_only,
                0,
                "{:?}: the ladder must stay inert at tolerance 0",
                policy
            );
            let maintained = maintained_rows(&server, "hot");
            let fresh = fresh_rows(&server, Oid(0));
            prop_assert_eq!(
                &maintained,
                &fresh,
                "{:?}: tolerance-0 maintained rows != fresh full density",
                policy
            );
        }
    }

    /// With a positive tolerance, every maintained probability lands on
    /// the same side of the subscription threshold as the full-density
    /// value and within `2·tolerance` of it (the ladder accepts a
    /// coarse value only when its error bound is within the tolerance
    /// AND clear of the threshold by bound + tolerance; everything else
    /// is refined to full density).
    #[test]
    fn adaptive_rows_classify_like_full_density(
        script in arb_script(),
        tol in 1e-4..5e-3f64,
    ) {
        let (base, ops) = script;
        let server = server_with_hot(PrefilterPolicy::Scan { epochs: 6 }, &base, tol);
        run_script(&server, base.len(), &ops);
        let info = server
            .subscriptions()
            .into_iter()
            .find(|s| s.name == "hot")
            .unwrap();
        prop_assert!(info.error.is_none(), "parked on {:?}", info.error);
        let maintained = maintained_rows(&server, "hot");
        let fresh = fresh_rows(&server, Oid(0));
        for (row, exact) in maintained.rows().iter().zip(fresh.rows()) {
            prop_assert_eq!(row.oid, exact.oid);
            for ((k, p), (ke, pe)) in row.points.iter().zip(&exact.points) {
                prop_assert_eq!(k, ke);
                prop_assert_eq!(
                    *p > P, *pe > P,
                    "oid {:?} sample {}: adaptive {} vs full {} straddle p={}",
                    row.oid, k, p, pe, P
                );
                prop_assert!(
                    (p - pe).abs() <= 2.0 * tol,
                    "oid {:?} sample {}: adaptive {} deviates from full {} beyond 2*{}",
                    row.oid, k, p, pe, tol
                );
            }
        }
    }
}

/// The refinement counters are observable through the stats surface:
/// with a tolerance set, in-band churn drives dirty columns through the
/// ladder and lands each in exactly one of the two counters.
#[test]
fn adaptive_counters_move_under_churn() {
    let base: Vec<Vec<(f64, f64)>> = (0..8)
        .map(|k| vec![(0.0, k as f64), (30.0, k as f64)])
        .collect();
    let server = server_with_hot(PrefilterPolicy::Scan { epochs: 6 }, &base, 1e-3);
    for shift in 1..4 {
        let victim = Oid(3);
        let moved: Vec<(f64, f64)> =
            vec![(0.1 * shift as f64, 3.0), (30.0 + 0.1 * shift as f64, 3.0)];
        server.store().update(make_tr(victim.0, &moved));
    }
    let info = server
        .subscriptions()
        .into_iter()
        .find(|s| s.name == "hot")
        .unwrap();
    assert!(info.error.is_none(), "parked on {:?}", info.error);
    assert!(
        info.stats.columns_refined + info.stats.columns_coarse_only > 0,
        "in-band churn with a tolerance must exercise the ladder: {:?}",
        info.stats
    );
}
