//! Property-based tests over randomly generated trajectory
//! configurations: the envelope algorithms, the band, and the queries
//! must agree with brute-force references on arbitrary inputs, not just
//! the curated unit-test scenarios.

use proptest::prelude::*;
use uncertain_nn::core::oracle;
use uncertain_nn::core::query::QueryEngine;
use uncertain_nn::core::{lower_envelope, lower_envelope_naive};
use uncertain_nn::prelude::*;
use uncertain_nn::traj::DistanceFunction;

/// Strategy: a set of 2..=10 trajectories, each a 2-4 waypoint polyline
/// over [0, 30] inside a 50×50 region, with shared sample times (the
/// synchronized-epoch model of the paper).
fn arb_population() -> impl Strategy<Value = Vec<Trajectory>> {
    let count = 3usize..=10;
    count.prop_flat_map(move |n| {
        prop::collection::vec(
            prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 4), // 4 waypoints = 3 legs
            n,
        )
        .prop_map(|objs| {
            objs.into_iter()
                .enumerate()
                .map(|(i, wps)| {
                    let samples: Vec<(f64, f64, f64)> = wps
                        .into_iter()
                        .enumerate()
                        .map(|(k, (x, y))| (x, y, k as f64 * 10.0))
                        .collect();
                    Trajectory::from_triples(Oid(i as u64), &samples).unwrap()
                })
                .collect()
        })
    })
}

fn build_fs(trs: &[Trajectory]) -> Vec<DistanceFunction> {
    difference_distances(&trs[0], trs, &TimeInterval::new(0.0, 30.0)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn envelope_equals_pointwise_minimum(trs in arb_population()) {
        let fs = build_fs(&trs);
        let le = lower_envelope(&fs);
        for k in 0..=300 {
            let t = k as f64 * 0.1;
            let (min, _) = oracle::min_at(&fs, t).unwrap();
            let got = le.eval(t).unwrap();
            prop_assert!((got - min).abs() < 1e-7, "t={t}: {got} vs {min}");
        }
    }

    #[test]
    fn naive_and_divide_conquer_agree(trs in arb_population()) {
        let fs = build_fs(&trs);
        let a = lower_envelope(&fs);
        let b = lower_envelope_naive(&fs);
        for k in 0..=300 {
            let t = k as f64 * 0.1;
            prop_assert!(
                (a.eval(t).unwrap() - b.eval(t).unwrap()).abs() < 1e-7,
                "t={t}"
            );
        }
    }

    #[test]
    fn envelope_piece_count_within_davenport_schinzel(trs in arb_population()) {
        let fs = build_fs(&trs);
        let le = lower_envelope(&fs);
        // λ₂ bound per single-segment family, times the per-function
        // segment count (3 legs), plus slack for the epoch breakpoints.
        let n = fs.len();
        let segs = 3;
        prop_assert!(
            le.len() <= segs * (2 * n - 1) + segs,
            "{} pieces for {n} functions",
            le.len()
        );
    }

    #[test]
    fn inside_band_fraction_matches_sampling(trs in arb_population()) {
        let fs = build_fs(&trs);
        let radius = 0.5;
        let engine = QueryEngine::new(trs[0].oid(), fs.clone(), radius);
        let w = TimeInterval::new(0.0, 30.0);
        for f in fs.iter().take(3) {
            let frac = engine.uq13_fraction(f.owner()).unwrap();
            let sampled =
                oracle::inside_fraction(&fs, f.owner(), 4.0 * radius, w, 1500)
                    .unwrap();
            prop_assert!(
                (frac - sampled).abs() < 0.02,
                "{}: engine {frac} vs sampled {sampled}",
                f.owner()
            );
        }
    }

    #[test]
    fn uq11_iff_positive_fraction(trs in arb_population()) {
        let fs = build_fs(&trs);
        let engine = QueryEngine::new(trs[0].oid(), fs.clone(), 0.5);
        for f in &fs {
            let exists = engine.uq11_exists(f.owner()).unwrap();
            let frac = engine.uq13_fraction(f.owner()).unwrap();
            // exists implies measurable fraction can still be ~0 at a
            // tangency; allow the one-sided implication both ways with a
            // tolerance window.
            if frac > 1e-6 {
                prop_assert!(exists, "{} has frac {frac} but not exists", f.owner());
            }
            if !exists {
                prop_assert!(frac < 1e-6, "{} not exists but frac {frac}", f.owner());
            }
        }
    }
}
