//! End-to-end tests of the §4 query language against generated workloads,
//! including consistency between the SQL surface and the programmatic
//! engine API.

use uncertain_nn::modb::ql::{parse, Quantifier, Target};
use uncertain_nn::prelude::*;

fn server(n: usize, seed: u64) -> ModServer {
    let cfg = WorkloadConfig {
        num_objects: n,
        seed,
        ..WorkloadConfig::default()
    };
    let s = ModServer::new();
    s.register_all(generate_uncertain(&cfg, 0.5)).unwrap();
    s
}

#[test]
fn sql_and_api_agree_on_category_1() {
    let s = server(40, 3);
    let (engine, _) = s.engine(Oid(0), TimeInterval::new(0.0, 60.0)).unwrap();
    for target in 1..40u64 {
        let stmt = format!(
            "SELECT Tr{target} FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(Tr{target}, Tr0, TIME) > 0"
        );
        let via_sql = match s.execute(&stmt).unwrap() {
            QueryOutput::Boolean(b) => b,
            other => panic!("expected Boolean, got {other:?}"),
        };
        // `None` means the default prefiltered engine dropped the target:
        // provably outside the 4r band, so the predicate is false.
        let via_api = engine.uq11_exists(Oid(target)).unwrap_or(false);
        assert_eq!(via_sql, via_api, "target {target}");
    }
}

#[test]
fn sql_and_api_agree_on_category_3() {
    let s = server(30, 9);
    let (engine, _) = s.engine(Oid(5), TimeInterval::new(0.0, 60.0)).unwrap();
    let stmt = "SELECT * FROM MOD WHERE ATLEAST 0.3 OF TIME IN [0, 60] \
                AND PROB_NN(*, Tr5, TIME) > 0";
    let via_sql = match s.execute(stmt).unwrap() {
        QueryOutput::Objects(objs) => objs,
        other => panic!("expected Objects, got {other:?}"),
    };
    let mut via_api = engine.uq33_all(0.3);
    let mut via_sql_sorted = via_sql.clone();
    via_api.sort_by_key(|(o, _)| *o);
    via_sql_sorted.sort_by_key(|(o, _)| *o);
    assert_eq!(via_api.len(), via_sql_sorted.len());
    for ((o1, f1), (o2, f2)) in via_api.iter().zip(&via_sql_sorted) {
        assert_eq!(o1, o2);
        assert!((f1 - f2).abs() < 1e-9);
    }
}

#[test]
fn rank_queries_through_sql() {
    let s = server(25, 17);
    let stmt = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                AND PROB_NN(*, Tr0, TIME, RANK 2) > 0";
    let rank2 = match s.execute(stmt).unwrap() {
        QueryOutput::Objects(objs) => objs,
        other => panic!("expected Objects, got {other:?}"),
    };
    let stmt1 = "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                 AND PROB_NN(*, Tr0, TIME, RANK 1) > 0";
    let rank1 = match s.execute(stmt1).unwrap() {
        QueryOutput::Objects(objs) => objs,
        other => panic!("expected Objects, got {other:?}"),
    };
    // Rank-1 qualifiers are a subset of rank-2 qualifiers.
    let ids2: Vec<Oid> = rank2.iter().map(|(o, _)| *o).collect();
    for (o, _) in &rank1 {
        assert!(ids2.contains(o), "{o} at rank 1 missing from rank 2");
    }
    assert!(rank1.len() <= rank2.len());
}

#[test]
fn parse_display_round_trip() {
    let statements = [
        "SELECT Tr3 FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr3, Tr0, TIME) > 0",
        "SELECT * FROM MOD WHERE FORALL TIME IN [5, 25] AND PROB_NN(*, Tr2, TIME) > 0",
        "SELECT Tr9 FROM MOD WHERE ATLEAST 0.75 OF TIME IN [0, 10] AND PROB_NN(Tr9, Tr1, TIME, RANK 3) > 0",
        "SELECT Tr4 FROM MOD WHERE AT 12 TIME IN [0, 30] AND PROB_NN(Tr4, Tr8, TIME) > 0",
    ];
    for stmt in statements {
        let q1 = parse(stmt).unwrap();
        let q2 = parse(&q1.to_string()).unwrap();
        assert_eq!(q1, q2, "round trip failed for '{stmt}'");
    }
}

#[test]
fn quantifier_semantics_are_ordered() {
    // FORALL ⇒ ATLEAST x ⇒ EXISTS for every object and any x ∈ (0, 1].
    let s = server(35, 29);
    for target in [1u64, 7, 13, 22] {
        let forall = format!(
            "SELECT Tr{target} FROM MOD WHERE FORALL TIME IN [0, 60] AND PROB_NN(Tr{target}, Tr0, TIME) > 0"
        );
        let atleast = format!(
            "SELECT Tr{target} FROM MOD WHERE ATLEAST 0.5 OF TIME IN [0, 60] AND PROB_NN(Tr{target}, Tr0, TIME) > 0"
        );
        let exists = format!(
            "SELECT Tr{target} FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(Tr{target}, Tr0, TIME) > 0"
        );
        let get = |stmt: &str| match s.execute(stmt).unwrap() {
            QueryOutput::Boolean(b) => b,
            other => panic!("expected Boolean, got {other:?}"),
        };
        let (f, a, e) = (get(&forall), get(&atleast), get(&exists));
        assert!(!f || a, "FORALL true but ATLEAST false for {target}");
        assert!(!a || e, "ATLEAST true but EXISTS false for {target}");
    }
}

#[test]
fn fixed_time_consistent_with_intervals() {
    let s = server(20, 41);
    let (engine, _) = s.engine(Oid(0), TimeInterval::new(0.0, 60.0)).unwrap();
    for target in 1..20u64 {
        let intervals = engine.nonzero_intervals(Oid(target));
        for t in [7.5, 22.5, 41.0, 55.5] {
            let stmt = format!(
                "SELECT Tr{target} FROM MOD WHERE AT {t} TIME IN [0, 60] \
                 AND PROB_NN(Tr{target}, Tr0, TIME) > 0"
            );
            let via_sql = match s.execute(&stmt).unwrap() {
                QueryOutput::Boolean(b) => b,
                other => panic!("expected Boolean, got {other:?}"),
            };
            // `None` means the default prefiltered engine dropped the
            // target: provably zero probability at every instant.
            let Some(intervals) = intervals.as_ref() else {
                assert!(!via_sql, "prefiltered-out target {target} must be false");
                continue;
            };
            // Skip instants close to a boundary of the inside set.
            let margin = intervals
                .spans()
                .iter()
                .map(|iv| (iv.start() - t).abs().min((iv.end() - t).abs()))
                .fold(f64::INFINITY, f64::min);
            if margin > 1e-6 {
                assert_eq!(via_sql, intervals.covers(t), "target {target} t {t}");
            }
        }
    }
}

#[test]
fn threshold_queries_end_to_end() {
    // The §7 future-work extension: PROB_NN(...) > p with p > 0.
    let s = server(30, 61);
    let stmt = "SELECT * FROM MOD WHERE ATLEAST 0.2 OF TIME IN [0, 60] \
                AND PROB_NN(*, Tr0, TIME) > 0.5";
    let strong = match s.execute(stmt).unwrap() {
        QueryOutput::Objects(objs) => objs,
        other => panic!("expected Objects, got {other:?}"),
    };
    // Threshold > 0.5 qualifiers are a subset of the non-zero qualifiers.
    let stmt0 = "SELECT * FROM MOD WHERE ATLEAST 0.2 OF TIME IN [0, 60] \
                 AND PROB_NN(*, Tr0, TIME) > 0";
    let weak = match s.execute(stmt0).unwrap() {
        QueryOutput::Objects(objs) => objs,
        other => panic!("expected Objects, got {other:?}"),
    };
    let weak_ids: Vec<Oid> = weak.iter().map(|(o, _)| *o).collect();
    for (o, frac) in &strong {
        assert!(weak_ids.contains(o), "{o} passes p=0.5 but not p=0");
        assert!(*frac >= 0.2 - 1e-9);
    }
    // Raising the threshold can only shrink the answer.
    let stmt9 = "SELECT * FROM MOD WHERE ATLEAST 0.2 OF TIME IN [0, 60] \
                 AND PROB_NN(*, Tr0, TIME) > 0.9";
    let strongest = match s.execute(stmt9).unwrap() {
        QueryOutput::Objects(objs) => objs,
        other => panic!("expected Objects, got {other:?}"),
    };
    assert!(strongest.len() <= strong.len());
}

#[test]
fn threshold_round_trips_through_display() {
    let q = parse(
        "SELECT Tr3 FROM MOD WHERE ATLEAST 0.5 OF TIME IN [0, 60] \
         AND PROB_NN(Tr3, Tr0, TIME) > 0.65",
    )
    .unwrap();
    assert!((q.prob_threshold - 0.65).abs() < 1e-12);
    let q2 = parse(&q.to_string()).unwrap();
    assert_eq!(q, q2);
}

#[test]
fn ast_quantifier_variants_parse() {
    let q = parse(
        "SELECT Tr1 FROM MOD WHERE ATLEAST 65 % OF TIME IN [0, 60] AND PROB_NN(Tr1, Tr0, TIME) > 0",
    )
    .unwrap();
    assert_eq!(q.target, Target::One("Tr1".into()));
    match q.quantifier {
        Quantifier::AtLeast(x) => assert!((x - 0.65).abs() < 1e-12),
        other => panic!("unexpected quantifier {other:?}"),
    }
}
