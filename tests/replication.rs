//! Follower replication over a loopback socket: a [`Follower`] mirrors
//! a leader's `NetServer` commit for commit via the `FOLLOW` wire
//! exchange, and must answer one-shot queries **and** maintain its own
//! standing-query registrations bit-identically to the leader at the
//! same epoch — including after a forced snapshot resync, when the
//! follower lagged past the leader's feed bound or delta-log horizon.

use std::sync::Arc;
use std::time::Duration;
use uncertain_nn::modb::net::{Follower, NetClient, NetServer, NetServerConfig};
use uncertain_nn::prelude::*;

const SYNC_TIMEOUT: Duration = Duration::from_secs(10);

fn straight(oid: u64, y: f64) -> UncertainTrajectory {
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(0.0, y, 0.0), (30.0, y, 60.0)]).unwrap(),
        0.5,
    )
    .unwrap()
}

fn populated_leader() -> Arc<ModServer> {
    let server = ModServer::new();
    server
        .register_all([
            straight(0, 0.0),
            straight(1, 1.0),
            straight(2, 3.0),
            straight(3, 9.0),
        ])
        .unwrap();
    Arc::new(server)
}

const ONE_SHOT: &str =
    "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0";
const STANDING: &str = "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
                        AND PROB_NN(*, Tr0, TIME) > 0 AS near0";

/// Leader and follower at the same epoch must hold bit-identical state
/// and produce bit-identical answers — one-shot and standing-query.
fn assert_mirrored(leader: &ModServer, follower: &Follower) {
    assert_eq!(follower.epoch(), leader.store().epoch());
    assert_eq!(
        follower.server().store().snapshot().to_vec(),
        leader.store().snapshot().to_vec()
    );
    assert_eq!(
        follower
            .server()
            .execute(ONE_SHOT)
            .expect("follower answers"),
        leader.execute(ONE_SHOT).expect("leader answers")
    );
    assert_eq!(
        follower
            .server()
            .subscription_output("near0")
            .expect("follower standing query"),
        leader
            .subscription_output("near0")
            .expect("leader standing query")
    );
}

/// The catch-up path: the leader's delta log covers the follower's
/// whole history, so the mirror is built by streamed replay and then
/// tracks live commits through inserts, updates, and removals.
#[test]
fn follower_tracks_leader_bit_identically() {
    let leader = populated_leader();
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&leader)).expect("binds");
    let addr = net.local_addr().to_string();

    let mut follower = Follower::connect(&addr).expect("follower connects");
    follower
        .sync_to(leader.store().epoch(), SYNC_TIMEOUT)
        .expect("catch-up replay");

    // Standing queries live on each side independently; the follower's
    // registration is maintained by its own mirror commits.
    leader.execute(STANDING).expect("leader subscribes");
    follower
        .server()
        .execute(STANDING)
        .expect("follower subscribes");

    let mut writer = NetClient::connect(&addr).expect("writer connects");
    writer.insert(straight(7, 1.5)).expect("insert lands");
    writer.update(straight(2, 0.25)).expect("update lands");
    writer.remove(Oid(3)).expect("remove lands");
    writer.insert(straight(9, 2.5)).expect("insert lands");

    follower
        .sync_to(leader.store().epoch(), SYNC_TIMEOUT)
        .expect("live tracking");
    assert_mirrored(&leader, &follower);

    writer.close().expect("writer closes");
    follower.close().expect("follower closes");
    net.shutdown();
}

/// The resync path, forced twice: (1) at connect time the leader's
/// capped delta log no longer reaches epoch 0, so bootstrap must come
/// from a snapshot; (2) a commit burst past the follower's tiny feed
/// capacity drops it to lagged mid-stream, and the re-`FOLLOW` lands on
/// a snapshot resync again. Standing-query registrations survive both
/// (restore keeps the registry alive) and answers stay bit-identical.
#[test]
fn lagged_follower_resyncs_from_snapshot_and_converges() {
    let leader = populated_leader();
    // A log horizon of 4 epochs and a follower feed of 4 frames make
    // both resync triggers cheap to hit.
    leader.store().set_delta_log_capacity(4);
    let net = NetServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&leader),
        NetServerConfig {
            outbox_capacity: 4,
            ..NetServerConfig::default()
        },
    )
    .expect("binds");
    let addr = net.local_addr().to_string();

    // Churn far past the log horizon before anyone follows: epoch 0 is
    // no longer reachable by replay, so connect itself must resync.
    let mut writer = NetClient::connect(&addr).expect("writer connects");
    for i in 0..8 {
        writer
            .update(straight(10 + i, i as f64))
            .expect("churn lands");
    }
    let mut follower = Follower::connect(&addr).expect("follower connects");
    assert_eq!(
        follower.epoch(),
        leader.store().epoch(),
        "bootstrap past a dead log horizon must arrive via snapshot"
    );

    leader.execute(STANDING).expect("leader subscribes");
    follower
        .server()
        .execute(STANDING)
        .expect("follower subscribes");

    // Burst without pumping: the 4-frame feed overflows, the server
    // turns the stream into a lag notice, and the next pump re-FOLLOWs.
    for i in 0..12 {
        writer
            .update(straight(30 + i, 2.0 + i as f64))
            .expect("burst lands");
    }
    writer.remove(Oid(1)).expect("remove lands");
    follower
        .sync_to(leader.store().epoch(), SYNC_TIMEOUT)
        .expect("recovers from lag");
    assert_mirrored(&leader, &follower);

    // The mirror keeps tracking normally after the resync.
    writer.insert(straight(50, 0.75)).expect("insert lands");
    follower
        .sync_to(leader.store().epoch(), SYNC_TIMEOUT)
        .expect("tracks after resync");
    assert_mirrored(&leader, &follower);

    writer.close().expect("writer closes");
    follower.close().expect("follower closes");
    net.shutdown();
}

/// Followers serve reads only; their local standing queries see every
/// mirrored epoch exactly once (`apply_replicated` runs the normal
/// commit path), so a delta-folding client of the *follower* stays
/// bit-exact too.
#[test]
fn follower_feeds_its_own_subscribers() {
    let leader = populated_leader();
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&leader)).expect("binds");
    let addr = net.local_addr().to_string();

    let mut follower = Follower::connect(&addr).expect("follower connects");
    follower
        .sync_to(leader.store().epoch(), SYNC_TIMEOUT)
        .expect("catch-up replay");
    follower
        .server()
        .execute(STANDING)
        .expect("follower subscribes");

    let mut writer = NetClient::connect(&addr).expect("writer connects");
    writer.insert(straight(7, 0.5)).expect("insert lands");
    writer.remove(Oid(7)).expect("remove lands");
    follower
        .sync_to(leader.store().epoch(), SYNC_TIMEOUT)
        .expect("live tracking");

    // Two mirrored commits → two deltas in the follower-local feed,
    // with the newcomer's upsert and its removal.
    let deltas = follower
        .server()
        .poll_subscription("near0")
        .expect("feed drains");
    assert_eq!(deltas.len(), 2, "one delta per mirrored commit");

    writer.close().expect("writer closes");
    follower.close().expect("follower closes");
    net.shutdown();
}
