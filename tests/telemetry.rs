//! Telemetry must observe, never perturb. The metrics registry, the
//! trace ring, and the global on/off switches sit on every hot path of
//! the commit → maintenance → push pipeline; these tests pin the
//! contract that the *answers* flowing through that pipeline are
//! bit-identical whether the switches are on or off — flipping
//! telemetry may change what is recorded, never what is answered.

use proptest::prelude::*;
use std::sync::Mutex;
use uncertain_nn::modb::net::wire::{encode_payload, Frame, WireOutput};
use uncertain_nn::modb::subscription::SubAnswer;
use uncertain_nn::modb::telemetry;
use uncertain_nn::prelude::*;

const WINDOW: (f64, f64) = (0.0, 60.0);
const RADIUS: f64 = 0.5;

/// The telemetry switches are process globals; every test that flips
/// them serializes on this lock and restores the defaults when done.
static FLAGS: Mutex<()> = Mutex::new(());

struct FlagGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl Drop for FlagGuard<'_> {
    fn drop(&mut self) {
        telemetry::set_metrics(true);
        telemetry::set_trace(false);
    }
}

fn hold_flags(metrics: bool, trace: bool) -> FlagGuard<'static> {
    let guard = FLAGS.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_metrics(metrics);
    telemetry::set_trace(trace);
    FlagGuard(guard)
}

fn straight(oid: u64, y: f64) -> UncertainTrajectory {
    UncertainTrajectory::with_uniform_pdf(
        Trajectory::from_triples(Oid(oid), &[(0.0, y, WINDOW.0), (30.0, y, WINDOW.1)]).unwrap(),
        RADIUS,
    )
    .unwrap()
}

/// One step of a randomized workload.
#[derive(Debug, Clone)]
enum Op {
    Upsert(u64, f64),
    Remove(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..6, -1.0..6.0f64).prop_map(|(oid, y)| Op::Upsert(oid, y)),
            (1u64..6, -1.0..6.0f64).prop_map(|(oid, y)| Op::Upsert(oid, y + 0.5)),
            (1u64..6, -1.0..6.0f64).prop_map(|(oid, y)| Op::Upsert(oid, y - 0.5)),
            (1u64..6).prop_map(Op::Remove),
        ],
        1..12,
    )
}

/// Runs the workload from scratch and returns the full wire-encoded
/// answer stream it produces: after every mutation, the maintained
/// standing-query answer and a fresh one-shot query, both as the exact
/// frame bytes a client would receive.
fn answer_stream(ops: &[Op]) -> Vec<Vec<u8>> {
    let server = ModServer::new();
    server
        .register_all((0..4).map(|k| straight(k, k as f64)))
        .unwrap();
    server
        .execute(
            "REGISTER CONTINUOUS SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] \
             AND PROB_NN(*, Tr0, TIME) > 0 AS s",
        )
        .unwrap();
    let mut frames = Vec::new();
    for (k, op) in ops.iter().enumerate() {
        match op {
            Op::Upsert(oid, y) => {
                server.store().update(straight(*oid, *y));
            }
            // Removing an absent oid is a workload no-op, not an error
            // the stream should diverge on.
            Op::Remove(oid) => {
                let _ = server.store().remove(Oid(*oid));
            }
        }
        let (answer, epoch) = server
            .subscription_registry()
            .answer_with_epoch("s")
            .expect("standing query lives");
        let maintained = match answer {
            SubAnswer::Intervals(a) => a,
            other => panic!("expected intervals, got {other:?}"),
        };
        frames.push(encode_payload(&Frame::Response {
            id: k as u64,
            result: Ok(WireOutput::Answer {
                epoch,
                answer: maintained,
            }),
        }));
        let one_shot = server
            .execute(
                "SELECT * FROM MOD WHERE EXISTS TIME IN [0, 60] AND PROB_NN(*, Tr0, TIME) > 0.25",
            )
            .unwrap();
        let objects = match one_shot {
            QueryOutput::Objects(objs) => objs,
            other => panic!("expected objects, got {other:?}"),
        };
        frames.push(encode_payload(&Frame::Response {
            id: k as u64,
            result: Ok(WireOutput::Objects(objects)),
        }));
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The observable answer stream is bit-identical across all three
    /// switch settings: telemetry fully off, metrics on, and metrics +
    /// tracing on.
    #[test]
    fn answer_stream_is_bit_identical_across_telemetry_settings(ops in arb_ops()) {
        let bare = {
            let _flags = hold_flags(false, false);
            answer_stream(&ops)
        };
        let metered = {
            let _flags = hold_flags(true, false);
            answer_stream(&ops)
        };
        let traced = {
            let _flags = hold_flags(true, true);
            answer_stream(&ops)
        };
        prop_assert_eq!(&bare, &metered, "metrics recording changed the answer bytes");
        prop_assert_eq!(&bare, &traced, "tracing changed the answer bytes");
    }
}

/// With metrics on, the commit path visibly moves the registry — the
/// same workload that must not change answers must change the metrics.
#[test]
fn metrics_move_while_answers_do_not() {
    let _flags = hold_flags(true, false);
    let server = ModServer::new();
    server
        .register_all((0..4).map(|k| straight(k, k as f64)))
        .unwrap();
    let before = server.metrics_snapshot(Some("commit"));
    server.store().update(straight(1, 0.25)).unwrap();
    server.store().update(straight(2, 0.75)).unwrap();
    let after = server.metrics_snapshot(Some("commit"));
    let count = |snap: &telemetry::MetricsSnapshot| {
        snap.histograms.iter().map(|(_, h)| h.count).sum::<u64>()
    };
    assert!(
        count(&after) >= count(&before) + 2,
        "two commits must land at least two commit-latency samples \
         (before {before:?}, after {after:?})"
    );
}

/// With metrics off, the same path leaves the registry untouched.
#[test]
fn disabled_metrics_record_nothing() {
    let _flags = hold_flags(false, false);
    let server = ModServer::new();
    server
        .register_all((0..4).map(|k| straight(k, k as f64)))
        .unwrap();
    // The raw registry only — `metrics_snapshot` also merges derived
    // views (cache/delta-log stats) that legitimately move with the
    // store whatever the switch says.
    let before = server.store().telemetry().snapshot();
    server.store().update(straight(1, 0.25)).unwrap();
    let after = server.store().telemetry().snapshot();
    let totals = |snap: &telemetry::MetricsSnapshot| {
        (
            snap.counters.iter().map(|(_, v)| *v).sum::<u64>(),
            snap.histograms.iter().map(|(_, h)| h.count).sum::<u64>(),
        )
    };
    // Derived views (per-subscription stats re-expressed as gauges)
    // still move with the store; the recorded counters and histogram
    // samples must not.
    assert_eq!(
        totals(&before),
        totals(&after),
        "a disabled registry must not record"
    );
}
