//! Validation of the paper's probabilistic core: Lemma 1, Theorem 1, and
//! the soundness discussion of §2.2-IV.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_nn::prob::discretized::DiscretizedNn;
use uncertain_nn::prob::monte_carlo::monte_carlo_nn_probabilities;
use uncertain_nn::prob::nn_prob::{nn_probabilities, NnCandidate, NnConfig};
use uncertain_nn::prob::uniform_diff::UniformDifferencePdf;
use uncertain_nn::prob::TruncatedGaussianPdf;

/// Theorem 1: for equal rotationally symmetric pdfs, the probability
/// ranking equals the center-distance ranking — checked with the exact
/// convolved pdf of the difference objects on random configurations.
#[test]
fn theorem_1_ranking_matches_distance_ranking() {
    let mut rng = StdRng::seed_from_u64(2009);
    let pdf = UniformDifferencePdf::new(0.5);
    for trial in 0..25 {
        let n = rng.random_range(2..7);
        let mut dists: Vec<f64> = (0..n).map(|_| rng.random_range(1.0..6.0)).collect();
        // Ensure distinct distances (ties make the ranking ambiguous).
        dists.sort_by(f64::total_cmp);
        let mut ok = true;
        for w in dists.windows(2) {
            if w[1] - w[0] < 0.05 {
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        let cands: Vec<NnCandidate> = dists
            .iter()
            .map(|&d| NnCandidate {
                center_distance: d,
                pdf: &pdf,
            })
            .collect();
        let probs = nn_probabilities(&cands, NnConfig::default());
        // dists ascending => probs must be strictly descending.
        for (k, w) in probs.windows(2).enumerate() {
            assert!(
                w[0] >= w[1] - 1e-9,
                "trial {trial}: P ranking violates Theorem 1 at {k}: {probs:?} for {dists:?}"
            );
        }
    }
}

/// Theorem 1 also holds for non-uniform rotationally symmetric pdfs
/// (truncated Gaussian).
#[test]
fn theorem_1_holds_for_gaussian_pdfs() {
    let pdf = TruncatedGaussianPdf::new(1.0, 0.4);
    let dists = [1.5, 2.1, 2.8, 3.9];
    let cands: Vec<NnCandidate> = dists
        .iter()
        .map(|&d| NnCandidate {
            center_distance: d,
            pdf: &pdf,
        })
        .collect();
    let probs = nn_probabilities(&cands, NnConfig::default());
    for w in probs.windows(2) {
        assert!(w[0] > w[1], "{probs:?}");
    }
}

/// The Eq. 5 evaluator agrees with direct Monte Carlo simulation.
#[test]
fn analytic_matches_monte_carlo() {
    let pdf = UniformDifferencePdf::new(0.5);
    let dists = [1.2, 1.5, 2.0, 2.4];
    let cands: Vec<NnCandidate> = dists
        .iter()
        .map(|&d| NnCandidate {
            center_distance: d,
            pdf: &pdf,
        })
        .collect();
    let analytic = nn_probabilities(&cands, NnConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let mc = monte_carlo_nn_probabilities(&cands, 80_000, &mut rng);
    for (i, (a, m)) in analytic.iter().zip(&mc).enumerate() {
        assert!(
            (a - m).abs() < 0.01,
            "candidate {i}: analytic {a} vs monte carlo {m}"
        );
    }
}

/// For continuous pdfs the Eq. 5 probabilities form a probability space:
/// they sum to one (the joint terms of §2.2-IV vanish in the continuum).
#[test]
fn continuous_probabilities_sum_to_one() {
    let pdf = UniformDifferencePdf::new(1.0);
    for dists in [
        vec![2.0, 2.5],
        vec![3.0, 3.1, 3.2, 3.3, 3.4],
        vec![1.0, 4.0, 4.05, 6.0],
    ] {
        let cands: Vec<NnCandidate> = dists
            .iter()
            .map(|&d| NnCandidate {
                center_distance: d,
                pdf: &pdf,
            })
            .collect();
        let probs = nn_probabilities(&cands, NnConfig::default());
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 5e-4,
            "Σ P^NN = {total} for {dists:?} ({probs:?})"
        );
    }
}

/// §2.2-IV made concrete: under discretization the exclusive
/// probabilities alone sum to < 1, and adding the joint (tie) terms
/// recovers the missing mass.
#[test]
fn discretization_exposes_joint_probability_terms() {
    let pdf = UniformDifferencePdf::new(1.0);
    let dists = [2.0, 2.2, 2.5, 2.9];
    let cands: Vec<NnCandidate> = dists
        .iter()
        .map(|&d| NnCandidate {
            center_distance: d,
            pdf: &pdf,
        })
        .collect();
    let engine = DiscretizedNn::new(&cands, 12);
    let order1 = engine.total_mass(1);
    let order2 = engine.total_mass(2);
    let order3 = engine.total_mass(3);
    assert!(order1 < 0.999, "exclusive-only mass {order1} should be < 1");
    assert!(order2 > order1);
    assert!(order3 >= order2);
    assert!((engine.total_mass_exact() - 1.0).abs() < 1e-9);
}

/// Lemma 1 in its sharpest form: two candidates only, closer wins, and
/// the gap grows with the distance difference.
#[test]
fn lemma_1_two_candidate_gap() {
    let pdf = UniformDifferencePdf::new(0.5);
    let base = 2.0;
    let mut last_gap = 0.0;
    for delta in [0.1, 0.4, 0.8, 1.0] {
        let cands = [
            NnCandidate {
                center_distance: base,
                pdf: &pdf,
            },
            NnCandidate {
                center_distance: base + delta,
                pdf: &pdf,
            },
        ];
        let probs = nn_probabilities(&cands, NnConfig::default());
        assert!(probs[0] > probs[1], "delta {delta}: {probs:?}");
        let gap = probs[0] - probs[1];
        assert!(
            gap >= last_gap - 1e-9,
            "gap must grow with separation: {gap} after {last_gap}"
        );
        last_gap = gap;
    }
}
